"""Shared infrastructure for the reproduction benches.

Each bench regenerates one table or figure of the paper's evaluation
(Section 8 + Appendices).  The paper's full corpus is 110 datasets
(10 anomaly classes x 11 durations) with 50-trial protocols; benches scale
that down via the constants below so the whole suite runs on a laptop in
minutes, while preserving the protocols exactly.  Suites are cached at
module scope because several benches share them.

Output convention: every bench prints the paper's rows/series side by
side with our measured values, so ``pytest benchmarks/ --benchmark-only``
doubles as the experiment log for EXPERIMENTS.md.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.causal import CausalModel
from repro.eval.harness import (
    AnomalyDataset,
    build_merged_models,
    build_model,
    build_suite,
    rank_models,
)
from repro.eval.metrics import (
    margin_of_confidence,
    score_predicates_mean,
    topk_contains,
)
from repro.perf.cache import LabeledSpaceCache
from repro.perf.parallel import parallel_map

#: Bench scale: 4 anomaly durations per class (the paper uses 11).
BENCH_DURATIONS: Tuple[int, ...] = (30, 45, 60, 75)

#: Random split trials for merged-model protocols (the paper uses 50).
BENCH_TRIALS = 8

#: θ defaults from the paper.
SINGLE_THETA = 0.2
MERGED_THETA = 0.05

SUITE_SEED = 2016  # the paper's publication year, for determinism


@lru_cache(maxsize=None)
def suite(workload: str = "tpcc"):
    """The bench dataset corpus for a workload (cached across benches)."""
    return build_suite(
        workload=workload, durations=BENCH_DURATIONS, seed=SUITE_SEED
    )


def _build_single_model(run):
    """Top-level builder so :func:`parallel_map` can pickle it."""
    return build_model(run, SINGLE_THETA)


@lru_cache(maxsize=None)
def single_models(workload: str = "tpcc") -> Tuple[Tuple[str, tuple], ...]:
    """One θ=0.2 model per dataset, keyed by cause (cached, hashable).

    Model builds fan out via ``parallel_map`` (``REPRO_JOBS`` processes,
    serial by default) — each model depends only on its own run.
    """
    result = []
    for cause, runs in suite(workload).items():
        models = tuple(parallel_map(_build_single_model, runs))
        result.append((cause, models))
    return tuple(result)


def merged_protocol_trials(
    workload: str = "tpcc",
    n_train: int = 2,
    n_trials: int = BENCH_TRIALS,
    theta: float = MERGED_THETA,
    seed: int = 7,
):
    """Generator over (models, test_runs) pairs of the Section 8.5 protocol.

    Each trial randomly assigns ``n_train`` datasets per cause to build
    merged models; the remaining datasets are the test set.
    """
    corpus = suite(workload)
    rng = np.random.default_rng(seed)
    n_runs = len(next(iter(corpus.values())))
    for _ in range(n_trials):
        train_indices = {
            cause: tuple(
                sorted(rng.choice(n_runs, size=n_train, replace=False))
            )
            for cause in corpus
        }
        models = build_merged_models(corpus, train_indices, theta=theta)
        test_runs: List[AnomalyDataset] = []
        for cause, runs in corpus.items():
            chosen = set(train_indices[cause])
            test_runs.extend(
                run for i, run in enumerate(runs) if i not in chosen
            )
        yield models, test_runs


def evaluate_topk(
    models: Sequence[CausalModel],
    test_runs: Sequence[AnomalyDataset],
    ks: Sequence[int] = (1, 2),
    cache: Optional[LabeledSpaceCache] = None,
) -> Dict[int, float]:
    """Fraction of test runs whose correct cause is in the top-k ranking.

    One labeled-space cache spans the whole sweep, so each test dataset
    is discretized once regardless of how many models are ranked.
    """
    cache = cache if cache is not None else LabeledSpaceCache()
    hits = {k: 0 for k in ks}
    for run in test_runs:
        scores = rank_models(models, run.dataset, run.spec, cache=cache)
        for k in ks:
            hits[k] += int(topk_contains(scores, run.cause, k))
    return {k: hits[k] / len(test_runs) for k in ks}


def print_table(title: str, headers: Sequence[str], rows) -> None:
    """Render an aligned ASCII table to stdout (the bench report format)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def pct(value: float) -> str:
    """Format a fraction as a percent string."""
    return f"{100.0 * value:.1f}%"
