"""Ablation (beyond the paper) — confidence over partitions vs raw tuples.

Equation 3 computes a causal model's confidence in the *partition space*
"to reduce the effect of the noise in real-world data" (Section 6.1).
This bench quantifies that choice: the same models are scored with the
partition-space confidence and with raw tuple-level separation power
(Equation 1 averaged over effect predicates).
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.core.separation import separation_power
from repro.eval.harness import build_merged_models, rank_models
from repro.eval.metrics import margin_of_confidence, topk_contains


def tuple_confidence(model, dataset, spec):
    """Equation 1 averaged over effect predicates (the ablated variant)."""
    if not model.predicates:
        return 0.0
    total = 0.0
    for predicate in model.predicates:
        if predicate.attr in dataset:
            total += separation_power(predicate, dataset, spec)
    return total / len(model.predicates)


def run_experiment():
    corpus = suite("tpcc")
    models = build_merged_models(
        corpus, {cause: (0, 1, 2) for cause in corpus}, theta=MERGED_THETA
    )
    results = {}
    for mode in ("Partition space (paper)", "Raw tuples"):
        margins, top1 = [], []
        for cause, runs in corpus.items():
            run = runs[3]
            if mode == "Partition space (paper)":
                scores = rank_models(models, run.dataset, run.spec)
            else:
                scores = sorted(
                    (
                        (m.cause, tuple_confidence(m, run.dataset, run.spec))
                        for m in models
                    ),
                    key=lambda item: item[1],
                    reverse=True,
                )
            margins.append(margin_of_confidence(scores, cause))
            top1.append(topk_contains(scores, cause, 1))
        results[mode] = (float(np.mean(margins)), float(np.mean(top1)))
    return results


def test_ablation_confidence_space(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (mode, pct(margin), pct(top1))
        for mode, (margin, top1) in results.items()
    ]
    print_table(
        "Ablation: Equation 3 confidence space — partitions vs raw tuples",
        ["confidence space", "avg margin", "top-1"],
        rows,
    )
    # both are usable; the partition space must not be materially worse
    paper = results["Partition space (paper)"]
    ablated = results["Raw tuples"]
    assert paper[1] >= ablated[1] - 0.15
