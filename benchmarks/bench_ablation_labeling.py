"""Ablation (beyond the paper) — strict vs majority partition labeling.

Section 4.2 labels a numeric partition Abnormal only when *every* tuple in
it is abnormal.  A tempting relaxation is majority labeling (as used for
categorical attributes).  This bench compares the two on single-model
accuracy: strict labeling trades recall inside mixed partitions for much
cleaner Abnormal blocks, which is what the filtering/filling pipeline
depends on.
"""

import numpy as np

from _shared import SINGLE_THETA, pct, print_table, suite
from repro.core.causal import CausalModel
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.partition import Label, NumericPartitionSpace
from repro.eval.harness import rank_models
from repro.eval.metrics import margin_of_confidence, topk_contains


class MajorityLabelSpace(NumericPartitionSpace):
    """Numeric partition space with majority (not unanimous) labeling."""

    def label(self, values, abnormal_mask, normal_mask):
        idx = self.partition_indices(values)
        counts_abnormal = np.bincount(
            idx[abnormal_mask], minlength=self.n_partitions
        )
        counts_normal = np.bincount(idx[normal_mask], minlength=self.n_partitions)
        labels = np.full(self.n_partitions, int(Label.EMPTY), dtype=np.int64)
        labels[counts_abnormal > counts_normal] = int(Label.ABNORMAL)
        labels[counts_normal > counts_abnormal] = int(Label.NORMAL)
        return labels


class MajorityGenerator(PredicateGenerator):
    """Algorithm 1 with majority labeling for numeric attributes."""

    def _numeric_attribute(self, dataset, attr, abnormal, normal):
        import repro.core.generator as generator_module

        original = generator_module.NumericPartitionSpace
        generator_module.NumericPartitionSpace = MajorityLabelSpace
        try:
            return super()._numeric_attribute(dataset, attr, abnormal, normal)
        finally:
            generator_module.NumericPartitionSpace = original


def evaluate(generator):
    corpus = suite("tpcc")
    models = {
        cause: [
            CausalModel(cause, generator.generate(r.dataset, r.spec).predicates)
            for r in runs
        ]
        for cause, runs in corpus.items()
    }
    margins, top1 = [], []
    for cause, runs in corpus.items():
        for model_idx in range(len(models[cause])):
            competitors = [models[cause][model_idx]] + [
                other[model_idx % len(other)]
                for other_cause, other in models.items()
                if other_cause != cause
            ]
            for test_idx, run in enumerate(runs):
                if test_idx == model_idx:
                    continue
                scores = rank_models(competitors, run.dataset, run.spec)
                margins.append(margin_of_confidence(scores, cause))
                top1.append(topk_contains(scores, cause, 1))
    return float(np.mean(margins)), float(np.mean(top1))


def run_experiment():
    config = GeneratorConfig(theta=SINGLE_THETA)
    return {
        "Strict (paper)": evaluate(PredicateGenerator(config)),
        "Majority": evaluate(MajorityGenerator(config)),
    }


def test_ablation_labeling(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, pct(margin), pct(top1))
        for name, (margin, top1) in results.items()
    ]
    print_table(
        "Ablation: strict vs majority numeric-partition labeling",
        ["labeling", "avg margin", "top-1"],
        rows,
    )
    # both remain functional; the bench documents the trade-off
    assert results["Strict (paper)"][1] > 0.6
    assert results["Majority"][1] > 0.6
