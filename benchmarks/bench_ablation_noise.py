"""Ablation (beyond the paper) — telemetry noise vs explanation quality.

Our substrate exposes the observation-noise level of the metric catalogue
(real collectors are noisy; the paper's Section 3 names noisy attributes
as the first obstacle).  This bench sweeps the noise scale and measures
single-model margin and predicate F1, showing the filtering/gap-filling
pipeline degrades gracefully rather than collapsing.
"""

import numpy as np

from _shared import SINGLE_THETA, pct, print_table
from repro.core.causal import CausalModel
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.eval.harness import rank_models, simulate_run
from repro.eval.metrics import (
    margin_of_confidence,
    score_predicates_mean,
    topk_contains,
)
from repro.anomalies.library import ANOMALY_CAUSES

NOISE_SCALES = (0.5, 1.0, 2.0, 4.0)


def run_experiment():
    generator = PredicateGenerator(GeneratorConfig(theta=SINGLE_THETA))
    results = {}
    for noise in NOISE_SCALES:
        runs = []
        for i, key in enumerate(ANOMALY_CAUSES):
            train = simulate_run(
                key, 45, seed=9000 + i, noise_scale=noise
            )
            test = simulate_run(
                key, 60, seed=9100 + i, noise_scale=noise
            )
            runs.append((train, test))
        models = [
            CausalModel(
                cause, generator.generate(ds, spec).predicates
            )
            for (ds, spec, cause), _ in runs
        ]
        margins, f1s, top1 = [], [], []
        for (train, test) in runs:
            test_ds, test_spec, cause = test
            scores = rank_models(models, test_ds, test_spec)
            margins.append(margin_of_confidence(scores, cause))
            top1.append(topk_contains(scores, cause, 1))
            correct = next(m for m in models if m.cause == cause)
            f1s.append(
                score_predicates_mean(correct.predicates, test_ds, test_spec).f1
            )
        results[noise] = (
            float(np.mean(margins)),
            float(np.mean(f1s)),
            float(np.mean(top1)),
        )
    return results


def test_ablation_noise(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (f"{noise:g}x", pct(margin), pct(f1), pct(top1))
        for noise, (margin, f1, top1) in results.items()
    ]
    print_table(
        "Ablation: telemetry noise scale vs diagnosis quality",
        ["noise scale", "avg margin", "avg F1", "top-1"],
        rows,
    )
    # graceful degradation: quadrupled noise still diagnoses most causes
    assert results[1.0][2] >= 0.7
    assert results[4.0][2] >= 0.4
