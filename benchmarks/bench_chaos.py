"""Chaos bench: diagnosis robustness under degraded telemetry.

Two legs, both asserted before any number is reported:

* **accuracy-degradation** — :func:`repro.eval.chaos.run_chaos_suite`
  replays the anomaly scenario suite under the graded fault-profile
  ladder (clean / light / moderate / heavy / drift).  Under the
  *moderate* profile (5 % dropped ticks, 2 % NaN cells, one stuck-at
  attribute) every scenario must complete with zero exceptions, and at
  full bench scale the mean correct-cause confidence margin may degrade
  by at most ``MAX_MODERATE_MARGIN_DROP`` and top-1 accuracy by at most
  ``MAX_MODERATE_TOP1_DROP`` relative to the clean profile.  The
  *drift* profile (a collector upgrade: ~35 % of attributes renamed,
  2 % dropped, junk columns added) must also complete with zero
  exceptions — schema reconciliation maps the renamed attributes back —
  and at bench scale its top-1 accuracy may trail clean by at most
  ``MAX_DRIFT_TOP1_DROP``;
* **crash-recovery** — one scenario is streamed through a
  :class:`repro.stream.StreamSupervisor` whose source crashes mid-run
  (:class:`repro.faults.CollectorCrash`), with a write-ahead tick log
  (``wal_dir``).  The supervisor must recover via backoff + durable
  checkpoint restore + WAL replay, emit closed regions identical to an
  uninterrupted detector on the same rows, and re-process **zero**
  source ticks;
* **dogfood-observability** — a diagnosis service loop is run with the
  labeled-space cache knocked out mid-run while
  :class:`repro.obs.dogfood.MetricsTimeline` samples the metrics
  registry each tick.  The pipeline's own telemetry must round-trip
  ``regularize_dataset`` with zero missing values, show the cache-miss
  step after the fault, stream through a detector and explain with zero
  exceptions, and the fault-window explanation must contain cache/
  generator predicates (whether the *automatic* detector flags the step
  is reported, not asserted).

Results land in ``BENCH_chaos.json`` at the repo root.

Run standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_chaos.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_chaos.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.eval.chaos import PROFILES, run_chaos_suite  # noqa: E402
from repro.eval.harness import replay_rows, simulate_run  # noqa: E402
from repro.faults import CollectorCrash, FaultPlan  # noqa: E402
from repro.stream import StreamingDetector, StreamSupervisor  # noqa: E402

#: Bench scales; "tiny" is the CI smoke (seconds), "bench" the recorded
#: run over all 10 anomaly classes and the full profile ladder.
SCALES = {
    "tiny": dict(
        anomaly_keys=["cpu_saturation", "workload_spike"],
        durations=(30, 40),
        normal_s=60,
        profile_names=["clean", "moderate", "drift"],
        crash_scenario=("cpu_saturation", 17),
        crash_duration_s=30,
        crash_normal_s=60,
        capacity=40,
        crash_at_tick=45,
        dogfood_ticks=16,
        dogfood_fault_tick=8,
    ),
    "bench": dict(
        anomaly_keys=None,  # all 10 causes
        durations=(40, 60),
        normal_s=90,
        profile_names=["clean", "light", "moderate", "heavy", "drift"],
        crash_scenario=("network_congestion", 17),
        crash_duration_s=40,
        crash_normal_s=90,
        capacity=60,
        # off the checkpoint cadence so recovery exercises WAL replay
        crash_at_tick=73,
        dogfood_ticks=30,
        dogfood_fault_tick=15,
    ),
}

#: Acceptance floors.  Zero moderate-profile errors is enforced at every
#: scale; the degradation bounds only at full bench scale (tiny runs too
#: few scenarios for stable means).  Both bounds are *relative to the
#: clean profile* — the chaos bench measures robustness (how much the
#: faults cost), not the protocol's absolute accuracy, which the
#: accuracy benches already pin down.  With ``hash()`` purged from the
#: simulator (zlib.crc32, see tests/test_determinism.py) the suite is
#: bitwise-reproducible across processes, so the floors are tight:
#: recorded full-scale run has moderate margin delta +0.001 and top-1
#: delta 0.0 (no degradation at all); heavy margin delta −0.023,
#: top-1 delta −0.10.
MAX_MODERATE_MARGIN_DROP = 0.01
MAX_MODERATE_TOP1_DROP = 0.0

#: Drift-profile floor: with fingerprints persisted and reconciliation
#: in the ranking path, a rename-heavy collector upgrade should cost
#: almost nothing — renamed attributes map back bit-exactly, only the
#: genuinely dropped ones (2 %) lose evidence.
MAX_DRIFT_TOP1_DROP = 0.05


def _run_crash_recovery(params: dict, seed: int = 29) -> dict:
    """Stream one scenario through a crashing source; compare regions."""
    anomaly_key, sim_seed = params["crash_scenario"]
    dataset, _, _ = simulate_run(
        anomaly_key,
        duration_s=params["crash_duration_s"],
        seed=sim_seed,
        normal_s=params["crash_normal_s"],
    )
    capacity = params["capacity"]

    baseline = StreamingDetector(capacity=capacity)
    uninterrupted = []
    for t, numeric_row, categorical_row in replay_rows(dataset):
        update = baseline.tick(t, numeric_row, categorical_row)
        uninterrupted.extend(update.closed_regions)

    crash_plan = FaultPlan(
        [CollectorCrash(at_tick=params["crash_at_tick"])], seed=seed
    )

    def source_factory(attempt: int):
        ticks = replay_rows(dataset)
        # only the first attempt crashes; the restarted collector is clean
        return crash_plan.wrap(ticks) if attempt == 0 else ticks

    with tempfile.TemporaryDirectory() as wal_dir:
        supervisor = StreamSupervisor(
            StreamingDetector(capacity=capacity),
            source_factory,
            checkpoint_every=10,
            sleep=lambda s: None,  # don't actually wait in a bench
            wal_dir=wal_dir,
        )
        report = supervisor.run()

    recovered = [
        {"start": r.start, "end": r.end} for r in report.closed_regions
    ]
    expected = [{"start": r.start, "end": r.end} for r in uninterrupted]
    return {
        "scenario": anomaly_key,
        "crash_at_tick": params["crash_at_tick"],
        "restarts": report.restarts,
        "backoff_waits_s": report.backoff_waits,
        "checkpoints": report.checkpoints,
        "ticks_processed": report.ticks_processed,
        "wal_replayed_ticks": report.wal_replayed_ticks,
        "reprocessed_ticks": report.reprocessed_ticks,
        "closed_regions": recovered,
        "regions_match_uninterrupted": recovered == expected,
    }


def _run_dogfood_leg(params: dict, seed: int = 5) -> dict:
    """Diagnose the diagnoser: a mid-run cache outage seen in obs metrics."""
    from repro.core.explain import DBSherlock
    from repro.core.knowledge import MYSQL_LINUX_RULES
    from repro.data.preprocess import regularize_dataset
    from repro.data.regions import RegionSpec
    from repro.obs.dogfood import MetricsTimeline

    ticks = params["dogfood_ticks"]
    fault_tick = params["dogfood_fault_tick"]

    # the observed system: a service re-explaining one incident per tick
    dataset, regions, true_cause = simulate_run(
        "cpu_saturation", duration_s=30, normal_s=60, seed=seed
    )
    service = DBSherlock(rules=MYSQL_LINUX_RULES)
    service.feedback(true_cause, service.explain(dataset, regions), dataset)

    timeline = MetricsTimeline(interval=1.0)
    timeline.sample()  # baseline at t=0 (cache already warm)
    for tick in range(1, ticks + 1):
        if tick >= fault_tick:
            service.cache.clear()  # fault: cache knocked out mid-run
        service.explain(dataset, regions)
        timeline.sample()

    obs_dataset = timeline.to_dataset(rates=True, name="obs-dogfood")
    obs_dataset, gaps = regularize_dataset(obs_dataset)

    # the per-interval miss deltas must step up when the cache dies
    misses = list(obs_dataset.column("repro_cache_misses_total"))
    pre = misses[: fault_tick - 1]  # row i is the delta ending at t=i+1
    post = misses[fault_tick - 1 :]
    pre_mean = sum(pre) / len(pre)
    post_mean = sum(post) / len(post)

    # the tool's own streaming detector over the tool's own telemetry
    detector = StreamingDetector(capacity=ticks)
    closed = []
    for t, numeric_row, categorical_row in replay_rows(obs_dataset):
        update = detector.tick(t, numeric_row, categorical_row)
        closed.extend(update.closed_regions)

    meta = DBSherlock()
    auto = meta.detect(obs_dataset)
    spec = RegionSpec.from_bounds(
        [(fault_tick, ticks)], [(1, fault_tick - 2)]
    )
    explanation = meta.explain(obs_dataset, spec)
    obs_predicates = [
        str(p)
        for p in explanation.predicates
        if p.attr.startswith(("repro_cache", "repro_generator"))
    ]
    return {
        "ticks": ticks,
        "fault_tick": fault_tick,
        "n_metrics": len(obs_dataset.attributes),
        "missing_after_regularize": gaps.n_missing,
        "miss_rate_pre_fault": round(pre_mean, 2),
        "miss_rate_post_fault": round(post_mean, 2),
        "streaming_regions_closed": len(closed),
        "auto_detector_flagged": bool(auto.found),
        "n_predicates": len(explanation.predicates.predicates),
        "cache_generator_predicates": obs_predicates,
    }


def run_bench(scale: str = "bench", write_json: bool = True) -> dict:
    params = SCALES[scale]
    profiles = {name: PROFILES[name] for name in params["profile_names"]}

    start = time.perf_counter()
    chaos = run_chaos_suite(
        anomaly_keys=params["anomaly_keys"],
        durations=params["durations"],
        normal_s=params["normal_s"],
        profiles=profiles,
        seed=11,
    )
    chaos_s = time.perf_counter() - start

    start = time.perf_counter()
    recovery = _run_crash_recovery(params)
    recovery_s = time.perf_counter() - start

    start = time.perf_counter()
    dogfood = _run_dogfood_leg(params)
    dogfood_s = time.perf_counter() - start

    summary = {
        "scale": scale,
        "n_causes": len(chaos["causes"]),
        "elapsed_s": {
            "chaos_suite": round(chaos_s, 2),
            "crash_recovery": round(recovery_s, 2),
            "dogfood": round(dogfood_s, 2),
        },
        "degradation": {
            name: {
                "mean_margin": entry["mean_margin"],
                "top1_accuracy": entry["top1_accuracy"],
                "errors": entry["errors"],
                "margin_delta_vs_clean": entry.get("margin_delta_vs_clean"),
                "top1_delta_vs_clean": entry.get("top1_delta_vs_clean"),
            }
            for name, entry in chaos["profiles"].items()
        },
        "chaos_report": chaos,
        "crash_recovery": recovery,
        "dogfood": dogfood,
    }

    if write_json:
        out = _REPO_ROOT / "BENCH_chaos.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    print(f"\n=== chaos bench ({summary['scale']} scale) ===")
    print(
        f"{summary['n_causes']} anomaly classes | suite "
        f"{summary['elapsed_s']['chaos_suite']}s, recovery "
        f"{summary['elapsed_s']['crash_recovery']}s"
    )
    print(f"{'profile':10s} {'margin':>8s} {'top1':>6s} {'errors':>7s} {'Δclean':>8s}")
    for name, row in summary["degradation"].items():
        delta = row["margin_delta_vs_clean"]
        print(
            f"{name:10s} {row['mean_margin']:8.4f} "
            f"{row['top1_accuracy']:6.2f} {row['errors']:7d} "
            f"{0.0 if delta is None else delta:8.4f}"
        )
    rec = summary["crash_recovery"]
    print(
        f"crash-recovery: {rec['scenario']} crashed@tick "
        f"{rec['crash_at_tick']}, {rec['restarts']} restart(s), "
        f"{rec['wal_replayed_ticks']} WAL-replayed tick(s), "
        f"{rec['reprocessed_ticks']} reprocessed, "
        f"regions match uninterrupted: {rec['regions_match_uninterrupted']}"
    )
    dog = summary["dogfood"]
    print(
        f"dogfood: cache fault@tick {dog['fault_tick']}/{dog['ticks']}, "
        f"miss rate {dog['miss_rate_pre_fault']} -> "
        f"{dog['miss_rate_post_fault']}/tick, "
        f"{dog['n_predicates']} self-predicates "
        f"({len(dog['cache_generator_predicates'])} cache/generator), "
        f"auto-detector flagged: {dog['auto_detector_flagged']}"
    )


def _check(summary: dict) -> None:
    degradation = summary["degradation"]
    # every scale: the moderate profile (the acceptance profile) must
    # complete every scenario without an exception
    moderate = degradation["moderate"]
    assert moderate["errors"] == 0, (
        f"moderate profile raised in {moderate['errors']} scenario(s): "
        f"{list(summary['chaos_report']['profiles']['moderate']['error_details'])}"
    )
    assert degradation["clean"]["errors"] == 0
    # every scale: a schema-drifted collector must never crash the
    # pipeline — reconciliation absorbs the renames
    drift = degradation["drift"]
    assert drift["errors"] == 0, (
        f"drift profile raised in {drift['errors']} scenario(s): "
        f"{list(summary['chaos_report']['profiles']['drift']['error_details'])}"
    )
    # every scale: the supervisor must recover and reproduce the
    # uninterrupted region output exactly, recovering post-checkpoint
    # ticks from the write-ahead log rather than the source
    recovery = summary["crash_recovery"]
    assert recovery["restarts"] >= 1, "crash never happened"
    assert recovery["regions_match_uninterrupted"], (
        f"recovered regions diverge: {recovery['closed_regions']}"
    )
    assert recovery["reprocessed_ticks"] == 0, (
        f"{recovery['reprocessed_ticks']} tick(s) re-pulled from the "
        f"source despite the write-ahead log"
    )
    # every scale: the tool's own telemetry must be diagnosable — a
    # regular dataset, a visible cache-miss step, and an explanation
    # naming the cache/generator symptoms (auto-detection is reported
    # but not gated: the step is one anomaly in a short window)
    dogfood = summary["dogfood"]
    assert dogfood["missing_after_regularize"] == 0, (
        f"obs telemetry irregular: {dogfood['missing_after_regularize']} "
        f"missing values after regularization"
    )
    assert dogfood["miss_rate_post_fault"] > dogfood["miss_rate_pre_fault"], (
        f"cache outage invisible in the metrics: miss rate "
        f"{dogfood['miss_rate_pre_fault']} -> "
        f"{dogfood['miss_rate_post_fault']}"
    )
    assert dogfood["cache_generator_predicates"], (
        "self-diagnosis produced no cache/generator predicates for the "
        "cache-outage window"
    )
    if summary["scale"] == "bench":
        margin_drop = moderate["margin_delta_vs_clean"]
        assert margin_drop >= -MAX_MODERATE_MARGIN_DROP, (
            f"moderate-profile margin degraded by {-margin_drop:.4f} "
            f"(bound {MAX_MODERATE_MARGIN_DROP})"
        )
        top1_drop = moderate["top1_delta_vs_clean"]
        assert top1_drop >= -MAX_MODERATE_TOP1_DROP, (
            f"moderate-profile top-1 degraded by {-top1_drop:.2f} "
            f"(bound {MAX_MODERATE_TOP1_DROP})"
        )
        drift_top1_drop = drift["top1_delta_vs_clean"]
        assert drift_top1_drop >= -MAX_DRIFT_TOP1_DROP, (
            f"drift-profile top-1 degraded by {-drift_top1_drop:.2f} "
            f"(bound {MAX_DRIFT_TOP1_DROP}) — reconciliation failing?"
        )


def test_chaos(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    chosen = os.environ.get("PERF_BENCH_SCALE", "bench")
    bench_summary = run_bench(chosen)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
