"""Extension bench — alternative detection strategies (Section 9).

Not a paper table: compares the Section 7 DBSCAN detector against the
robust z-score, single-indicator, and ensemble strategies on long runs,
measuring window overlap with the ground truth (Jaccard) and downstream
top-1 diagnosis accuracy when the detected window feeds the causal
models — extending Table 7's comparison beyond PerfAugur.
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.anomalies.library import ANOMALY_CAUSES
from repro.detect.strategies import (
    DbscanDetector,
    EnsembleDetector,
    RobustZScoreDetector,
    ThroughputDipDetector,
)
from repro.eval.harness import build_merged_models, rank_models, simulate_run
from repro.eval.metrics import topk_contains

STRATEGIES = {
    "DBSCAN (paper §7)": DbscanDetector,
    "Robust z-score": RobustZScoreDetector,
    "Latency/throughput dip": ThroughputDipDetector,
    "Ensemble (majority)": EnsembleDetector,
}


def jaccard(mask_a, mask_b) -> float:
    union = (mask_a | mask_b).sum()
    if union == 0:
        return 0.0
    return float((mask_a & mask_b).sum() / union)


def run_experiment():
    corpus = suite("tpcc")
    models = build_merged_models(
        corpus, {cause: (0, 1, 2, 3) for cause in corpus}, theta=MERGED_THETA
    )
    long_runs = [
        simulate_run(key, duration_s=55, normal_s=300, seed=8200 + i)
        for i, key in enumerate(ANOMALY_CAUSES)
    ]

    results = {}
    for name, factory in STRATEGIES.items():
        detector = factory()
        overlaps, top1 = [], []
        for dataset, truth, cause in long_runs:
            detection = detector.detect(dataset)
            truth_mask = truth.abnormal_mask(dataset)
            overlaps.append(jaccard(detection.mask, truth_mask))
            if not detection.found:
                top1.append(False)
                continue
            scores = rank_models(
                models, dataset, detection.to_region_spec()
            )
            top1.append(topk_contains(scores, cause, 1))
        results[name] = (float(np.mean(overlaps)), float(np.mean(top1)))
    return results


def test_ext_detectors(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, pct(overlap), pct(top1))
        for name, (overlap, top1) in results.items()
    ]
    print_table(
        "Extension: detection strategies — window overlap (Jaccard) and "
        "downstream top-1 diagnosis",
        ["strategy", "window overlap", "top-1 diagnosis"],
        rows,
    )
    dbscan = results["DBSCAN (paper §7)"]
    assert dbscan[0] > 0.5  # the paper's detector finds the windows
    # the ensemble never collapses below its weakest useful member
    assert results["Ensemble (majority)"][0] > 0.3
