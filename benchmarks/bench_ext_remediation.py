"""Extension bench — value of closed-loop auto-remediation (Section 10).

Not a paper table: quantifies the future-work feature we implemented.
For each Table 1 cause with a mapped action, run the online loop against
a long-lived anomaly, with and without remediation engaged, and compare
the excess latency endured (area over baseline) plus time to recovery.
"""

import numpy as np

from _shared import MERGED_THETA, print_table, suite
from repro.actions import AutoRemediator, RemediationLoop
from repro.actions.policy import RemediationPolicy
from repro.anomalies.base import ScheduledAnomaly
from repro.anomalies.library import make_anomaly
from repro.core.causal import CausalModelStore
from repro.eval.harness import build_model
from repro.workload.tpcc import tpcc_workload

CASES = ("cpu_saturation", "io_saturation", "network_congestion",
         "poorly_written_query", "lock_contention")


def build_store() -> CausalModelStore:
    store = CausalModelStore()
    for cause, runs in suite("tpcc").items():
        for run in runs[:3]:
            store.add(build_model(run, MERGED_THETA))
    return store


def run_case(key: str, store, engage: bool, seed: int):
    remediator = AutoRemediator(
        store if engage else CausalModelStore(),
        confidence_threshold=0.5,
    )
    loop = RemediationLoop(tpcc_workload(), remediator, check_every_s=5)
    anomaly = ScheduledAnomaly(
        make_anomaly(key, intensity=1.0), 60.0, 10_000.0
    )
    result = loop.run(180, [anomaly], seed=seed)
    latency = np.asarray(result.dataset.column("txn.avg_latency_ms"))
    baseline = max(result.baseline_latency_ms, 1e-9)
    excess = float(np.maximum(latency - baseline, 0.0)[60:].sum())
    return excess, result


def run_experiment():
    store = build_store()
    rows = []
    for i, key in enumerate(CASES):
        with_excess, with_result = run_case(key, store, True, 700 + i)
        without_excess, _ = run_case(key, store, False, 700 + i)
        recovery = (
            f"{with_result.time_to_recovery:.0f}s"
            if with_result.time_to_recovery is not None
            else "—"
        )
        reduction = 1.0 - with_excess / max(without_excess, 1e-9)
        rows.append(
            (
                make_anomaly(key).cause,
                with_result.action_name or "(none)",
                recovery,
                f"{reduction:.0%}",
            )
        )
    return rows


def test_ext_remediation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Extension: closed-loop auto-remediation vs letting it burn "
        "(excess latency = area over baseline after anomaly onset)",
        ["cause", "action taken", "time to recovery", "excess latency cut"],
        rows,
    )
    acted = [r for r in rows if r[1] != "(none)"]
    assert len(acted) >= 3  # most causes get remediated
