"""Figure 10 — explaining compound situations (Section 8.7).

Paper protocol: six compound cases (two or three anomalies at once);
causal models merged from every dataset of each class; report the ratio
of correct causes contained in the top-3 offered explanations and the
average F1 of the correct causes' predicates.

Paper result: more than two-thirds of the correct causes appear in the
top-3 on average; the hard case is 'Workload Spike + Network Congestion',
where congestion throttles the offered load and masks the spike.
"""

import numpy as np

from _shared import (
    BENCH_DURATIONS,
    MERGED_THETA,
    pct,
    print_table,
    suite,
)
from repro.anomalies import CompoundAnomaly, make_anomaly
from repro.anomalies.base import ScheduledAnomaly
from repro.engine import simulate_telemetry
from repro.eval.harness import build_model, rank_models
from repro.eval.metrics import score_predicates_mean
from repro.workload import tpcc_workload

COMPOUND_CASES = [
    ("cpu_saturation", "io_saturation", "network_congestion"),
    ("workload_spike", "flush_log_table"),
    ("workload_spike", "table_restore"),
    ("workload_spike", "cpu_saturation"),
    ("workload_spike", "io_saturation"),
    ("workload_spike", "network_congestion"),
]


def build_all_models():
    """One merged model per cause, from every dataset of the suite."""
    models = []
    for cause, runs in suite("tpcc").items():
        merged = None
        for run in runs:
            model = build_model(run, MERGED_THETA)
            merged = model if merged is None else merged.merge(model)
        models.append(merged)
    return models


def run_experiment():
    models = build_all_models()
    rows = []
    for case_idx, keys in enumerate(COMPOUND_CASES):
        compound = CompoundAnomaly([make_anomaly(k) for k in keys])
        dataset, spec = simulate_telemetry(
            tpcc_workload(),
            duration_s=170,
            anomalies=[ScheduledAnomaly(compound, 60.0, 110.0)],
            seed=4000 + case_idx,
            name=f"compound/{'+'.join(keys)}",
        )
        scores = rank_models(models, dataset, spec)
        top3 = [cause for cause, _ in scores[:3]]
        hits = sum(c in top3 for c in compound.causes)
        ratio = hits / len(compound.causes)

        f1s = []
        by_cause = {m.cause: m for m in models}
        for cause in compound.causes:
            f1s.append(
                score_predicates_mean(
                    by_cause[cause].predicates, dataset, spec
                ).f1
            )
        rows.append((compound.cause, ratio, float(np.mean(f1s))))
    return rows


def test_fig10_compound(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "Figure 10: compound situations, top-3 causes shown (paper: >2/3 "
        "of correct causes found; Spike+Congestion is the hard case)",
        ["compound case", "correct causes in top-3", "avg F1 of correct"],
        [(name, pct(r), pct(f)) for name, r, f in rows],
    )
    avg_ratio = np.mean([r for _, r, _ in rows])
    print(f"average ratio of correct causes: {pct(avg_ratio)}")
    assert avg_ratio > 0.5
