"""Figure 11 (Appendix B) — over-fitting in merged causal models.

Paper protocol: leave-one-out cross validation — merge causal models from
10 of 11 datasets per cause and score the held-out one; compare against
merging only 5.  More merges slightly raise absolute confidence (11a) but
the *margin* of confidence can shrink in some cases (11b): once every
irrelevant predicate is gone, further merging only widens bounds, which
also fits rival causes better — the over-fitting analogue the paper notes.
Top-2 accuracy stays high either way (11c).

Bench scale: merge 2 vs 3 of 4 datasets.
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.eval.harness import build_merged_models, rank_models
from repro.eval.metrics import margin_of_confidence, topk_contains


def leave_one_out(n_merge: int):
    corpus = suite("tpcc")
    n_runs = len(next(iter(corpus.values())))
    confidences = {c: [] for c in corpus}
    margins = {c: [] for c in corpus}
    top2 = {c: [] for c in corpus}
    for held_out in range(n_runs):
        train = [i for i in range(n_runs) if i != held_out][:n_merge]
        models = build_merged_models(
            corpus, {cause: train for cause in corpus}, theta=MERGED_THETA
        )
        for cause, runs in corpus.items():
            run = runs[held_out]
            scores = rank_models(models, run.dataset, run.spec)
            by_cause = dict(scores)
            confidences[cause].append(by_cause[cause])
            margins[cause].append(margin_of_confidence(scores, cause))
            top2[cause].append(topk_contains(scores, cause, 2))
    return confidences, margins, top2


def run_experiment():
    return {n: leave_one_out(n) for n in (2, 3)}


def test_fig11_overfitting(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    conf2, marg2, top2_small = results[2]
    conf3, marg3, top2_large = results[3]
    rows = [
        (
            cause,
            pct(np.mean(conf2[cause])),
            pct(np.mean(conf3[cause])),
            pct(np.mean(marg2[cause])),
            pct(np.mean(marg3[cause])),
            pct(np.mean(top2_large[cause])),
        )
        for cause in conf2
    ]
    print_table(
        "Figure 11: merging more datasets — confidence (a), margin (b), "
        "top-2 accuracy (c); paper: confidence up, margins can shrink, "
        "top-2 stays high",
        [
            "cause",
            "conf (2 merged)",
            "conf (3 merged)",
            "margin (2)",
            "margin (3)",
            "top-2 (3)",
        ],
        rows,
    )
    mean_conf2 = np.mean([np.mean(v) for v in conf2.values()])
    mean_conf3 = np.mean([np.mean(v) for v in conf3.values()])
    mean_top2 = np.mean([np.mean(v) for v in top2_large.values()])
    print(
        f"avg confidence {pct(mean_conf2)} -> {pct(mean_conf3)}; "
        f"top-2 with larger merge {pct(mean_top2)}"
    )
    assert mean_conf3 >= mean_conf2 - 0.02  # confidence does not degrade
    assert mean_top2 > 0.8  # accuracy survives heavier merging
