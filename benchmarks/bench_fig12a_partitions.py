"""Figure 12a (Appendix D) — effect of the number of partitions R.

Paper protocol: sweep R over {125, 250, 500, 1000, 2000}; report average
merged-model confidence and total computation time.

Paper result: confidence is nearly flat across R, while computation time
grows steeply beyond R = 1000 — hence the default of 250.
"""

import time

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.eval.harness import build_merged_models, rank_models

R_VALUES = (125, 250, 500, 1000, 2000)


def run_experiment():
    corpus = suite("tpcc")
    results = {}
    for n_partitions in R_VALUES:
        config = GeneratorConfig(
            theta=MERGED_THETA, n_partitions=n_partitions
        )
        started = time.perf_counter()
        models = build_merged_models(
            corpus,
            {cause: (0, 1, 2) for cause in corpus},
            theta=MERGED_THETA,
            config=config,
        )
        confidences = []
        for cause, runs in corpus.items():
            run = runs[3]  # held-out dataset
            scores = dict(
                rank_models(models, run.dataset, run.spec, n_partitions)
            )
            confidences.append(scores[cause])
        elapsed = time.perf_counter() - started
        results[n_partitions] = (float(np.mean(confidences)), elapsed)
    return results


def test_fig12a_partitions(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (f"R = {r}", pct(conf), f"{seconds:.1f}s")
        for r, (conf, seconds) in results.items()
    ]
    print_table(
        "Figure 12a: number of partitions vs confidence and compute time "
        "(paper: confidence flat, time grows with R)",
        ["partitions", "avg confidence of correct model", "compute time"],
        rows,
    )
    confs = [c for c, _ in results.values()]
    times = [t for _, t in results.values()]
    # shape: confidence roughly flat; the largest R costs the most
    assert max(confs) - min(confs) < 0.35
    assert times[-1] >= times[0]
