"""Figure 12b (Appendix D) — effect of the anomaly distance multiplier δ.

Paper protocol: sweep δ over {0.1, 0.5, 1, 5, 10} and report the average
confidence of the correct merged model.

Paper result: δ > 1 (more specific predicates) yields higher confidence;
DBSherlock defaults to δ = 10.
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.core.generator import GeneratorConfig
from repro.eval.harness import build_merged_models, rank_models

DELTAS = (0.1, 0.5, 1.0, 5.0, 10.0)


def run_experiment():
    corpus = suite("tpcc")
    results = {}
    for delta in DELTAS:
        config = GeneratorConfig(theta=MERGED_THETA, delta=delta)
        models = build_merged_models(
            corpus,
            {cause: (0, 1, 2) for cause in corpus},
            theta=MERGED_THETA,
            config=config,
        )
        confidences = []
        for cause, runs in corpus.items():
            run = runs[3]
            scores = dict(rank_models(models, run.dataset, run.spec))
            confidences.append(scores[cause])
        results[delta] = float(np.mean(confidences))
    return results


def test_fig12b_delta(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(f"δ = {d:g}", pct(conf)) for d, conf in results.items()]
    print_table(
        "Figure 12b: anomaly distance multiplier vs confidence "
        "(paper: δ > 1, i.e. more specific predicates, scores higher)",
        ["delta", "avg confidence of correct model"],
        rows,
    )
    # shape: the specific end (δ=10) is at least as good as the general
    # end (δ=0.1)
    assert results[10.0] >= results[0.1] - 0.02
