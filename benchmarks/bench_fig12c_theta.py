"""Figure 12c (Appendix D) — effect of the normalized difference threshold θ.

Paper protocol: sweep θ over {0.01, 0.05, 0.1, 0.2, 0.4}; report the
average number of generated predicates and the correct merged model's
confidence.

Paper result: predicates shrink monotonically with θ; confidence rises
slightly up to θ = 0.2 then drops sharply at θ = 0.4 (only over-specific
predicates survive).
"""

import numpy as np

from _shared import pct, print_table, suite
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.eval.harness import build_merged_models, rank_models

#: the paper sweeps up to 0.4; our simulated signatures are cleaner than
#: real telemetry (normalized differences cluster higher), so the
#: predicate-count collapse the paper sees at 0.4 appears at ~0.6-0.8 —
#: we extend the sweep to expose the same shape.
THETAS = (0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8)


def run_experiment():
    corpus = suite("tpcc")
    results = {}
    for theta in THETAS:
        config = GeneratorConfig(theta=theta)
        generator = PredicateGenerator(config)
        n_predicates = []
        for cause, runs in corpus.items():
            for run in runs[:2]:
                n_predicates.append(
                    len(generator.generate(run.dataset, run.spec))
                )
        models = build_merged_models(
            corpus,
            {cause: (0, 1, 2) for cause in corpus},
            theta=theta,
            config=config,
        )
        confidences = []
        for cause, runs in corpus.items():
            run = runs[3]
            scores = dict(rank_models(models, run.dataset, run.spec))
            confidences.append(scores[cause])
        results[theta] = (
            float(np.mean(n_predicates)),
            float(np.mean(confidences)),
        )
    return results


def test_fig12c_theta(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (f"θ = {t:g}", f"{n:.1f}", pct(conf))
        for t, (n, conf) in results.items()
    ]
    print_table(
        "Figure 12c: normalized difference threshold vs #predicates and "
        "confidence (paper: fewer predicates as θ grows; confidence "
        "collapses at θ = 0.4)",
        ["theta", "avg #predicates", "avg confidence of correct model"],
        rows,
    )
    counts = [n for n, _ in results.values()]
    # shape: predicate count decreases monotonically with θ
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # the extreme θ keeps only a few predicates
    assert counts[-1] < counts[0] / 2
