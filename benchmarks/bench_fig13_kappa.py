"""Figure 13 (Appendix D) — sensitivity of the independence threshold κt.

Paper protocol: on the synthetic SEM data of Appendix F, sweep κt over
[0, 0.3] and report the average F1 of the pruning decision (pruned
predicates = positives).

Paper result: F1 peaks around κt = 0.15, the default.
"""

import numpy as np

from _shared import pct, print_table
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.knowledge import prune_secondary_symptoms
from repro.synth.sem import sem_dataset

KAPPAS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
N_TRIALS = 120


def pruning_f1(kappa_t: float, trials) -> float:
    f1s = []
    for sd, predicates in trials:
        rule_attrs = sd.should_prune | sd.should_keep
        relevant = [p for p in predicates if p.attr in rule_attrs]
        if not relevant:
            continue
        _, pruned = prune_secondary_symptoms(
            predicates, sd.dataset, sd.rules, kappa_threshold=kappa_t
        )
        pruned_attrs = {p.attr for p in pruned}
        tp = len(pruned_attrs & sd.should_prune)
        fp = len(pruned_attrs & sd.should_keep)
        fn = len(
            {p.attr for p in relevant if p.attr in sd.should_prune}
            - pruned_attrs
        )
        if tp + fp + fn == 0:
            continue
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall:
            f1s.append(2 * precision * recall / (precision + recall))
        else:
            f1s.append(0.0)
    return float(np.mean(f1s)) if f1s else 0.0


def run_experiment():
    generator = PredicateGenerator(GeneratorConfig(theta=0.05))
    trials = []
    for seed in range(N_TRIALS):
        sd = sem_dataset(seed=seed)
        predicates = generator.generate(sd.dataset, sd.spec).predicates
        trials.append((sd, predicates))
    return {kappa: pruning_f1(kappa, trials) for kappa in KAPPAS}


def test_fig13_kappa(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(f"κt = {k:g}", pct(f1)) for k, f1 in results.items()]
    print_table(
        "Figure 13: independence threshold vs pruning F1 "
        "(paper: best around κt = 0.15)",
        ["threshold", "avg F1 of secondary-symptom pruning"],
        rows,
    )
    best = max(results, key=results.get)
    print(f"best threshold: {best:g} (paper: 0.15)")
    # shape: an interior threshold beats both extremes
    assert results[best] >= results[0.0]
    assert results[best] >= results[0.30]
    assert results[0.15] > 0.5
