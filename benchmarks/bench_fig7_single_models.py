"""Figure 7 — margin of confidence and F1 of single causal models.

Paper protocol (Section 8.3): for each of the 110 datasets, build a causal
model with θ=0.2 from that dataset alone and compute its confidence on the
other 109; the correct model must outrank the 9 incorrect-cause models.
Reported: per-cause average margin of confidence (correct minus best
incorrect) and the correct model's average predicate F1.

Paper result: the correct cause ranks first in all 10 test cases with an
average margin of 13.5 %; 'Table Restore' and 'Flush Log/Table' are the
hardest (both stress disk I/O).  Bench scale: 4 datasets/cause.
"""

import numpy as np

from _shared import pct, print_table, single_models, suite
from repro.eval.harness import rank_models
from repro.eval.metrics import (
    margin_of_confidence,
    score_predicates_mean,
    topk_contains,
)

PAPER_AVG_MARGIN = 0.135  # "on average 13.5%"


def run_experiment():
    corpus = suite("tpcc")
    models_by_cause = dict(single_models("tpcc"))
    rows = []
    all_margins = []
    all_top1 = []
    for cause, runs in corpus.items():
        margins, f1s, top1 = [], [], []
        n_models = len(models_by_cause[cause])
        for model_idx in range(n_models):
            correct = models_by_cause[cause][model_idx]
            competitors = [correct] + [
                other[model_idx % len(other)]
                for other_cause, other in models_by_cause.items()
                if other_cause != cause
            ]
            for test_idx, run in enumerate(runs):
                if test_idx == model_idx:
                    continue
                scores = rank_models(competitors, run.dataset, run.spec)
                margins.append(margin_of_confidence(scores, cause))
                top1.append(topk_contains(scores, cause, 1))
                f1s.append(
                    score_predicates_mean(
                        correct.predicates, run.dataset, run.spec
                    ).f1
                )
        rows.append(
            (cause, pct(np.mean(margins)), pct(np.mean(f1s)), pct(np.mean(top1)))
        )
        all_margins.append(np.mean(margins))
        all_top1.append(np.mean(top1))
    return rows, float(np.mean(all_margins)), float(np.mean(all_top1))


def test_fig7_single_models(benchmark):
    rows, avg_margin, avg_top1 = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_table(
        "Figure 7: single causal models (paper: margin avg 13.5%, "
        "correct model top-1 in all 10 cases)",
        ["cause", "margin of confidence", "F1 of correct model", "top-1"],
        rows,
    )
    print(f"average margin: {pct(avg_margin)} (paper: {pct(PAPER_AVG_MARGIN)})")
    print(f"average top-1: {pct(avg_top1)} (paper: 100%)")
    # shape assertions: correct model dominates on average
    assert avg_margin > 0.0
    assert avg_top1 > 0.8
