"""Figure 8a — margin of confidence: single vs merged causal models.

Paper protocol (Section 8.5): 50 random splits assigning ~half of each
cause's datasets (5 of 11) to construct merged models with θ=0.05, scored
on the rest.  Merging significantly raises the margin over single models
in every test case.  Bench scale: 8 trials, 2-of-4 train splits.
"""

import numpy as np

from _shared import (
    merged_protocol_trials,
    pct,
    print_table,
    single_models,
    suite,
)
from repro.eval.harness import rank_models
from repro.eval.metrics import margin_of_confidence


def run_experiment():
    corpus = suite("tpcc")
    # single-model margins (one model per cause, scored on all test data)
    singles = dict(single_models("tpcc"))
    single_margins = {cause: [] for cause in corpus}
    for cause, runs in corpus.items():
        for model_idx in range(len(singles[cause])):
            competitors = [singles[cause][model_idx]] + [
                other[model_idx % len(other)]
                for other_cause, other in singles.items()
                if other_cause != cause
            ]
            for test_idx, run in enumerate(runs):
                if test_idx == model_idx:
                    continue
                scores = rank_models(competitors, run.dataset, run.spec)
                single_margins[cause].append(
                    margin_of_confidence(scores, cause)
                )

    merged_margins = {cause: [] for cause in corpus}
    for models, test_runs in merged_protocol_trials():
        for run in test_runs:
            scores = rank_models(models, run.dataset, run.spec)
            merged_margins[run.cause].append(
                margin_of_confidence(scores, run.cause)
            )
    return single_margins, merged_margins


def test_fig8a_merge_margin(benchmark):
    single_margins, merged_margins = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    rows = [
        (
            cause,
            pct(np.mean(single_margins[cause])),
            pct(np.mean(merged_margins[cause])),
        )
        for cause in single_margins
    ]
    print_table(
        "Figure 8a: margin of confidence, single (1 dataset) vs merged "
        "models (paper: merging raises the margin in all test cases)",
        ["cause", "single model", "merged model"],
        rows,
    )
    single_avg = np.mean([np.mean(v) for v in single_margins.values()])
    merged_avg = np.mean([np.mean(v) for v in merged_margins.values()])
    print(f"average: single {pct(single_avg)} -> merged {pct(merged_avg)}")
    assert merged_avg > single_avg  # the paper's headline effect
