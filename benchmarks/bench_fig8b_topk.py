"""Figure 8b — ratio of correct explanations with merged causal models.

Paper protocol (Section 8.5): merged models (5 of 11 datasets, θ=0.05,
50 random splits, 300 explanation instances per test case); report how
often the correct cause appears among the top-1 / top-2 causes shown.

Paper result: top-1 ≥ 98 % in almost every test case; top-2 reaches 99 %
overall.  Bench scale: 8 trials, 2-of-4 splits.
"""

import numpy as np

from _shared import evaluate_topk, merged_protocol_trials, pct, print_table
from repro.eval.harness import rank_models
from repro.eval.metrics import topk_contains

PAPER_TOP1 = 0.98
PAPER_TOP2 = 0.99


def run_experiment():
    per_cause = {}
    for models, test_runs in merged_protocol_trials():
        for run in test_runs:
            scores = rank_models(models, run.dataset, run.spec)
            stats = per_cause.setdefault(run.cause, {1: [], 2: []})
            for k in (1, 2):
                stats[k].append(topk_contains(scores, run.cause, k))
    return per_cause


def test_fig8b_topk(benchmark):
    per_cause = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (cause, pct(np.mean(stats[1])), pct(np.mean(stats[2])))
        for cause, stats in per_cause.items()
    ]
    print_table(
        "Figure 8b: correct explanations with merged models "
        f"(paper: top-1 ~{pct(PAPER_TOP1)}, top-2 ~{pct(PAPER_TOP2)})",
        ["cause", "top-1 shown", "top-2 shown"],
        rows,
    )
    top1 = np.mean([np.mean(s[1]) for s in per_cause.values()])
    top2 = np.mean([np.mean(s[2]) for s in per_cause.values()])
    print(f"overall: top-1 {pct(top1)}, top-2 {pct(top2)}")
    assert top2 >= top1
    assert top1 > 0.8
