"""Figure 8c — merged-model accuracy vs number of datasets merged.

Paper protocol (Section 8.5): vary how many datasets (1-5) are merged
into each causal model; measure top-1/top-2 correct-cause ratios on
held-out datasets.  Accuracy climbs with more merges, reaching ~95 %
top-1 with just two datasets and ~99 % top-2 — DBSherlock needs only a
few manual diagnoses to become reliable.  Bench scale: 1-3 of 4 datasets,
8 trials per point.
"""

import numpy as np

from _shared import (
    BENCH_TRIALS,
    evaluate_topk,
    merged_protocol_trials,
    pct,
    print_table,
)


def run_experiment():
    results = {}
    for n_train in (1, 2, 3):
        top1, top2 = [], []
        for models, test_runs in merged_protocol_trials(
            n_train=n_train, n_trials=BENCH_TRIALS, seed=100 + n_train
        ):
            ratios = evaluate_topk(models, test_runs, ks=(1, 2))
            top1.append(ratios[1])
            top2.append(ratios[2])
        results[n_train] = (float(np.mean(top1)), float(np.mean(top2)))
    return results


def test_fig8c_num_datasets(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (f"{n} dataset(s)", pct(t1), pct(t2))
        for n, (t1, t2) in results.items()
    ]
    print_table(
        "Figure 8c: accuracy vs datasets merged (paper: ~95% top-1 with "
        "2 datasets, 99% top-2; accuracy grows with merges)",
        ["merged from", "top-1 shown", "top-2 shown"],
        rows,
    )
    # shape: more merges never hurt much, and 2+ datasets are accurate
    assert results[3][0] >= results[1][0] - 0.05
    assert results[2][1] > 0.85
