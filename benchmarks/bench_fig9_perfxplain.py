"""Figure 9 — DBSherlock predicates versus PerfXplain.

Paper protocol (Section 8.4): for each anomaly class, 10 of 11 datasets
train, 1 tests.  PerfXplain runs with 2 000 sampled pairs, scoring weight
0.8, and 2 predicates (its best setting); DBSherlock's predicates come
from merged causal models.  Reported per class: average precision, recall
and F1 of the generated predicates.

Paper result: DBSherlock beats PerfXplain on F1 in every test case —
28 % higher on average, up to 55 %.  Bench scale: 3-of-4 train, leave-one-
out over the 4th.
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.baselines.perfxplain import PerfXplain
from repro.eval.harness import build_model
from repro.eval.metrics import score_predicates_mean


def f1(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def run_experiment():
    corpus = suite("tpcc")
    rows = {}
    for cause, runs in corpus.items():
        db_scores, px_scores = [], []
        for test_idx, test_run in enumerate(runs):
            train_runs = [r for i, r in enumerate(runs) if i != test_idx]

            # DBSherlock: merged model from the training datasets
            merged = None
            for run in train_runs:
                model = build_model(run, MERGED_THETA)
                merged = model if merged is None else merged.merge(model)
            db_scores.append(
                score_predicates_mean(
                    merged.predicates, test_run.dataset, test_run.spec
                )
            )

            # PerfXplain on the same training data
            px = PerfXplain().fit(
                [r.dataset for r in train_runs],
                [r.spec for r in train_runs],
                seed=test_idx,
            )
            actual = test_run.spec.abnormal_mask(test_run.dataset)
            feats = px.feature_masks(test_run.dataset)
            precisions, recalls, f1s = [], [], []
            for mask in feats:
                tp = float((mask & actual).sum())
                p = tp / mask.sum() if mask.any() else 0.0
                r = tp / actual.sum()
                precisions.append(p)
                recalls.append(r)
                f1s.append(f1(p, r))
            px_scores.append(
                (
                    float(np.mean(precisions)) if precisions else 0.0,
                    float(np.mean(recalls)) if recalls else 0.0,
                    float(np.mean(f1s)) if f1s else 0.0,
                )
            )
        rows[cause] = (
            (
                float(np.mean([s.precision for s in db_scores])),
                float(np.mean([s.recall for s in db_scores])),
                float(np.mean([s.f1 for s in db_scores])),
            ),
            (
                float(np.mean([p for p, _, _ in px_scores])),
                float(np.mean([r for _, r, _ in px_scores])),
                float(np.mean([f for _, _, f in px_scores])),
            ),
        )
    return rows


def test_fig9_dbsherlock_vs_perfxplain(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = [
        (
            cause,
            pct(db[0]), pct(px[0]),
            pct(db[1]), pct(px[1]),
            pct(db[2]), pct(px[2]),
        )
        for cause, (db, px) in rows.items()
    ]
    print_table(
        "Figure 9: DBSherlock (DBS) vs PerfXplain (PX) — paper: DBS F1 "
        "higher in every case, +28% on average (up to +55%)",
        ["cause", "P DBS", "P PX", "R DBS", "R PX", "F1 DBS", "F1 PX"],
        table,
    )
    db_avg = np.mean([db[2] for db, _ in rows.values()])
    px_avg = np.mean([px[2] for _, px in rows.values()])
    wins = sum(db[2] >= px[2] for db, px in rows.values())
    print(
        f"average F1: DBSherlock {pct(db_avg)} vs PerfXplain {pct(px_avg)} "
        f"(DBSherlock wins {wins}/{len(rows)} cases)"
    )
    assert db_avg > px_avg  # the paper's headline comparison
    assert wins >= len(rows) // 2 + 1
