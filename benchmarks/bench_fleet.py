"""Fleet engine bench: 10k tenants through one columnar arena.

Drives :class:`repro.fleet.FleetDetector` over a synthetic fleet
(:class:`repro.fleet.sim.FleetSimSource`) and records what the tentpole
claims:

* **amortized per-stream cost** — fleet tick wall time divided by the
  streams served, asserted **sub-100 µs** at bench scale (10 000
  tenants x 8 attributes, capacity 60);
* **p99 tick-to-verdict latency** — per-stream, from the engine's
  ``verdict_latency`` (quiet streams get their verdict when the vector
  phase lands; fallout streams after their DBSCAN re-cluster);
* **bitwise equivalence** — a subsample of streams (anomalous and
  quiet) runs mirrored single-stream
  :class:`~repro.stream.detector.StreamingDetector` instances on the
  identical rows; every tick's verdict and the final checkpoints must
  be *equal*, not approximately equal, before any number is reported.

Two storm legs ride along (the anomaly-storm tentpole):

* **storm fallout clustering** — a fleet where ``--storm-fraction`` of
  the tenants degrade at once is driven twice over the *same*
  materialized rounds: once with the batched fallout path
  (``batch_fallout=True`` → ``cluster_windows_batch`` /
  ``close_regions_batch``) and once with the serial per-stream loop.
  Every tick's results are compared bitwise outside the timed sections,
  and the serial-vs-batched fleet-tick p99 speedup is asserted.  Each
  path is re-run over the identical rounds several times and the
  per-tick minimum taken — the work per tick index is deterministic, so
  the elementwise minimum strips scheduler noise without touching the
  comparison;
* **diagnosis throughput scaling** — a replay harness captures closed
  regions with their windows, then pushes the identical job list
  through :meth:`~repro.fleet.scheduler.FleetScheduler.submit_diagnosis`
  at ``diagnose_jobs=1`` and ``diagnose_jobs=8``; the throughput ratio
  (fused cross-job batching + sharded labeled-space cache) is asserted.

Results land in ``BENCH_fleet.json`` at the repo root.  Run standalone
(``PERF_BENCH_SCALE=tiny`` is the CI smoke scale, >= 200 tenants):

    python benchmarks/bench_fleet.py [--storm-fraction 1.0]

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_fleet.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.explain import DBSherlock  # noqa: E402
from repro.data.dataset import Dataset  # noqa: E402
from repro.data.regions import Region, RegionSpec  # noqa: E402
from repro.fleet import FleetDetector, FleetSimSource  # noqa: E402
from repro.fleet.scheduler import FleetScheduler  # noqa: E402
from repro.stream.detector import StreamingDetector  # noqa: E402

SCALES = {
    # CI smoke: small but still a real fleet (>= 200 tenants), with
    # generous latency floors — machine-speed variance must not flake CI.
    "tiny": dict(
        n_tenants=240,
        n_attrs=6,
        capacity=40,
        window=8,
        rounds=80,
        mirrors=6,
        anomaly_fraction=0.02,
        amortized_us_floor=2000.0,
        verdict_p99_ms_floor=500.0,
        storm=dict(streams=48, rounds=60, passes=2, speedup_floor=2.0),
        diagnosis=dict(
            jobs=48, attrs=8, rows=60, trials=3, scaling_floor=1.5
        ),
    ),
    # The recorded run: the ISSUE's 10k-tenant target.
    "bench": dict(
        n_tenants=10_000,
        n_attrs=8,
        capacity=60,
        window=10,
        rounds=150,
        mirrors=8,
        anomaly_fraction=0.002,
        amortized_us_floor=100.0,  # the tentpole acceptance number
        verdict_p99_ms_floor=None,  # recorded, not asserted
        storm=dict(streams=384, rounds=120, passes=3, speedup_floor=4.0),
        diagnosis=dict(
            jobs=96, attrs=16, rows=100, trials=5, scaling_floor=3.0
        ),
    ),
}

DETECTOR_KW = dict(
    pp_threshold=0.4,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)

# The storm legs run a hotter fleet: a lower potential-power threshold so
# a degraded tenant reliably falls out, capacity sized for per-tick
# re-clustering cost rather than history depth.
STORM_KW = dict(
    capacity=40,
    window=8,
    pp_threshold=0.3,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)

#: Ticks skipped before percentiles — ring buffers are still filling and
#: the first re-clusters compile/cache numpy internals.
_WARMUP_TICKS = 10


def _pick_mirrors(src: FleetSimSource, k: int) -> list:
    """Half anomalous, half quiet streams — both verdict paths covered."""
    anomalous = np.nonzero(src.anomalous)[0]
    quiet = np.nonzero(~src.anomalous)[0]
    take_a = min(k // 2, anomalous.size)
    picks = list(anomalous[:take_a]) + list(quiet[: k - take_a])
    return [int(s) for s in picks[:k]]


def _assert_stream_equal(tick, mirror_tick, stream: int) -> None:
    res = tick.result(stream)
    ref = mirror_tick.result
    assert res.selected_attributes == list(ref.selected_attributes), (
        f"stream {stream}: selection diverges"
    )
    assert np.array_equal(res.mask, ref.mask), (
        f"stream {stream}: masks diverge"
    )
    assert res.regions == ref.regions, f"stream {stream}: regions diverge"
    assert res.eps == ref.eps, f"stream {stream}: eps diverges"
    assert tick.closed.get(stream, []) == mirror_tick.closed_regions, (
        f"stream {stream}: closed regions diverge"
    )


def _assert_fleet_ticks_match(a, b) -> None:
    """Batched and serial fallout ticks must be *equal*, not close."""
    assert np.array_equal(a.selected, b.selected), "selection diverges"
    assert np.array_equal(a.powers, b.powers), "powers diverge"
    assert np.array_equal(a.reclustered, b.reclustered), (
        "recluster sets diverge"
    )
    assert sorted(a.results) == sorted(b.results), "fallout sets diverge"
    for s in a.results:
        ra, rb = a.result(s), b.result(s)
        assert ra.selected_attributes == rb.selected_attributes
        assert np.array_equal(ra.mask, rb.mask), f"stream {s}: mask"
        assert ra.regions == rb.regions, f"stream {s}: regions"
        assert ra.eps == rb.eps, f"stream {s}: eps"
    assert a.closed == b.closed, "closed regions diverge"


def run_bench(
    scale: str = "bench",
    write_json: bool = True,
    storm_fraction: float = 1.0,
) -> dict:
    params = SCALES[scale]
    S = params["n_tenants"]
    attrs = [f"m{j}" for j in range(params["n_attrs"])]
    src = FleetSimSource(
        S,
        attrs,
        seed=2016,
        anomaly_fraction=params["anomaly_fraction"],
        anomaly_period=40,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )
    fleet = FleetDetector(
        S,
        attrs,
        capacity=params["capacity"],
        window=params["window"],
        **DETECTOR_KW,
    )
    mirror_streams = _pick_mirrors(src, params["mirrors"])
    mirrors = {
        s: StreamingDetector(
            capacity=params["capacity"],
            window=params["window"],
            mode="exact",
            **DETECTOR_KW,
        )
        for s in mirror_streams
    }

    tick_seconds = []
    verdict_lat = []
    streams_served = 0
    fallout_streams = 0
    closed_total = 0
    for times, values, active in src.take(params["rounds"]):
        start = time.perf_counter()
        tick = fleet.tick(times, values, active)
        tick_seconds.append(time.perf_counter() - start)
        streams_served += int(active.sum())
        fallout_streams += len(tick.results)
        closed_total += sum(len(r) for r in tick.closed.values())
        lat = tick.verdict_latency[active]
        verdict_lat.append(lat[np.isfinite(lat)])
        for s, det in mirrors.items():
            if not active[s]:
                continue
            row = {a: values[s, j] for j, a in enumerate(attrs)}
            mirror_tick = det.tick(times[s], row, {})
            _assert_stream_equal(tick, mirror_tick, s)
    for s, det in mirrors.items():
        assert fleet.stream_checkpoint(s) == det.checkpoint(), (
            f"stream {s}: checkpoint diverges"
        )

    ticks = np.asarray(tick_seconds)
    lats = np.concatenate(verdict_lat)
    amortized_us = ticks.sum() / streams_served * 1e6
    summary = {
        "scale": scale,
        "n_tenants": S,
        "n_attrs": params["n_attrs"],
        "capacity": params["capacity"],
        "window": params["window"],
        "rounds": params["rounds"],
        "stream_ticks": streams_served,
        "fallout_streams": fallout_streams,
        "closed_regions": closed_total,
        "amortized_us_per_stream": round(float(amortized_us), 3),
        "fleet_tick_ms": {
            "p50": round(float(np.percentile(ticks, 50)) * 1e3, 3),
            "p99": round(float(np.percentile(ticks, 99)) * 1e3, 3),
            "mean": round(float(ticks.mean()) * 1e3, 3),
        },
        "tick_to_verdict_ms": {
            "p50": round(float(np.percentile(lats, 50)) * 1e3, 4),
            "p90": round(float(np.percentile(lats, 90)) * 1e3, 4),
            "p99": round(float(np.percentile(lats, 99)) * 1e3, 4),
            "n": int(lats.size),
        },
        "mirrored_streams": sorted(mirrors),
        # _assert_stream_equal / the checkpoint loop would have raised
        "bitwise_equal_to_per_stream": True,
        "amortized_us_floor": params["amortized_us_floor"],
    }
    summary["storm"] = run_storm(scale, storm_fraction)
    summary["diagnosis_scaling"] = run_diagnosis_scaling(scale)
    if write_json:
        out = _REPO_ROOT / "BENCH_fleet.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def run_storm(scale: str, storm_fraction: float = 1.0) -> dict:
    """Batched vs serial fallout clustering over identical storm rounds."""
    params = SCALES[scale]["storm"]
    S = params["streams"]
    attrs = [f"m{j}" for j in range(8)]
    src = FleetSimSource(
        S,
        attrs,
        seed=2016,
        anomaly_fraction=storm_fraction,
        anomaly_period=25,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )
    rounds = list(src.take(params["rounds"]))

    batched_ticks = None
    serial_ticks = None
    fallout = served = 0
    for _ in range(params["passes"]):
        batched = FleetDetector(S, attrs, batch_fallout=True, **STORM_KW)
        serial = FleetDetector(S, attrs, batch_fallout=False, **STORM_KW)
        tb, ts = [], []
        fallout = served = 0
        for times, values, active in rounds:
            t0 = time.perf_counter()
            a = batched.tick(times, values, active)
            t1 = time.perf_counter()
            b = serial.tick(times, values, active)
            t2 = time.perf_counter()
            tb.append(t1 - t0)
            ts.append(t2 - t1)
            _assert_fleet_ticks_match(a, b)  # outside the timed sections
            fallout += len(a.results)
            served += int(active.sum())
        for s in range(S):
            assert batched.stream_checkpoint(s) == serial.stream_checkpoint(
                s
            ), f"stream {s}: checkpoint diverges"
        # identical rounds → tick i does identical work every pass, so the
        # elementwise minimum strips scheduler noise, nothing else
        tb, ts = np.asarray(tb), np.asarray(ts)
        batched_ticks = (
            tb if batched_ticks is None else np.minimum(batched_ticks, tb)
        )
        serial_ticks = (
            ts if serial_ticks is None else np.minimum(serial_ticks, ts)
        )

    warm = slice(_WARMUP_TICKS, None)
    p99_batched = float(np.percentile(batched_ticks[warm], 99)) * 1e3
    p99_serial = float(np.percentile(serial_ticks[warm], 99)) * 1e3
    return {
        "streams": S,
        "rounds": params["rounds"],
        "passes": params["passes"],
        "storm_fraction": storm_fraction,
        "fallout_fraction": round(fallout / served, 3),
        "fleet_tick_p99_ms": {
            "batched": round(p99_batched, 3),
            "serial": round(p99_serial, 3),
        },
        "fleet_tick_mean_ms": {
            "batched": round(float(batched_ticks[warm].mean()) * 1e3, 3),
            "serial": round(float(serial_ticks[warm].mean()) * 1e3, 3),
        },
        "p99_speedup": round(p99_serial / p99_batched, 2),
        "speedup_floor": params["speedup_floor"],
        # _assert_fleet_ticks_match / checkpoints would have raised
        "bitwise_equal_to_serial": True,
    }


def _storm_jobs(params: dict) -> list:
    """Synthetic closed-region diagnosis jobs with captured windows."""
    attrs = [f"a{i}" for i in range(params["attrs"])]
    rows = params["rows"]
    lo, hi = rows // 3, rows // 3 + max(8, rows // 4)
    rng = np.random.default_rng(7)
    jobs = []
    for j in range(params["jobs"]):
        times = np.arange(rows, dtype=np.float64)
        cols = {}
        for i, a in enumerate(attrs):
            base = rng.normal(50.0 + 3 * i, 2.0, size=rows)
            base[lo : hi + 1] += 14.0
            cols[a] = base
        ds = Dataset(times, numeric=cols, name=f"storm-job{j}")
        jobs.append((j % 8, Region(float(lo), float(hi)), ds))
    return jobs


def run_diagnosis_scaling(scale: str) -> dict:
    """Replay the same diagnosis jobs at diagnose_jobs=1 vs 8."""
    params = SCALES[scale]["diagnosis"]
    attrs = [f"a{i}" for i in range(params["attrs"])]
    jobs = _storm_jobs(params)

    # one known cause so every diagnosis ranks against a real model
    sherlock = DBSherlock()
    _, region, ds0 = jobs[0]
    explanation = sherlock.explain(
        ds0, RegionSpec(abnormal=[region], normal=None)
    )
    sherlock.feedback("storm overload", explanation, ds0)

    def run_once(diagnose_jobs: int) -> float:
        # fresh Dataset objects per run: the labeled-space cache keys on
        # object identity, so reuse would turn the replay into pure hits
        fresh = [
            (
                stream,
                region,
                Dataset(
                    ds.timestamps,
                    numeric={a: np.asarray(ds.column(a)) for a in attrs},
                    name=ds.name,
                ),
            )
            for stream, region, ds in jobs
        ]
        sched = FleetScheduler(
            FleetDetector(8, attrs, **STORM_KW),
            sherlock=sherlock,
            diagnose_jobs=diagnose_jobs,
            max_pending=1_000_000,
            shed_policy="block",
            label_metrics=False,
        )
        t0 = time.perf_counter()
        for stream, reg, dataset in fresh:
            sched.submit_diagnosis(stream, reg, dataset=dataset)
        sched.drain()
        elapsed = time.perf_counter() - t0
        n_done = len(sched.diagnoses)
        for _tenant, _region, expl in sched.diagnoses:
            assert expl is not None and expl.predicates is not None
        sched.close()
        assert n_done == len(fresh), (
            f"lost diagnoses: {n_done}/{len(fresh)}"
        )
        return elapsed

    run_once(1)  # warm both code paths and numpy internals
    run_once(8)
    t1 = min(run_once(1) for _ in range(params["trials"]))
    t8 = min(run_once(8) for _ in range(params["trials"]))
    n_jobs = params["jobs"]
    return {
        "jobs": n_jobs,
        "attrs": params["attrs"],
        "rows": params["rows"],
        "trials": params["trials"],
        "diagnose_jobs_1_ms": round(t1 * 1e3, 2),
        "diagnose_jobs_8_ms": round(t8 * 1e3, 2),
        "jobs_per_s_at_1": round(n_jobs / t1, 1),
        "jobs_per_s_at_8": round(n_jobs / t8, 1),
        "throughput_ratio": round(t1 / t8, 2),
        "scaling_floor": params["scaling_floor"],
    }


def _report(summary: dict) -> None:
    print(f"\n=== fleet engine bench ({summary['scale']} scale) ===")
    print(
        f"{summary['n_tenants']} tenants x {summary['n_attrs']} attrs, "
        f"capacity {summary['capacity']}, {summary['rounds']} rounds "
        f"({summary['stream_ticks']} stream ticks, "
        f"{summary['fallout_streams']} fallouts, "
        f"{summary['closed_regions']} regions closed)"
    )
    tick = summary["fleet_tick_ms"]
    print(
        f"fleet tick        p50={tick['p50']:9.3f}ms "
        f"p99={tick['p99']:9.3f}ms mean={tick['mean']:9.3f}ms"
    )
    lat = summary["tick_to_verdict_ms"]
    print(
        f"tick-to-verdict   p50={lat['p50']:9.4f}ms "
        f"p90={lat['p90']:9.4f}ms p99={lat['p99']:9.4f}ms "
        f"(n={lat['n']})"
    )
    print(
        f"amortized per stream: {summary['amortized_us_per_stream']:.3f}us "
        f"(floor {summary['amortized_us_floor']}us)"
    )
    print(
        f"bitwise equal to per-stream detectors on "
        f"{len(summary['mirrored_streams'])} mirrored streams: "
        f"{summary['bitwise_equal_to_per_stream']}"
    )
    storm = summary["storm"]
    print(
        f"storm ({storm['streams']} streams, "
        f"fallout {storm['fallout_fraction']:.0%}): "
        f"tick p99 batched {storm['fleet_tick_p99_ms']['batched']:.2f}ms "
        f"vs serial {storm['fleet_tick_p99_ms']['serial']:.2f}ms "
        f"-> {storm['p99_speedup']:.2f}x "
        f"(floor {storm['speedup_floor']}x, bitwise equal: "
        f"{storm['bitwise_equal_to_serial']})"
    )
    diag = summary["diagnosis_scaling"]
    print(
        f"diagnosis ({diag['jobs']} jobs x {diag['attrs']} attrs): "
        f"{diag['jobs_per_s_at_1']:.0f} jobs/s at diagnose_jobs=1 vs "
        f"{diag['jobs_per_s_at_8']:.0f} at diagnose_jobs=8 "
        f"-> {diag['throughput_ratio']:.2f}x "
        f"(floor {diag['scaling_floor']}x)"
    )


def _check(summary: dict) -> None:
    assert summary["bitwise_equal_to_per_stream"]
    assert summary["stream_ticks"] > 0
    assert summary["n_tenants"] >= 200  # even the smoke is a real fleet
    floor = summary["amortized_us_floor"]
    assert summary["amortized_us_per_stream"] < floor, (
        f"amortized {summary['amortized_us_per_stream']}us/stream "
        f"exceeds the {floor}us floor"
    )
    p99_floor = SCALES[summary["scale"]].get("verdict_p99_ms_floor")
    if p99_floor is not None:
        assert summary["tick_to_verdict_ms"]["p99"] < p99_floor, (
            f"p99 tick-to-verdict {summary['tick_to_verdict_ms']['p99']}ms "
            f"exceeds the {p99_floor}ms floor"
        )
    storm = summary["storm"]
    assert storm["bitwise_equal_to_serial"]
    if storm["storm_fraction"] >= 0.5:
        assert storm["fallout_fraction"] >= 0.5, (
            f"storm produced only {storm['fallout_fraction']:.0%} fallout; "
            "the speedup claim needs a majority-fallout tick"
        )
        assert storm["p99_speedup"] >= storm["speedup_floor"], (
            f"storm tick p99 speedup {storm['p99_speedup']}x below the "
            f"{storm['speedup_floor']}x floor"
        )
    diag = summary["diagnosis_scaling"]
    assert diag["throughput_ratio"] >= diag["scaling_floor"], (
        f"diagnosis throughput ratio {diag['throughput_ratio']}x below "
        f"the {diag['scaling_floor']}x floor"
    )


def test_fleet(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("PERF_BENCH_SCALE", "bench"),
        choices=sorted(SCALES),
    )
    parser.add_argument(
        "--storm-fraction",
        type=float,
        default=1.0,
        help="fraction of tenants degrading at once in the storm leg "
        "(the speedup floor is only asserted at >= 0.5)",
    )
    cli = parser.parse_args()
    bench_summary = run_bench(cli.scale, storm_fraction=cli.storm_fraction)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
