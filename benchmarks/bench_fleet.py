"""Fleet engine bench: 10k tenants through one columnar arena.

Drives :class:`repro.fleet.FleetDetector` over a synthetic fleet
(:class:`repro.fleet.sim.FleetSimSource`) and records what the tentpole
claims:

* **amortized per-stream cost** — fleet tick wall time divided by the
  streams served, asserted **sub-100 µs** at bench scale (10 000
  tenants x 8 attributes, capacity 60);
* **p99 tick-to-verdict latency** — per-stream, from the engine's
  ``verdict_latency`` (quiet streams get their verdict when the vector
  phase lands; fallout streams after their DBSCAN re-cluster);
* **bitwise equivalence** — a subsample of streams (anomalous and
  quiet) runs mirrored single-stream
  :class:`~repro.stream.detector.StreamingDetector` instances on the
  identical rows; every tick's verdict and the final checkpoints must
  be *equal*, not approximately equal, before any number is reported.

Results land in ``BENCH_fleet.json`` at the repo root.  Run standalone
(``PERF_BENCH_SCALE=tiny`` is the CI smoke scale, >= 200 tenants):

    python benchmarks/bench_fleet.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_fleet.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.fleet import FleetDetector, FleetSimSource  # noqa: E402
from repro.stream.detector import StreamingDetector  # noqa: E402

SCALES = {
    # CI smoke: small but still a real fleet (>= 200 tenants), with
    # generous latency floors — machine-speed variance must not flake CI.
    "tiny": dict(
        n_tenants=240,
        n_attrs=6,
        capacity=40,
        window=8,
        rounds=80,
        mirrors=6,
        anomaly_fraction=0.02,
        amortized_us_floor=2000.0,
        verdict_p99_ms_floor=500.0,
    ),
    # The recorded run: the ISSUE's 10k-tenant target.
    "bench": dict(
        n_tenants=10_000,
        n_attrs=8,
        capacity=60,
        window=10,
        rounds=150,
        mirrors=8,
        anomaly_fraction=0.002,
        amortized_us_floor=100.0,  # the tentpole acceptance number
        verdict_p99_ms_floor=None,  # recorded, not asserted
    ),
}

DETECTOR_KW = dict(
    pp_threshold=0.4,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)


def _pick_mirrors(src: FleetSimSource, k: int) -> list:
    """Half anomalous, half quiet streams — both verdict paths covered."""
    anomalous = np.nonzero(src.anomalous)[0]
    quiet = np.nonzero(~src.anomalous)[0]
    take_a = min(k // 2, anomalous.size)
    picks = list(anomalous[:take_a]) + list(quiet[: k - take_a])
    return [int(s) for s in picks[:k]]


def _assert_stream_equal(tick, mirror_tick, stream: int) -> None:
    res = tick.result(stream)
    ref = mirror_tick.result
    assert res.selected_attributes == list(ref.selected_attributes), (
        f"stream {stream}: selection diverges"
    )
    assert np.array_equal(res.mask, ref.mask), (
        f"stream {stream}: masks diverge"
    )
    assert res.regions == ref.regions, f"stream {stream}: regions diverge"
    assert res.eps == ref.eps, f"stream {stream}: eps diverges"
    assert tick.closed.get(stream, []) == mirror_tick.closed_regions, (
        f"stream {stream}: closed regions diverge"
    )


def run_bench(scale: str = "bench", write_json: bool = True) -> dict:
    params = SCALES[scale]
    S = params["n_tenants"]
    attrs = [f"m{j}" for j in range(params["n_attrs"])]
    src = FleetSimSource(
        S,
        attrs,
        seed=2016,
        anomaly_fraction=params["anomaly_fraction"],
        anomaly_period=40,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )
    fleet = FleetDetector(
        S,
        attrs,
        capacity=params["capacity"],
        window=params["window"],
        **DETECTOR_KW,
    )
    mirror_streams = _pick_mirrors(src, params["mirrors"])
    mirrors = {
        s: StreamingDetector(
            capacity=params["capacity"],
            window=params["window"],
            mode="exact",
            **DETECTOR_KW,
        )
        for s in mirror_streams
    }

    tick_seconds = []
    verdict_lat = []
    streams_served = 0
    fallout_streams = 0
    closed_total = 0
    for times, values, active in src.take(params["rounds"]):
        start = time.perf_counter()
        tick = fleet.tick(times, values, active)
        tick_seconds.append(time.perf_counter() - start)
        streams_served += int(active.sum())
        fallout_streams += len(tick.results)
        closed_total += sum(len(r) for r in tick.closed.values())
        lat = tick.verdict_latency[active]
        verdict_lat.append(lat[np.isfinite(lat)])
        for s, det in mirrors.items():
            if not active[s]:
                continue
            row = {a: values[s, j] for j, a in enumerate(attrs)}
            mirror_tick = det.tick(times[s], row, {})
            _assert_stream_equal(tick, mirror_tick, s)
    for s, det in mirrors.items():
        assert fleet.stream_checkpoint(s) == det.checkpoint(), (
            f"stream {s}: checkpoint diverges"
        )

    ticks = np.asarray(tick_seconds)
    lats = np.concatenate(verdict_lat)
    amortized_us = ticks.sum() / streams_served * 1e6
    summary = {
        "scale": scale,
        "n_tenants": S,
        "n_attrs": params["n_attrs"],
        "capacity": params["capacity"],
        "window": params["window"],
        "rounds": params["rounds"],
        "stream_ticks": streams_served,
        "fallout_streams": fallout_streams,
        "closed_regions": closed_total,
        "amortized_us_per_stream": round(float(amortized_us), 3),
        "fleet_tick_ms": {
            "p50": round(float(np.percentile(ticks, 50)) * 1e3, 3),
            "p99": round(float(np.percentile(ticks, 99)) * 1e3, 3),
            "mean": round(float(ticks.mean()) * 1e3, 3),
        },
        "tick_to_verdict_ms": {
            "p50": round(float(np.percentile(lats, 50)) * 1e3, 4),
            "p90": round(float(np.percentile(lats, 90)) * 1e3, 4),
            "p99": round(float(np.percentile(lats, 99)) * 1e3, 4),
            "n": int(lats.size),
        },
        "mirrored_streams": sorted(mirrors),
        # _assert_stream_equal / the checkpoint loop would have raised
        "bitwise_equal_to_per_stream": True,
        "amortized_us_floor": params["amortized_us_floor"],
    }
    if write_json:
        out = _REPO_ROOT / "BENCH_fleet.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    print(f"\n=== fleet engine bench ({summary['scale']} scale) ===")
    print(
        f"{summary['n_tenants']} tenants x {summary['n_attrs']} attrs, "
        f"capacity {summary['capacity']}, {summary['rounds']} rounds "
        f"({summary['stream_ticks']} stream ticks, "
        f"{summary['fallout_streams']} fallouts, "
        f"{summary['closed_regions']} regions closed)"
    )
    tick = summary["fleet_tick_ms"]
    print(
        f"fleet tick        p50={tick['p50']:9.3f}ms "
        f"p99={tick['p99']:9.3f}ms mean={tick['mean']:9.3f}ms"
    )
    lat = summary["tick_to_verdict_ms"]
    print(
        f"tick-to-verdict   p50={lat['p50']:9.4f}ms "
        f"p90={lat['p90']:9.4f}ms p99={lat['p99']:9.4f}ms "
        f"(n={lat['n']})"
    )
    print(
        f"amortized per stream: {summary['amortized_us_per_stream']:.3f}us "
        f"(floor {summary['amortized_us_floor']}us)"
    )
    print(
        f"bitwise equal to per-stream detectors on "
        f"{len(summary['mirrored_streams'])} mirrored streams: "
        f"{summary['bitwise_equal_to_per_stream']}"
    )


def _check(summary: dict) -> None:
    assert summary["bitwise_equal_to_per_stream"]
    assert summary["stream_ticks"] > 0
    assert summary["n_tenants"] >= 200  # even the smoke is a real fleet
    floor = summary["amortized_us_floor"]
    assert summary["amortized_us_per_stream"] < floor, (
        f"amortized {summary['amortized_us_per_stream']}us/stream "
        f"exceeds the {floor}us floor"
    )
    p99_floor = SCALES[summary["scale"]].get("verdict_p99_ms_floor")
    if p99_floor is not None:
        assert summary["tick_to_verdict_ms"]["p99"] < p99_floor, (
            f"p99 tick-to-verdict {summary['tick_to_verdict_ms']['p99']}ms "
            f"exceeds the {p99_floor}ms floor"
        )


def test_fleet(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    chosen = os.environ.get("PERF_BENCH_SCALE", "bench")
    bench_summary = run_bench(chosen)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")