"""Fleet chaos bench: blast radius under tenant-targeted failure.

Drives the fleet with 20 % of its tenants actively hostile — the
``storm`` :data:`repro.eval.chaos.FLEET_PROFILES` profile — and asserts
the containment contract the robustness tentpole claims:

* **blast radius** — a fleet where the faulted slice's detection lanes
  raise mid-fallout (:class:`~repro.faults.LaneExceptionFault`) and the
  slice's diagnoses hang a worker thread
  (:class:`~repro.faults.DiagnosisHang`) is driven over the *same*
  materialized rounds as a fault-free twin.  Every clean tenant's tick
  outputs — selection, powers, fallout verdicts, closed regions — and
  final checkpoint must be *equal*, not approximately equal; zero
  exceptions may escape ``run_round``; and the job-conservation
  invariant (``diagnoses + shed + failures == closed regions``) must
  hold even with hostile tenants in the mix;
* **breaker drill** — a controlled diagnosis replay pushes hanging
  tenants through the soft/hard deadline tiers: soft misses publish
  degraded cached-models-only rankings, hard misses shed the jobs and
  trip the per-tenant circuit breaker (hostile tenants ejected, clean
  tenants untouched), and once the hang clears a half-open probe
  readmits the recovered tenant;
* **partial recovery** — one durable tenant's checkpoint is corrupted
  on disk between shutdown and
  :meth:`~repro.fleet.scheduler.FleetScheduler.recover`; the recovery
  report must name *exactly* that tenant as corrupt while every other
  durable tenant restores bitwise and replays its WAL tail.

Results land in ``BENCH_fleet_chaos.json`` at the repo root.  Run
standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_fleet_chaos.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
import traceback
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_fleet_chaos.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.explain import DBSherlock  # noqa: E402
from repro.data.dataset import Dataset  # noqa: E402
from repro.data.regions import Region, RegionSpec  # noqa: E402
from repro.eval.chaos import FLEET_PROFILES  # noqa: E402
from repro.faults import (  # noqa: E402
    CorruptTenantState,
    DiagnosisHang,
    LaneExceptionFault,
)
from repro.fleet import FleetDetector, FleetSimSource  # noqa: E402
from repro.fleet.scheduler import FleetScheduler  # noqa: E402

SCALES = {
    # CI smoke: a small fleet, but the same 20 % hostile slice and the
    # same containment assertions as the recorded run.
    "tiny": dict(
        n_tenants=40,
        n_attrs=6,
        rounds=60,
        extra_rounds=6,
        readmit_rounds=5,
        diagnose_jobs=4,
    ),
    # The recorded run.
    "bench": dict(
        n_tenants=200,
        n_attrs=8,
        rounds=80,
        extra_rounds=8,
        readmit_rounds=5,
        diagnose_jobs=8,
    ),
}

# The storm detector configuration from bench_fleet.py: a hot fleet
# where every tenant degrades, so hostile tenants are guaranteed to
# fall out, close regions, and exercise the containment seams.
STORM_KW = dict(
    capacity=40,
    window=8,
    pp_threshold=0.3,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)


def _seed_sherlock(attrs: list) -> DBSherlock:
    """A sherlock with one accepted causal model over *attrs*."""
    rows, lo, hi = 80, 30, 50
    rng = np.random.default_rng(11)
    cols = {}
    for i, a in enumerate(attrs):
        base = rng.normal(50.0 + 3 * i, 2.0, size=rows)
        base[lo : hi + 1] += 14.0
        cols[a] = base
    ds = Dataset(
        np.arange(rows, dtype=np.float64), numeric=cols, name="chaos-seed"
    )
    sherlock = DBSherlock()
    explanation = sherlock.explain(
        ds, RegionSpec(abnormal=[Region(float(lo), float(hi))], normal=None)
    )
    sherlock.feedback("storm overload", explanation, ds)
    return sherlock


def _mask_rows(arr: np.ndarray, clean_idx: np.ndarray, S: int) -> np.ndarray:
    """Project a per-stream bool mask or stream-index array onto clean."""
    arr = np.asarray(arr)
    if arr.dtype == bool and arr.shape[:1] == (S,):
        return arr[clean_idx]
    return np.intersect1d(arr, clean_idx)


def _clean_signature(tick, clean_idx: np.ndarray, clean_set: set, S: int):
    """Everything a clean tenant's verdict consists of, this tick."""
    results = {}
    for s, res in tick.results.items():
        if s in clean_set:
            results[int(s)] = (
                list(res.selected_attributes),
                res.mask.tobytes(),
                int(res.mask.size),
                list(res.regions),
                float(res.eps),
            )
    closed = {
        int(s): list(regs) for s, regs in tick.closed.items() if s in clean_set
    }
    return (
        tick.selected[clean_idx].copy(),
        tick.powers[clean_idx].copy(),
        _mask_rows(tick.accepted, clean_idx, S),
        _mask_rows(tick.dropped, clean_idx, S),
        _mask_rows(tick.reclustered, clean_idx, S),
        results,
        closed,
    )


def _assert_signatures_equal(faulted, baseline, tick_no: int) -> None:
    names = (
        "selection",
        "powers",
        "accepted",
        "dropped",
        "reclustered",
    )
    for name, a, b in zip(names, faulted[:5], baseline[:5]):
        assert np.array_equal(a, b, equal_nan=True), (
            f"tick {tick_no}: clean-tenant {name} diverges under chaos"
        )
    assert faulted[5] == baseline[5], (
        f"tick {tick_no}: clean-tenant fallout verdicts diverge under chaos"
    )
    assert faulted[6] == baseline[6], (
        f"tick {tick_no}: clean-tenant closed regions diverge under chaos"
    )


def run_blast_radius(scale: str) -> dict:
    """The combined leg: lane faults + hangs + one corrupt durable tenant."""
    params = SCALES[scale]
    S = params["n_tenants"]
    attrs = [f"m{j}" for j in range(params["n_attrs"])]
    tenants = [f"t{i:04d}" for i in range(S)]
    profile = FLEET_PROFILES["storm"]
    roles = profile.assign(tenants, seed=7)
    index_of = {name: i for i, name in enumerate(tenants)}
    lane_streams = [index_of[t] for t in roles["lane"]]
    clean_idx = np.asarray([index_of[t] for t in roles["clean"]], dtype=int)
    clean_set = set(int(i) for i in clean_idx)

    # every tenant storms, so every hostile tenant actually falls out
    src = FleetSimSource(
        S,
        attrs,
        seed=2016,
        anomaly_fraction=1.0,
        anomaly_period=25,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )
    rounds = list(src.take(params["rounds"]))

    def drive(sched: FleetScheduler, materialized) -> tuple:
        sigs, errors = [], []
        for times, values, active in materialized:
            try:
                tick = sched.run_round(times, values, active)
            except Exception:
                errors.append(traceback.format_exc(limit=4))
                sigs.append(None)
                continue
            sigs.append(_clean_signature(tick, clean_idx, clean_set, S))
        return sigs, errors

    # --- fault-free twin -------------------------------------------------
    baseline = FleetScheduler(
        FleetDetector(S, attrs, **STORM_KW),
        tenants=tenants,
        sherlock=_seed_sherlock(attrs),
        diagnose_jobs=params["diagnose_jobs"],
        max_pending=64,
        shed_policy="drop_oldest",
        label_metrics=False,
    )
    base_sigs, base_errors = drive(baseline, rounds)
    baseline.drain()
    base_ckpts = {
        int(s): baseline.detector.stream_checkpoint(int(s)) for s in clean_idx
    }
    base_report = baseline.report
    baseline.close()

    # --- faulted fleet ---------------------------------------------------
    durable = roles["corrupt"] + roles["clean"][:3]
    lane_fault = LaneExceptionFault(lane_streams, after_fallouts=1)
    hang = DiagnosisHang(roles["hang"], hang_s=profile.hang_s)
    with tempfile.TemporaryDirectory(prefix="fleet-chaos-") as tmp:
        root = Path(tmp)
        sched = FleetScheduler(
            FleetDetector(S, attrs, **STORM_KW),
            tenants=tenants,
            sherlock=hang.wrap(_seed_sherlock(attrs)),
            root_dir=root,
            durable=durable,
            diagnose_jobs=params["diagnose_jobs"],
            max_pending=64,
            shed_policy="drop_oldest",
            label_metrics=False,
        )
        sched.detector.install_lane_fault(lane_fault)
        t0 = time.perf_counter()
        fault_sigs, fault_errors = drive(sched, rounds)
        sched.drain()
        chaos_s = time.perf_counter() - t0

        # Zero uncaught exceptions may escape run_round — on either run.
        assert not base_errors, f"fault-free run raised:\n{base_errors[0]}"
        assert not fault_errors, (
            f"chaos escaped run_round ({len(fault_errors)} raised):\n"
            f"{fault_errors[0]}"
        )
        # Every clean tenant's tick outputs and verdicts are bitwise
        # equal to the fault-free run's, tick by tick.
        assert len(fault_sigs) == len(base_sigs)
        for tick_no, (fs, bs) in enumerate(zip(fault_sigs, base_sigs)):
            _assert_signatures_equal(fs, bs, tick_no)
        for s in clean_idx:
            assert (
                sched.detector.stream_checkpoint(int(s)) == base_ckpts[int(s)]
            ), f"stream {int(s)}: clean checkpoint diverges under chaos"

        # The bulkhead poisoned exactly the raising lanes, nothing else.
        poisoned = {int(s) for s in np.nonzero(sched.detector.poisoned)[0]}
        assert poisoned == set(lane_streams), (
            f"poisoned lanes {sorted(poisoned)} != "
            f"faulted lanes {sorted(lane_streams)}"
        )
        for t in roles["lane"]:
            assert sched.health.state(t) == "quarantined", t
        for t in roles["clean"]:
            assert sched.health.state(t) == "healthy", t

        # Conservation: every closed region was diagnosed, shed, or
        # failed terminally — hostile tenants cannot make work vanish.
        report = sched.report
        conserved = (
            report.diagnoses + report.shed + report.diagnosis_failures
            == report.closed_regions
        )
        assert conserved, (
            f"{report.diagnoses} diagnosed + {report.shed} shed + "
            f"{report.diagnosis_failures} failed != "
            f"{report.closed_regions} closed"
        )

        # A fixed lane is readmitted and resumes producing verdicts.
        readmit_tenant = roles["lane"][0]
        lane_fault.active = False
        sched.readmit(readmit_tenant)
        for times, values, active in src.take(params["readmit_rounds"]):
            sched.run_round(times, values, active)
        s_readmit = index_of[readmit_tenant]
        assert not bool(sched.detector.poisoned[s_readmit])
        assert sched.health.state(readmit_tenant) == "healthy"

        # Durability: checkpoint, keep ticking so the WAL has a tail,
        # rot one tenant's checkpoint on disk, then partially recover.
        sched.checkpoint()
        for times, values, active in src.take(params["extra_rounds"]):
            sched.run_round(times, values, active)
        sched.drain()
        ref_ckpts = {
            name: sched.detector.stream_checkpoint(index_of[name])
            for name in durable
        }
        sched.close()

        corrupted = CorruptTenantState(roles["corrupt"], mode="checkpoint")
        assert corrupted.apply(root) == roles["corrupt"]
        recovered = FleetScheduler.recover(root, durable, label_metrics=False)
        rec_report = recovered.recovery_report
        assert rec_report is not None
        assert rec_report.corrupt == roles["corrupt"], (
            f"recovery blamed {rec_report.corrupt}, "
            f"expected exactly {roles['corrupt']}"
        )
        survivors = [t for t in durable if t not in roles["corrupt"]]
        assert rec_report.recovered == survivors
        replayed = 0
        for i, name in enumerate(durable):
            outcome = rec_report.outcome(name)
            if name in roles["corrupt"]:
                assert recovered.health.state(name) == "quarantined"
                continue
            assert outcome.replayed_ticks > 0, (
                f"{name}: WAL tail was not replayed"
            )
            replayed += outcome.replayed_ticks
            assert (
                recovered.detector.stream_checkpoint(i) == ref_ckpts[name]
            ), f"{name}: recovered checkpoint diverges"
        recovered.close()

    return {
        "n_tenants": S,
        "rounds": params["rounds"],
        "profile": profile.name,
        "tenants_faulted": len(roles["lane"])
        + len(roles["hang"])
        + len(roles["corrupt"]),
        "lane_tenants": len(roles["lane"]),
        "hang_tenants": len(roles["hang"]),
        "corrupt_tenants": roles["corrupt"],
        "clean_tenants": len(roles["clean"]),
        "chaos_wall_s": round(chaos_s, 3),
        "uncaught_exceptions": len(fault_errors),
        "diagnosis_hangs": hang.hangs,
        "lanes_poisoned": len(poisoned),
        "clean_bitwise_equal": True,  # the assertions above would have raised
        "conservation_holds": bool(conserved),
        "lane_readmitted": readmit_tenant,
        "closed_regions": report.closed_regions,
        "diagnoses": report.diagnoses,
        "shed": report.shed,
        "diagnosis_failures": report.diagnosis_failures,
        "recovery": rec_report.to_dict(),
        "replayed_ticks": replayed,
    }


def run_breaker_drill() -> dict:
    """Deadline tiers + circuit breaker on a controlled diagnosis replay.

    Fixed-size at every scale: the drill is about state transitions, not
    throughput.  Hanging tenants are submitted as tenant-pure batches so
    every breaker verdict is attributable.
    """
    attrs = [f"m{j}" for j in range(6)]
    clean = [f"c{i}" for i in range(4)]
    hostile = [f"h{i}" for i in range(3)]
    tenants = clean + hostile
    soft_s, hard_s, hang_s = 0.2, 0.4, 0.5
    rows, lo, hi = 60, 20, 35
    rng = np.random.default_rng(29)

    def job_dataset(tenant: str, j: int) -> Dataset:
        cols = {}
        for i, a in enumerate(attrs):
            base = rng.normal(50.0 + 3 * i, 2.0, size=rows)
            base[lo : hi + 1] += 14.0
            cols[a] = base
        return Dataset(
            np.arange(rows, dtype=np.float64),
            numeric=cols,
            name=f"fleet:{tenant}",
        )

    region = Region(float(lo), float(hi))
    hang = DiagnosisHang(hostile, hang_s=hang_s)
    # pp_threshold 0.9: the quiet rounds that age the breaker cooldown
    # must not fall out and enqueue their own diagnoses
    detector = FleetDetector(
        len(tenants), attrs, capacity=40, window=8, pp_threshold=0.9
    )
    sched = FleetScheduler(
        detector,
        tenants=tenants,
        sherlock=hang.wrap(_seed_sherlock(attrs)),
        diagnose_jobs=2,
        max_pending=1_000_000,
        shed_policy="drop_oldest",
        label_metrics=False,
        soft_deadline_s=soft_s,
        hard_deadline_s=hard_s,
        breaker_threshold=2,
        breaker_cooldown_rounds=3,
    )

    def submit_pair(tenant: str) -> None:
        s = tenants.index(tenant)
        for j in range(2):  # 2 == diagnose_jobs: tenant-pure batches
            sched.submit_diagnosis(s, region, dataset=job_dataset(tenant, j))

    def quiet_rounds(n: int, start: float) -> None:
        Sd = len(tenants)
        for k in range(n):
            times = np.full(Sd, start + k, dtype=np.float64)
            values = rng.normal(50.0, 1.0, size=(Sd, len(attrs)))
            sched.run_round(times, values)

    # Phase 1: clean tenants diagnose normally, no deadline pressure.
    for t in clean:
        submit_pair(t)
    sched.drain()
    assert sched.report.diagnoses == 2 * len(clean)
    assert sched.report.deadline_misses == 0
    assert all(
        sched.health.breakers[t].state == "closed" for t in tenants
    )

    # Phase 2: hostile tenants hang past both tiers.  Soft settles each
    # batch as a degraded cached-models-only ranking; the still-running
    # zombie worker is charged the hard tier when it finally returns,
    # tripping the breaker (threshold 2 = one pure batch).
    for t in hostile:
        submit_pair(t)
    sched.drain()
    # let every zombie worker finish and self-report its hard overrun
    time.sleep(hang_s * 2 * 2 + 0.5)
    report = sched.report
    assert report.breaker_opens == len(hostile), (
        f"breaker opened {report.breaker_opens}x, "
        f"expected once per hostile tenant ({len(hostile)})"
    )
    for t in hostile:
        assert sched.health.breakers[t].state == "open", t
        assert sched.health.state(t) == "ejected", t
    for t in clean:
        assert sched.health.breakers[t].state == "closed", t
        assert sched.health.state(t) == "healthy", t
    assert report.degraded_rankings >= 2 * len(hostile)
    assert report.deadline_misses >= 2 * 2 * len(hostile)  # soft + hard
    degraded_published = report.degraded_rankings

    # Phase 3: clean tenants are untouched by the ejections.
    before = sched.report.diagnoses
    misses_before = sched.report.deadline_misses
    for t in clean:
        submit_pair(t)
    sched.drain()
    assert sched.report.diagnoses - before == 2 * len(clean)
    assert sched.report.deadline_misses == misses_before

    # Phase 4: an open breaker sheds instead of diagnosing.
    shed_before = sched.report.shed
    sched.submit_diagnosis(
        tenants.index(hostile[0]), region, dataset=job_dataset(hostile[0], 9)
    )
    sched.drain()
    assert sched.report.shed == shed_before + 1

    # Phase 5: the tenant recovers; after the cooldown a half-open
    # probe is admitted, succeeds, and readmits it.
    hang.active = False
    quiet_rounds(5, start=1.0)  # cooldown_rounds=3
    sched.submit_diagnosis(
        tenants.index(hostile[0]), region, dataset=job_dataset(hostile[0], 10)
    )
    sched.drain()
    assert sched.report.breaker_readmits == 1
    assert sched.health.breakers[hostile[0]].state == "closed"
    assert sched.health.state(hostile[0]) == "healthy"
    summary = {
        "clean_tenants": len(clean),
        "hostile_tenants": len(hostile),
        "soft_deadline_s": soft_s,
        "hard_deadline_s": hard_s,
        "hang_s": hang_s,
        "breaker_opens": report.breaker_opens,
        "breaker_readmits": sched.report.breaker_readmits,
        "degraded_rankings": degraded_published,
        "deadline_misses": sched.report.deadline_misses,
        "retries": sched.report.retries,
        "shed": sched.report.shed,
        "readmitted_tenant": hostile[0],
        "clean_untouched": True,  # phase 3 assertions would have raised
    }
    sched.close()
    return summary


def run_chaos_bench(scale: str = "bench", write_json: bool = True) -> dict:
    summary = {
        "scale": scale,
        "blast_radius": run_blast_radius(scale),
        "breaker_drill": run_breaker_drill(),
    }
    if write_json:
        out = _REPO_ROOT / "BENCH_fleet_chaos.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    blast = summary["blast_radius"]
    print(f"\n=== fleet chaos bench ({summary['scale']} scale) ===")
    print(
        f"{blast['n_tenants']} tenants, {blast['rounds']} rounds, "
        f"profile '{blast['profile']}': {blast['tenants_faulted']} hostile "
        f"({blast['lane_tenants']} raising lanes, "
        f"{blast['hang_tenants']} hanging diagnoses, "
        f"{len(blast['corrupt_tenants'])} corrupt durable)"
    )
    print(
        f"blast radius      {blast['lanes_poisoned']} lanes poisoned, "
        f"{blast['clean_tenants']} clean tenants bitwise-equal: "
        f"{blast['clean_bitwise_equal']}, uncaught exceptions: "
        f"{blast['uncaught_exceptions']}"
    )
    print(
        f"conservation      {blast['diagnoses']} diagnosed + "
        f"{blast['shed']} shed + {blast['diagnosis_failures']} failed "
        f"== {blast['closed_regions']} closed: "
        f"{blast['conservation_holds']}"
    )
    rec = blast["recovery"]
    print(
        f"recovery          recovered {len(rec['recovered'])}, corrupt "
        f"{rec['corrupt']}, {blast['replayed_ticks']} WAL ticks replayed"
    )
    drill = summary["breaker_drill"]
    print(
        f"breaker drill     {drill['breaker_opens']} opens "
        f"(threshold 2 @ hard {drill['hard_deadline_s']}s), "
        f"{drill['degraded_rankings']} degraded rankings, "
        f"{drill['breaker_readmits']} readmitted "
        f"({drill['readmitted_tenant']}), clean untouched: "
        f"{drill['clean_untouched']}"
    )


def _check(summary: dict) -> None:
    blast = summary["blast_radius"]
    assert blast["uncaught_exceptions"] == 0
    assert blast["clean_bitwise_equal"]
    assert blast["conservation_holds"]
    assert blast["lanes_poisoned"] == blast["lane_tenants"]
    assert blast["tenants_faulted"] >= 0.15 * blast["n_tenants"]
    assert blast["diagnosis_hangs"] > 0, "hang fault never fired"
    assert blast["recovery"]["corrupt"] == blast["corrupt_tenants"]
    assert blast["replayed_ticks"] > 0
    drill = summary["breaker_drill"]
    assert drill["breaker_opens"] == drill["hostile_tenants"]
    assert drill["breaker_readmits"] == 1
    assert drill["degraded_rankings"] >= 2 * drill["hostile_tenants"]
    assert drill["clean_untouched"]


def test_fleet_chaos(benchmark):
    summary = benchmark.pedantic(
        lambda: run_chaos_bench("tiny", write_json=False),
        rounds=1,
        iterations=1,
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("PERF_BENCH_SCALE", "bench"),
        choices=sorted(SCALES),
    )
    cli = parser.parse_args()
    bench_summary = run_chaos_bench(cli.scale)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
