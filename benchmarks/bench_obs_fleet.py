"""Fleet flight-recorder bench: overhead, forensics fidelity, bounded storms.

Three legs, one contract per leg:

* **overhead** — the always-on flight recorder (tail-sampled spans,
  metric exemplars, per-round timeline sampling, armed incident
  recorder) must cost **< 3 %** amortized per stream tick against a
  recorder-off twin driven over the *same* materialized rounds, and the
  two fleets must produce identical tick outcomes.  A clean run writes
  **zero** incident bytes: the ``incidents/`` directory must not exist
  at all afterwards.
* **forensics** — two chaos profiles (a full disk degrading a durable
  tenant's WAL, and hanging diagnoses blowing through both deadline
  tiers) each trigger an incident bundle.  The bundles alone — no live
  fleet — train a knowledge base via :func:`repro.obs.incident.
  explain_bundle` + ``DBSherlock.feedback``; a *fresh* storage incident
  (different seed, different victim tenant) must then rank
  ``storage outage`` top-1, both through the library and through
  ``repro-sherlock obs incidents explain --models``.
* **storm** — repeated degrade/heal cycles across several tenants slam
  the incident recorder; bundle count and bytes must respect the
  per-tenant cap and global disk budget (overshoot bounded by one
  bundle), with suppressed snapshots counted, not dropped silently.

Results land in ``BENCH_obs_fleet.json`` at the repo root.  Run
standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_obs_fleet.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import gc
import io
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_obs_fleet.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core.explain import DBSherlock  # noqa: E402
from repro.data.dataset import Dataset  # noqa: E402
from repro.data.regions import Region  # noqa: E402
from repro.faults import DiagnosisHang  # noqa: E402
from repro.faults import fs as fsmod  # noqa: E402
from repro.faults.fs import FullDisk, StorageShim  # noqa: E402
from repro.fleet import FleetDetector, FleetSimSource  # noqa: E402
from repro.fleet.scheduler import FleetScheduler  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.obs.flight import FlightRecorder  # noqa: E402
from repro.obs.incident import (  # noqa: E402
    IncidentRecorder,
    explain_bundle,
    list_bundles,
)

SCALES = {
    # CI smoke: a small fleet, the same contracts.
    "tiny": dict(
        overhead_tenants=40,
        overhead_rounds=40,
        trials=3,
        n_attrs=6,
        chaos_tenants=6,
        chaos_rounds=48,
        fault_round=28,
        heal_round=38,
        storm_rounds=60,
    ),
    # The recorded run.  ``overhead_tenants`` matches the chaos bench's
    # fleet scale so the recorder's fixed per-round cost amortizes over
    # the same number of stream ticks CI actually runs.
    "bench": dict(
        overhead_tenants=200,
        overhead_rounds=60,
        trials=6,
        n_attrs=8,
        chaos_tenants=8,
        chaos_rounds=48,
        fault_round=28,
        heal_round=38,
        storm_rounds=60,
    ),
}

#: Acceptance ceiling for the always-on recorder, per stream tick.
MAX_RECORDER_OVERHEAD = 0.03
#: The tiny CI smoke runs on a noisy shared box; gross-regression guard.
TINY_SLACK = 5.0


def _attrs(n: int):
    return [f"m{j:02d}" for j in range(n)]


def _names(n: int):
    return [f"t{i:02d}" for i in range(n)]


def _quiet_detector(n_streams: int, attrs):
    """A detector that never falls out on calm traffic (pp 0.9)."""
    return FleetDetector(
        n_streams, attrs, capacity=40, window=8, pp_threshold=0.9
    )


def _counter_sum(prefix: str) -> float:
    """Sum every flat-sample value whose name starts with *prefix*."""
    row, _kinds = metrics.REGISTRY.flat_sample()
    return sum(v for k, v in row.items() if k.startswith(prefix))


def _tick_signature(sched: FleetScheduler) -> tuple:
    report = sched.report
    return (
        report.rounds,
        report.stream_ticks,
        report.closed_regions,
        report.abnormal_verdicts,
        report.diagnoses,
    )


# ---------------------------------------------------------------------------
# Leg 1: recorder overhead + bitwise-absent incidents on a clean run
# ---------------------------------------------------------------------------
def run_overhead(scale: str) -> dict:
    """Recorder-on vs recorder-off, interleaved round by round.

    Both fleets replay the same materialized batches; within every
    round the two ``run_round`` calls execute back to back, so machine
    drift (thermal, co-tenant load) hits both modes equally.  Per-round
    times take the *minimum* across trials (one-sided noise can only
    inflate a duration) and the overhead is the ratio of the per-round
    minima *sums* — amortized, so the every-Nth-round timeline sample
    is charged to the recorder rather than hidden by a median.
    """
    from repro.obs import trace

    params = SCALES[scale]
    S = params["overhead_tenants"]
    R = params["overhead_rounds"]
    attrs = _attrs(params["n_attrs"])
    src = FleetSimSource(S, attrs, seed=7, anomaly_fraction=0.0)
    batches = [
        (times.copy(), values.copy(), active)
        for times, values, active in src.take(R)
    ]

    def make(recorder_on: bool, root: Path) -> FleetScheduler:
        kwargs = {}
        if recorder_on:
            kwargs = dict(
                flight=FlightRecorder(),
                incidents=IncidentRecorder(root),
                timeline_every=8,
            )
        return FleetScheduler(
            _quiet_detector(S, attrs),
            tenants=_names(S),
            sherlock=None,
            root_dir=root,
            label_metrics=False,
            **kwargs,
        )

    best = {"off": [float("inf")] * R, "on": [float("inf")] * R}
    signatures = []
    stream_ticks = 0
    gc_was_enabled = gc.isenabled()
    with tempfile.TemporaryDirectory(prefix="obs-fleet-oh-") as tmp:
        base = Path(tmp)
        # warm caches / first-touch costs
        warm = make(True, base / "warm")
        for batch in batches:
            warm.run_round(*batch)
        warm.close()
        # collector pauses triggered by one mode's allocations would be
        # charged to whichever round happens to run next — park the GC
        # so each round pays only its own cost
        gc.collect()
        gc.disable()
        try:
            for trial in range(params["trials"]):
                metrics.REGISTRY.reset()
                # alternate construction order: allocation layout
                # (arena placement, dict ordering) is sticky per object,
                # so always building one mode first would hand it a
                # systematic cache-locality edge across every trial
                if trial % 2 == 0:
                    off = make(False, base / f"off-{trial}")
                    on = make(True, base / f"on-{trial}")
                else:
                    on = make(True, base / f"on-{trial}")
                    off = make(False, base / f"off-{trial}")
                flight = on.flight
                for r, batch in enumerate(batches):
                    # alternate which mode runs first within the round
                    order = ("off", "on") if (trial + r) % 2 == 0 else (
                        "on", "off"
                    )
                    for mode in order:
                        # the flight recorder is a process-global trace
                        # sink: detach it for the recorder-off twin so the
                        # baseline truly runs untraced
                        if mode == "on":
                            if trace.get_recorder() is None:
                                trace.install(flight)
                            sched = on
                        else:
                            if trace.get_recorder() is not None:
                                trace.uninstall()
                            sched = off
                        t0 = time.perf_counter()
                        sched.run_round(*batch)
                        elapsed = time.perf_counter() - t0
                        if elapsed < best[mode][r]:
                            best[mode][r] = elapsed
                trace.install(flight)
                signatures.append(("off", _tick_signature(off)))
                signatures.append(("on", _tick_signature(on)))
                stream_ticks = on.report.stream_ticks
                off.close()
                on.close()
                incidents_dir = base / f"on-{trial}" / "incidents"
                assert not incidents_dir.exists(), (
                    "clean run wrote incident bundles: "
                    f"{list(incidents_dir.rglob('*'))}"
                )
        finally:
            if gc_was_enabled:
                gc.enable()

    first = signatures[0][1]
    for mode, signature in signatures[1:]:
        assert signature == first, (
            f"recorder changed tick outcomes ({mode}): "
            f"{signature} != {first}"
        )

    off_s = sum(best["off"])
    on_s = sum(best["on"])
    overhead = on_s / off_s - 1.0
    return {
        "fleet": {"tenants": S, "rounds": params["overhead_rounds"]},
        "stream_ticks": stream_ticks,
        "recorder_off_s": round(off_s, 4),
        "recorder_on_s": round(on_s, 4),
        "per_tick_off_us": round(off_s / stream_ticks * 1e6, 3),
        "per_tick_on_us": round(on_s / stream_ticks * 1e6, 3),
        "recorder_overhead": round(overhead, 4),
        "ceiling": MAX_RECORDER_OVERHEAD,
        "incidents_dir_absent": True,
    }


# ---------------------------------------------------------------------------
# Chaos drivers: one incident per profile
# ---------------------------------------------------------------------------
def _storage_incident_run(
    root: Path,
    params: dict,
    seed: int,
    victim_idx: int,
    incident_kw: dict = None,
    fault_cycles=None,
):
    """Drive a fleet with a durable tenant into a full-disk degrade.

    ``fault_cycles`` overrides the single fault/heal pair with an
    explicit per-round active mask callable (the storm leg's repeated
    degrade/heal churn).  Returns ``(scheduler, bundles)``.
    """
    metrics.REGISTRY.reset()
    S = params["chaos_tenants"]
    attrs = _attrs(params["n_attrs"])
    names = _names(S)
    victims = (
        [names[victim_idx]]
        if fault_cycles is None
        else [names[i] for i in fault_cycles["victims"]]
    )
    src = FleetSimSource(S, attrs, seed=seed, anomaly_fraction=0.0)
    faults = [
        FullDisk(path_filter=str(Path(root) / v / "ticks.wal"))
        for v in victims
    ]
    for fault in faults:
        fault.active = False
    kw = dict(min_rounds_between=4, timeline_window=48)
    kw.update(incident_kw or {})
    sched = FleetScheduler(
        _quiet_detector(S, attrs),
        tenants=names,
        sherlock=None,
        root_dir=root,
        durable=victims,
        fsync_every=1,
        storage_probe_every=2,
        label_metrics=False,
        flight=FlightRecorder(),
        incidents=IncidentRecorder(root, **kw),
        incident_capture_rounds=(
            6 if fault_cycles is None else fault_cycles["capture_rounds"]
        ),
        timeline_every=1,
    )
    rounds = (
        params["chaos_rounds"]
        if fault_cycles is None
        else params["storm_rounds"]
    )
    with fsmod.scoped_fs(StorageShim(faults)):
        for i, (times, values, active) in enumerate(src.take(rounds)):
            if fault_cycles is None:
                if i == params["fault_round"]:
                    faults[0].active = True
                if i == params["heal_round"]:
                    faults[0].active = False
            else:
                on = fault_cycles["mask"](i)
                for fault in faults:
                    fault.active = on
            sched.run_round(times, values, active)
        sched.drain()
        sched.close()
    return sched, list_bundles(root)


def _stall_incident_run(root: Path, params: dict):
    """Hang every diagnosis past both deadline tiers; shed + degrade."""
    metrics.REGISTRY.reset()
    S = params["chaos_tenants"]
    attrs = _attrs(params["n_attrs"])
    names = _names(S)
    hostile = names[:2]
    hang_s = 0.3
    hang = DiagnosisHang(hostile, hang_s=hang_s)
    sched = FleetScheduler(
        _quiet_detector(S, attrs),
        tenants=names,
        sherlock=hang.wrap(DBSherlock()),
        root_dir=root,
        diagnose_jobs=2,
        soft_deadline_s=0.05,
        hard_deadline_s=0.12,
        breaker_threshold=2,
        label_metrics=False,
        flight=FlightRecorder(),
        incidents=IncidentRecorder(
            root, min_rounds_between=2, timeline_window=48
        ),
        incident_capture_rounds=3,
        timeline_every=1,
    )
    rng = np.random.default_rng(3)

    def quiet_round(k: int) -> None:
        times = np.full(S, float(k + 1))
        values = rng.normal(50.0, 1.0, size=(S, len(attrs)))
        sched.run_round(times, values)

    def job_dataset(tenant: str) -> Dataset:
        rows = 40
        cols = {
            a: rng.normal(50.0 + 3 * i, 2.0, size=rows)
            for i, a in enumerate(attrs)
        }
        return Dataset(
            np.arange(rows, dtype=np.float64),
            numeric=cols,
            name=f"fleet:{tenant}",
        )

    for k in range(24):
        quiet_round(k)
    region = Region(5.0, 15.0)
    for tenant in hostile:
        s = names.index(tenant)
        for _ in range(2):  # 2 == diagnose_jobs: tenant-pure batches
            sched.submit_diagnosis(s, region, dataset=job_dataset(tenant))
    # deadline enforcement runs on the tick thread: keep ticking while
    # the hung batches age through the soft then hard tier
    for k in range(24, 40):
        time.sleep(0.02)
        quiet_round(k)
    sched.drain()
    time.sleep(hang_s * 2 + 0.3)  # let zombie workers self-report
    sched.close()
    return sched, list_bundles(root)


def _pick_bundle(bundles, needle: str) -> Path:
    for bundle in bundles:
        manifest = json.loads((bundle / "incident.json").read_text())
        if needle in manifest.get("reason", ""):
            return bundle
    raise AssertionError(
        f"no bundle with reason containing {needle!r} among "
        f"{[b.name for b in bundles]}"
    )


# ---------------------------------------------------------------------------
# Leg 2: incident forensics close the diagnosis loop
# ---------------------------------------------------------------------------
def run_forensics(scale: str, artifact_dir: Path = None) -> dict:
    params = SCALES[scale]
    with tempfile.TemporaryDirectory(prefix="obs-fleet-fx-") as tmp:
        base = Path(tmp)

        # Stall profile first: its labeled deadline/shed instruments are
        # then registered for every later run, so all timelines share
        # one attribute schema.
        stall_sched, stall_bundles = _stall_incident_run(
            base / "stall", params
        )
        assert stall_sched.report.deadline_misses > 0, (
            "stall profile never missed a deadline"
        )
        stall_bundle = _pick_bundle(stall_bundles, "deadline")

        train_sched, train_bundles = _storage_incident_run(
            base / "train", params, seed=2016, victim_idx=0
        )
        train_bundle = _pick_bundle(train_bundles, "durability degraded")

        # Train a knowledge base from the bundles alone — no live fleet.
        kb = DBSherlock()
        explanation, dataset, _spec = explain_bundle(
            stall_bundle, sherlock=kb
        )
        kb.feedback("diagnosis stall", explanation, dataset)
        explanation, dataset, _spec = explain_bundle(
            train_bundle, sherlock=kb
        )
        kb.feedback("storage outage", explanation, dataset)
        models_path = base / "incident_models.json"
        kb.save_models(models_path)

        # Fresh incident: different seed, different victim tenant.
        _eval_sched, eval_bundles = _storage_incident_run(
            base / "eval", params, seed=97, victim_idx=2
        )
        eval_bundle = _pick_bundle(eval_bundles, "durability degraded")

        eval_kb = DBSherlock()
        eval_kb.load_models(models_path)
        explanation, dataset, _spec = explain_bundle(
            eval_bundle, sherlock=eval_kb
        )
        assert explanation.causes, "eval bundle ranked no causes"
        top_cause, top_confidence = explanation.causes[0]
        assert top_cause == "storage outage", (
            f"injected storage outage not ranked top-1: {explanation.causes}"
        )

        # The same replay through the CLI surface.
        buf = io.StringIO()
        rc = cli_main(
            [
                "obs",
                "incidents",
                "explain",
                str(eval_bundle),
                "--models",
                str(models_path),
            ],
            out=buf,
        )
        cli_text = buf.getvalue()
        assert rc == 0, f"CLI explain failed:\n{cli_text}"
        assert "top cause: storage outage" in cli_text, cli_text

        if artifact_dir is not None:
            dest = Path(artifact_dir) / "incident_bundle" / eval_bundle.name
            if dest.exists():
                shutil.rmtree(dest)
            shutil.copytree(eval_bundle, dest)

        confidences = {cause: conf for cause, conf in explanation.causes}
        return {
            "bundles": {
                "stall": stall_bundle.name,
                "train": train_bundle.name,
                "eval": eval_bundle.name,
            },
            "causes": [
                [cause, round(conf, 2)] for cause, conf in explanation.causes
            ],
            "top_cause": top_cause,
            "top_confidence": round(top_confidence, 2),
            "margin": round(
                top_confidence
                - max(
                    (c for k, c in confidences.items() if k != top_cause),
                    default=0.0,
                ),
                2,
            ),
            "cli_top1": True,
        }


# ---------------------------------------------------------------------------
# Leg 3: bundle volume stays bounded under an incident storm
# ---------------------------------------------------------------------------
def run_storm(scale: str) -> dict:
    params = SCALES[scale]
    caps = dict(
        max_bundles_per_tenant=1,
        max_total_bytes=96 * 1024,
        min_rounds_between=4,
        timeline_window=12,
        health_tail=8,
    )
    cycles = dict(
        victims=[0, 1, 2],
        capture_rounds=2,
        # 12 warm rounds, then 6-on/6-off full-disk churn: every cycle
        # re-degrades (and re-promotes) all three durable victims.
        mask=lambda i: i >= 12 and (i // 6) % 2 == 0,
    )
    with tempfile.TemporaryDirectory(prefix="obs-fleet-storm-") as tmp:
        root = Path(tmp)
        sched, bundles = _storage_incident_run(
            root,
            params,
            seed=11,
            victim_idx=0,
            incident_kw=caps,
            fault_cycles=cycles,
        )
        stats = sched.incidents.stats()
        skipped = _counter_sum("repro_incident_skipped_total")
        disk_bytes = sum(
            f.stat().st_size
            for bundle in bundles
            for f in bundle.rglob("*")
            if f.is_file()
        )
        largest = max(
            (
                sum(
                    f.stat().st_size
                    for f in bundle.rglob("*")
                    if f.is_file()
                )
                for bundle in bundles
            ),
            default=0,
        )

    n_victims = len(cycles["victims"])
    assert bundles, "storm produced no incident bundles at all"
    assert len(bundles) <= n_victims * caps["max_bundles_per_tenant"], (
        f"{len(bundles)} bundles exceed the per-tenant cap"
    )
    # the budget check is pre-write, so overshoot is at most one bundle
    assert stats["bytes"] <= caps["max_total_bytes"] + largest, (
        f"bundle bytes {stats['bytes']} blew the "
        f"{caps['max_total_bytes']}B budget (+1 bundle slack)"
    )
    assert skipped > 0, "storm never tripped a limiter; caps untested"
    return {
        "degrade_cycles": 4,
        "victim_tenants": n_victims,
        "bundles_written": len(bundles),
        "bundle_bytes": stats["bytes"],
        "disk_bytes": disk_bytes,
        "snapshots_suppressed": int(skipped),
        "caps": {
            "per_tenant": caps["max_bundles_per_tenant"],
            "total_bytes": caps["max_total_bytes"],
            "min_rounds_between": caps["min_rounds_between"],
        },
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def run_bench(
    scale: str = "bench", write_json: bool = True, artifact_dir=None
) -> dict:
    t0 = time.perf_counter()
    summary = {
        "scale": scale,
        "overhead": run_overhead(scale),
        "forensics": run_forensics(scale, artifact_dir=artifact_dir),
        "storm": run_storm(scale),
    }
    metrics.REGISTRY.reset()
    summary["wall_s"] = round(time.perf_counter() - t0, 2)
    if write_json:
        out = _REPO_ROOT / "BENCH_obs_fleet.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    oh = summary["overhead"]
    fx = summary["forensics"]
    st = summary["storm"]
    print(f"\n=== obs fleet bench ({summary['scale']} scale) ===")
    print(
        f"overhead: {oh['fleet']['tenants']} tenants x "
        f"{oh['fleet']['rounds']} rounds, "
        f"{oh['per_tick_off_us']}us -> {oh['per_tick_on_us']}us per stream "
        f"tick ({oh['recorder_overhead']:+.2%}, ceiling "
        f"{oh['ceiling']:.0%}); clean run wrote no incidents"
    )
    print(
        f"forensics: eval bundle {fx['bundles']['eval']} -> "
        f"top cause {fx['top_cause']!r} "
        f"(confidence {fx['top_confidence']}, margin {fx['margin']}); "
        f"CLI replay agrees"
    )
    print(
        f"storm: {st['bundles_written']} bundles / "
        f"{st['bundle_bytes']}B written, "
        f"{st['snapshots_suppressed']} snapshots suppressed "
        f"(caps: {st['caps']['per_tenant']}/tenant, "
        f"{st['caps']['total_bytes']}B total)"
    )
    print(f"wall: {summary['wall_s']}s")


def _check(summary: dict) -> None:
    slack = 1.0 if summary["scale"] == "bench" else TINY_SLACK
    overhead = summary["overhead"]["recorder_overhead"]
    assert overhead <= MAX_RECORDER_OVERHEAD * slack, (
        f"always-on recorder overhead {overhead:.2%} exceeds the "
        f"{MAX_RECORDER_OVERHEAD * slack:.0%} ceiling"
    )
    assert summary["forensics"]["top_cause"] == "storage outage"
    assert summary["storm"]["snapshots_suppressed"] > 0


def test_obs_fleet(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    chosen = os.environ.get("PERF_BENCH_SCALE", "bench")
    artifacts = Path(
        os.environ.get("OBS_ARTIFACT_DIR", _REPO_ROOT / "obs_artifacts")
    )
    bench_summary = run_bench(chosen, artifact_dir=artifacts)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
