"""Obs-overhead bench: what does self-observation cost the hot path?

Times the perf-engine workload (Algorithm 1 generation + Equation 3
ranking with the shared labeled-space cache — the same sweep
``bench_perf_engine.py`` records) in three observability modes:

* **reference** — metric updates monkeypatched to no-ops and no trace
  recorder: the pipeline as if the obs layer did not exist;
* **disabled** — metrics live, tracing disabled (the default for every
  user): must stay within **2 %** of reference;
* **traced** — an in-memory :class:`~repro.obs.trace.TraceRecorder`
  installed, full span trees recorded: must stay within **10 %**.

All three modes are asserted to produce identical ranking scores before
any number is reported; results land in ``BENCH_obs_overhead.json``.

Run standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_obs_overhead.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_obs_overhead.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.anomalies.library import ANOMALY_CAUSES  # noqa: E402
from repro.core.causal import CausalModel  # noqa: E402
from repro.core.generator import GeneratorConfig, PredicateGenerator  # noqa: E402
from repro.eval.harness import build_suite, rank_models  # noqa: E402
from repro.obs import metrics, trace  # noqa: E402
from repro.perf.cache import LabeledSpaceCache  # noqa: E402

SCALES = {
    "tiny": dict(n_causes=2, durations=(30, 40), normal_s=60, repeats=5),
    "bench": dict(
        n_causes=4, durations=(30, 45, 60, 75), normal_s=120, repeats=7
    ),
}

SUITE_SEED = 2016
THETA = 0.2

#: Acceptance ceilings (fractions of the reference time) at bench scale.
MAX_DISABLED_OVERHEAD = 0.02
MAX_TRACED_OVERHEAD = 0.10
#: The tiny CI smoke runs in milliseconds where scheduler noise dominates;
#: it only guards against gross regressions.
TINY_SLACK = 5.0


@contextmanager
def _metrics_noop():
    """Temporarily strip every metric update (the pre-obs reference)."""
    saved = (
        metrics.Counter.inc,
        metrics.Gauge.set,
        metrics.Gauge.inc,
        metrics.Histogram.observe,
    )
    metrics.Counter.inc = lambda self, amount=1: None
    metrics.Gauge.set = lambda self, value: None
    metrics.Gauge.inc = lambda self, amount=1: None
    metrics.Histogram.observe = lambda self, value: None
    try:
        yield
    finally:
        (
            metrics.Counter.inc,
            metrics.Gauge.set,
            metrics.Gauge.inc,
            metrics.Histogram.observe,
        ) = saved


def _timed_interleaved(fns, repeats, trials=3):
    """Per-round wall-clock for every mode, round-robin across modes.

    Interleaving means slow machine drift (thermal, co-tenant load) hits
    every mode equally instead of penalising whichever ran last — on a
    noisy box that drift alone can fake a several-percent "overhead".
    Each mode runs ``trials`` times back-to-back per round and only the
    *minimum* is recorded: a one-sided scheduler stall can only inflate
    a duration, never deflate it, so min-of-trials estimates the
    noise-free cost of each round and stops ``disabled_overhead`` from
    reporting (meaningless) negative values when jitter lands on the
    reference run instead.  Returns ``(times, results)`` where
    ``times[i]`` is the list of per-round minima for ``fns[i]``.
    """
    times = [[] for _ in fns]
    results = [None] * len(fns)
    for round_idx in range(repeats):
        # rotate the order each round so no mode always runs first (cold)
        # or last (co-tenant load ramp)
        for offset in range(len(fns)):
            i = (round_idx + offset) % len(fns)
            best = None
            for _trial in range(trials):
                start = time.perf_counter()
                results[i] = fns[i]()
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            times[i].append(best)
    return times, results


def _overhead(mode_times, reference_times):
    """Ratio of the two modes' global minima, minus one.

    Each mode's floor is its noise-free cost: every list holds
    ``repeats`` per-round minima sampled across the whole interleaved
    session, so both modes visit the machine's fast *and* slow phases
    and the minimum lands in the same fast phase for each.  Pairing
    per-round ratios instead (the previous estimator) amplifies drift:
    the workload runs for seconds per round, so frequency scaling and
    co-tenant load shift *between* the paired runs and a ±2–3%
    "overhead" appears out of thin air.
    """
    return min(mode_times) / min(reference_times) - 1.0


def _build_workload(scale: str):
    """The bench_perf_engine cached sweep: generate + rank every run."""
    params = SCALES[scale]
    keys = list(ANOMALY_CAUSES)[: params["n_causes"]]
    suite = build_suite(
        anomaly_keys=keys,
        durations=params["durations"],
        seed=SUITE_SEED,
        normal_s=params["normal_s"],
    )
    all_runs = [run for runs in suite.values() for run in runs]
    config = GeneratorConfig(theta=THETA)
    generator = PredicateGenerator(config)
    models = [
        CausalModel(
            run.cause,
            [
                art.predicate
                for art in generator.generate_with_artifacts(
                    run.dataset, run.spec
                ).values()
                if art.predicate is not None
            ],
        )
        for run in all_runs
    ]

    def workload():
        cache = LabeledSpaceCache()
        gen = PredicateGenerator(config, cache=cache)
        scores = []
        for run in all_runs:
            gen.generate_with_artifacts(run.dataset, run.spec)
            scores.append(
                rank_models(models, run.dataset, run.spec, cache=cache)
            )
        return scores

    return workload, len(all_runs), len(models)


def run_bench(scale: str = "bench", write_json: bool = True) -> dict:
    params = SCALES[scale]
    repeats = params["repeats"]
    workload, n_runs, n_models = _build_workload(scale)

    trace.uninstall()

    def reference_workload():
        with _metrics_noop():
            return workload()

    def traced_workload():
        with trace.recording() as recorder:
            with trace.span("bench_obs_overhead"):
                result = workload()
        traced_workload.n_events = len(recorder.events)
        return result

    workload()  # warm caches (imports, numpy JIT-ish first-touch costs)
    (reference_times, disabled_times, traced_times), (
        reference_scores,
        disabled_scores,
        traced_scores,
    ) = _timed_interleaved(
        [reference_workload, workload, traced_workload], repeats
    )
    reference_s = min(reference_times)
    disabled_s = min(disabled_times)
    traced_s = min(traced_times)

    assert reference_scores == disabled_scores == traced_scores, (
        "observability changed ranking output — it must be read-only"
    )

    summary = {
        "scale": scale,
        "workload": {
            "n_datasets": n_runs,
            "n_models": n_models,
            "repeats": repeats,
        },
        "reference_s": round(reference_s, 4),
        "disabled_s": round(disabled_s, 4),
        "traced_s": round(traced_s, 4),
        "disabled_overhead": round(
            _overhead(disabled_times, reference_times), 4
        ),
        "traced_overhead": round(
            _overhead(traced_times, reference_times), 4
        ),
        "traced_span_events": traced_workload.n_events,
        "ceilings": {
            "disabled": MAX_DISABLED_OVERHEAD,
            "traced": MAX_TRACED_OVERHEAD,
        },
    }
    if write_json:
        out = _REPO_ROOT / "BENCH_obs_overhead.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    print(f"\n=== obs overhead bench ({summary['scale']} scale) ===")
    print(
        f"workload: {summary['workload']['n_datasets']} datasets x "
        f"{summary['workload']['n_models']} models, "
        f"best of {summary['workload']['repeats']}"
    )
    print(f"reference (no obs): {summary['reference_s']}s")
    print(
        f"disabled (metrics only): {summary['disabled_s']}s "
        f"({summary['disabled_overhead']:+.2%})"
    )
    print(
        f"traced ({summary['traced_span_events']} span events): "
        f"{summary['traced_s']}s ({summary['traced_overhead']:+.2%})"
    )


def _check(summary: dict) -> None:
    slack = 1.0 if summary["scale"] == "bench" else TINY_SLACK
    assert summary["disabled_overhead"] <= MAX_DISABLED_OVERHEAD * slack, (
        f"disabled-path overhead {summary['disabled_overhead']:.2%} exceeds "
        f"the {MAX_DISABLED_OVERHEAD * slack:.0%} ceiling"
    )
    assert summary["traced_overhead"] <= MAX_TRACED_OVERHEAD * slack, (
        f"traced overhead {summary['traced_overhead']:.2%} exceeds "
        f"the {MAX_TRACED_OVERHEAD * slack:.0%} ceiling"
    )


def test_obs_overhead(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    chosen = os.environ.get("PERF_BENCH_SCALE", "bench")
    bench_summary = run_bench(chosen)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
