"""Online-detection bench: re-run-batch vs streaming per-tick latency.

Feeds seeded scenario runs tick by tick and times four ways of answering
"is the current telemetry window anomalous?" once the ring buffer is at
steady state (full):

* **batch_golden** — the frozen seed detector
  (:class:`repro.stream.golden.GoldenAnomalyDetector`) re-run from
  scratch on a window snapshot: the true "re-run the batch detector
  every tick" baseline (Python-loop Equation 4, dense O(n²) DBSCAN);
* **batch_vectorized** — the live :class:`AnomalyDetector` re-run per
  tick (vectorized Equation 4, grid-indexed DBSCAN) on the same snapshot;
* **stream_exact** — :class:`StreamingDetector` in ``mode="exact"``:
  incremental potential power, full re-cluster per tick;
* **stream_incremental** — ``mode="incremental"``: re-clusters only on
  membership/ε drift.

Equivalence is asserted before any number is reported: ``stream_exact``
must match ``batch_vectorized`` on every shared window (mask, regions,
selected attributes, ε), and ``batch_vectorized`` must match
``batch_golden`` on every sampled window.  Per-tick latency percentiles
and speedups land in ``BENCH_online_detect.json`` at the repo root.

Run standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_online_detect.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_online_detect.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.anomaly import AnomalyDetector  # noqa: E402
from repro.eval.harness import replay_rows, simulate_run  # noqa: E402
from repro.stream import RingBufferWindow, StreamingDetector  # noqa: E402
from repro.stream.golden import GoldenAnomalyDetector  # noqa: E402

#: Bench scales; "tiny" is the CI smoke (seconds), "bench" the recorded
#: run.  ``golden_stride`` subsamples the golden baseline — it is two
#: orders of magnitude slower per tick, so timing it on every tick would
#: dominate the bench without changing its percentiles.
SCALES = {
    "tiny": dict(
        scenarios=[("cpu_saturation", 11)],
        duration_s=20,
        normal_s=40,
        capacity=40,
        golden_stride=10,
    ),
    "bench": dict(
        scenarios=[("cpu_saturation", 11), ("network_congestion", 22)],
        duration_s=40,
        normal_s=120,
        capacity=120,
        golden_stride=20,
    ),
}

#: Acceptance floors at full bench scale (steady-state p50 per tick).
#: The headline number: streaming vs re-running the (seed) batch
#: detector every tick.
MIN_SPEEDUP_VS_GOLDEN = 5.0
#: Both streaming modes must also beat re-running the *vectorized* batch
#: detector, which already shares this PR's kernels.
MIN_EXACT_VS_BATCH = 1.2
MIN_INCREMENTAL_VS_BATCH = 1.5


def _percentiles(samples) -> dict:
    arr = np.asarray(samples, dtype=np.float64) * 1000.0  # → ms
    return {
        "n": int(arr.size),
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p90_ms": round(float(np.percentile(arr, 90)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
        "mean_ms": round(float(arr.mean()), 4),
    }


def _assert_equal(a, b, context: str) -> None:
    assert np.array_equal(a.mask, b.mask), f"{context}: masks diverge"
    assert a.regions == b.regions, f"{context}: regions diverge"
    assert a.selected_attributes == b.selected_attributes, (
        f"{context}: selected attributes diverge"
    )
    assert a.eps == b.eps, f"{context}: eps diverges"


def _run_scenario(anomaly_key: str, seed: int, params: dict, latencies: dict):
    dataset, _, _ = simulate_run(
        anomaly_key,
        duration_s=params["duration_s"],
        seed=seed,
        normal_s=params["normal_s"],
    )
    capacity = params["capacity"]
    window = RingBufferWindow(
        capacity,
        numeric=dataset.numeric_attributes,
        categorical=dataset.categorical_attributes,
    )
    stream_exact = StreamingDetector(capacity=capacity, mode="exact")
    stream_incremental = StreamingDetector(
        capacity=capacity, mode="incremental"
    )
    batch = AnomalyDetector()
    golden = GoldenAnomalyDetector()

    windows_compared = 0
    for i, (t, numeric_row, categorical_row) in enumerate(
        replay_rows(dataset)
    ):
        window.append(t, numeric_row, categorical_row)

        start = time.perf_counter()
        exact_tick = stream_exact.tick(t, numeric_row, categorical_row)
        exact_s = time.perf_counter() - start

        start = time.perf_counter()
        stream_incremental.tick(t, numeric_row, categorical_row)
        incremental_s = time.perf_counter() - start

        if not window.full:
            continue  # cold start: only steady-state ticks are scored
        latencies["stream_exact"].append(exact_s)
        latencies["stream_incremental"].append(incremental_s)

        # "re-run the batch detector every tick": snapshot + full detect
        start = time.perf_counter()
        snapshot = window.to_dataset()
        batch_result = batch.detect(snapshot)
        latencies["batch_vectorized"].append(time.perf_counter() - start)

        _assert_equal(
            exact_tick.result,
            batch_result,
            f"{anomaly_key}@t={t} stream_exact vs batch",
        )
        windows_compared += 1

        if i % params["golden_stride"] == 0:
            start = time.perf_counter()
            golden_result = golden.detect(window.to_dataset())
            latencies["batch_golden"].append(time.perf_counter() - start)
            _assert_equal(
                batch_result,
                golden_result,
                f"{anomaly_key}@t={t} batch vs golden",
            )
    return windows_compared


def run_bench(scale: str = "bench", write_json: bool = True) -> dict:
    params = SCALES[scale]
    latencies = {
        "batch_golden": [],
        "batch_vectorized": [],
        "stream_exact": [],
        "stream_incremental": [],
    }
    windows_compared = 0
    for anomaly_key, seed in params["scenarios"]:
        windows_compared += _run_scenario(
            anomaly_key, seed, params, latencies
        )

    paths = {name: _percentiles(s) for name, s in latencies.items()}
    golden_p50 = paths["batch_golden"]["p50_ms"]
    batch_p50 = paths["batch_vectorized"]["p50_ms"]
    summary = {
        "scale": scale,
        "scenarios": [key for key, _ in params["scenarios"]],
        "capacity": params["capacity"],
        "steady_state_windows": windows_compared,
        "per_tick": paths,
        "speedup_p50": {
            "stream_exact_vs_batch_golden": round(
                golden_p50 / paths["stream_exact"]["p50_ms"], 2
            ),
            "stream_incremental_vs_batch_golden": round(
                golden_p50 / paths["stream_incremental"]["p50_ms"], 2
            ),
            "stream_exact_vs_batch_vectorized": round(
                batch_p50 / paths["stream_exact"]["p50_ms"], 2
            ),
            "stream_incremental_vs_batch_vectorized": round(
                batch_p50 / paths["stream_incremental"]["p50_ms"], 2
            ),
        },
        "equivalent": True,  # _assert_equal would have raised otherwise
    }

    if write_json:
        out = _REPO_ROOT / "BENCH_online_detect.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    print(f"\n=== online detection bench ({summary['scale']} scale) ===")
    print(
        f"scenarios: {', '.join(summary['scenarios'])} | "
        f"capacity {summary['capacity']} | "
        f"{summary['steady_state_windows']} steady-state windows "
        f"(all equivalence-checked)"
    )
    for name, stats in summary["per_tick"].items():
        print(
            f"{name:22s} p50={stats['p50_ms']:9.3f}ms "
            f"p90={stats['p90_ms']:9.3f}ms p99={stats['p99_ms']:9.3f}ms "
            f"mean={stats['mean_ms']:9.3f}ms (n={stats['n']})"
        )
    for name, ratio in summary["speedup_p50"].items():
        print(f"{name}: {ratio}x")


def _check(summary: dict) -> None:
    speedups = summary["speedup_p50"]
    assert summary["equivalent"]
    # CI gate at every scale: the incremental path must never lose to
    # re-running the vectorized batch detector.
    assert speedups["stream_incremental_vs_batch_vectorized"] >= 1.0, (
        f"incremental streaming slower than re-running the batch detector "
        f"({speedups['stream_incremental_vs_batch_vectorized']}x)"
    )
    if summary["scale"] == "bench":
        for mode in ("stream_exact", "stream_incremental"):
            ratio = speedups[f"{mode}_vs_batch_golden"]
            assert ratio >= MIN_SPEEDUP_VS_GOLDEN, (
                f"{mode} only {ratio}x faster than re-running the batch "
                f"detector (floor {MIN_SPEEDUP_VS_GOLDEN}x)"
            )
        assert (
            speedups["stream_exact_vs_batch_vectorized"]
            >= MIN_EXACT_VS_BATCH
        ), speedups
        assert (
            speedups["stream_incremental_vs_batch_vectorized"]
            >= MIN_INCREMENTAL_VS_BATCH
        ), speedups


def test_online_detect(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    chosen = os.environ.get("PERF_BENCH_SCALE", "bench")
    bench_summary = run_bench(chosen)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
