"""Perf-engine bench: old serial vs cached/batched diagnosis paths.

Times the three generations of the model-ranking path (Equation 3) on a
Fig. 7-style protocol over a 4-class suite:

* **golden** — the frozen seed implementation (per-predicate region-mask
  recomputation, Python-loop midpoints, per-attribute labeling);
* **uncached** — the live serial path after this PR's vectorizations
  (hoisted masks, vectorized midpoints) but with no shared cache;
* **cached** — the live path with one :class:`LabeledSpaceCache` shared
  across the whole ranking sweep, as the evaluation harness now runs it.

Also times Algorithm 1 predicate generation golden (per-attribute loop)
vs batched (stacked offset-bincount labeling).  Every timed pass is
asserted bitwise-identical to the golden output before any number is
reported; results land in ``BENCH_perf_engine.json`` at the repo root.

Run standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_perf_engine.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_perf_engine.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.anomalies.library import ANOMALY_CAUSES  # noqa: E402
from repro.core.causal import CausalModel  # noqa: E402
from repro.core.generator import GeneratorConfig, PredicateGenerator  # noqa: E402
from repro.eval.harness import build_suite, rank_models  # noqa: E402
from repro.perf.cache import LabeledSpaceCache  # noqa: E402
from repro.perf.golden import (  # noqa: E402
    golden_generate_with_artifacts,
    golden_rank,
)

#: Bench scales; "tiny" is the CI smoke (seconds), "bench" the recorded run.
#: ``rank_repeats`` models the paper's protocols ranking every test dataset
#: repeatedly (Fig. 7 sweeps each model over all datasets; the Section 8.5
#: merged protocol re-ranks each test dataset once per random-split trial).
SCALES = {
    "tiny": dict(
        n_causes=2, durations=(30, 40), normal_s=60, repeats=3, rank_repeats=3
    ),
    "bench": dict(
        n_causes=4,
        durations=(30, 45, 60, 75),
        normal_s=120,
        repeats=2,
        rank_repeats=3,
    ),
}

SUITE_SEED = 2016
THETA = 0.2

#: Acceptance floor for the model-ranking path at full bench scale.
MIN_RANKING_SPEEDUP = 3.0


def _timed(fn, repeats):
    """Best-of-N wall-clock of fn() plus its (final) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _ranking_tasks(suite, models_by_cause):
    """The Fig. 7 cross-product: (competitors, test_run, cause) triples."""
    tasks = []
    for cause, runs in suite.items():
        n_models = len(models_by_cause[cause])
        for model_idx in range(n_models):
            competitors = [models_by_cause[cause][model_idx]] + [
                other[model_idx % len(other)]
                for other_cause, other in models_by_cause.items()
                if other_cause != cause
            ]
            for test_idx, run in enumerate(runs):
                if test_idx == model_idx:
                    continue
                tasks.append((competitors, run, cause))
    return tasks


def run_bench(scale: str = "bench", write_json: bool = True) -> dict:
    params = SCALES[scale]
    keys = list(ANOMALY_CAUSES)[: params["n_causes"]]

    start = time.perf_counter()
    suite = build_suite(
        anomaly_keys=keys,
        durations=params["durations"],
        seed=SUITE_SEED,
        normal_s=params["normal_s"],
    )
    suite_s = time.perf_counter() - start
    all_runs = [run for runs in suite.values() for run in runs]

    # ------------------------------------------------------------------
    # Algorithm 1: golden per-attribute loop vs batched labeling
    # ------------------------------------------------------------------
    config = GeneratorConfig(theta=THETA)
    repeats = params["repeats"]

    golden_gen_s, golden_arts = _timed(
        lambda: [
            golden_generate_with_artifacts(r.dataset, r.spec, config)
            for r in all_runs
        ],
        repeats,
    )
    generator = PredicateGenerator(config)
    batched_gen_s, batched_arts = _timed(
        lambda: [
            generator.generate_with_artifacts(r.dataset, r.spec)
            for r in all_runs
        ],
        repeats,
    )
    for golden_art, batched_art in zip(golden_arts, batched_arts):
        golden_preds = {
            a: art.predicate for a, art in golden_art.items() if art.predicate
        }
        batched_preds = {
            a: art.predicate for a, art in batched_art.items() if art.predicate
        }
        assert golden_preds == batched_preds, "generator paths diverge"

    # ------------------------------------------------------------------
    # Equation 3 model ranking: golden vs uncached vs cached
    # ------------------------------------------------------------------
    # batched_arts is aligned with all_runs (suite iteration order)
    models_by_cause = {}
    artifacts_iter = iter(batched_arts)
    for cause, runs in suite.items():
        models_by_cause[cause] = [
            CausalModel(
                cause,
                [
                    art.predicate
                    for art in next(artifacts_iter).values()
                    if art.predicate is not None
                ],
            )
            for _ in runs
        ]
    tasks = _ranking_tasks(suite, models_by_cause) * params["rank_repeats"]

    golden_rank_s, golden_scores = _timed(
        lambda: [
            golden_rank(competitors, run.dataset, run.spec)
            for competitors, run, _ in tasks
        ],
        repeats,
    )

    def _uncached_pass():
        results = []
        for competitors, run, _ in tasks:
            scored = [
                (m.cause, m.confidence(run.dataset, run.spec, 250))
                for m in competitors
            ]
            scored.sort(key=lambda item: item[1], reverse=True)
            results.append(scored)
        return results

    uncached_rank_s, uncached_scores = _timed(_uncached_pass, repeats)

    cache_stats = {}

    def _cached_pass():
        cache = LabeledSpaceCache()
        results = [
            rank_models(competitors, run.dataset, run.spec, cache=cache)
            for competitors, run, _ in tasks
        ]
        cache_stats.update(cache.stats())
        return results

    cached_rank_s, cached_scores = _timed(_cached_pass, repeats)

    assert golden_scores == uncached_scores == cached_scores, (
        "ranking paths diverge — the perf layer is NOT bitwise-identical"
    )

    summary = {
        "scale": scale,
        "suite": {
            "n_causes": len(suite),
            "n_datasets": len(all_runs),
            "build_s": round(suite_s, 3),
        },
        "generator": {
            "golden_s": round(golden_gen_s, 3),
            "batched_s": round(batched_gen_s, 3),
            "speedup": round(golden_gen_s / batched_gen_s, 2),
        },
        "ranking": {
            "n_rankings": len(tasks),
            "models_per_ranking": len(suite),
            "golden_s": round(golden_rank_s, 3),
            "uncached_s": round(uncached_rank_s, 3),
            "cached_s": round(cached_rank_s, 3),
            "speedup_cached_vs_uncached": round(
                uncached_rank_s / cached_rank_s, 2
            ),
            "speedup_cached_vs_golden": round(
                golden_rank_s / cached_rank_s, 2
            ),
            "cache": cache_stats,
        },
        "equivalent": True,
    }

    if write_json:
        out = _REPO_ROOT / "BENCH_perf_engine.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    ranking = summary["ranking"]
    generator = summary["generator"]
    print(f"\n=== perf engine bench ({summary['scale']} scale) ===")
    print(
        f"suite: {summary['suite']['n_datasets']} datasets "
        f"({summary['suite']['build_s']}s to simulate)"
    )
    print(
        f"Algorithm 1 generation: golden {generator['golden_s']}s -> "
        f"batched {generator['batched_s']}s ({generator['speedup']}x)"
    )
    print(
        f"model ranking ({ranking['n_rankings']} rankings x "
        f"{ranking['models_per_ranking']} models): "
        f"golden {ranking['golden_s']}s, uncached {ranking['uncached_s']}s, "
        f"cached {ranking['cached_s']}s"
    )
    print(
        f"cached vs uncached: {ranking['speedup_cached_vs_uncached']}x | "
        f"cached vs golden: {ranking['speedup_cached_vs_golden']}x"
    )
    print(f"cache: {ranking['cache']}")


def _check(summary: dict) -> None:
    ranking = summary["ranking"]
    # CI gate: the cached path must never lose to the uncached path.
    assert ranking["cached_s"] <= ranking["uncached_s"], (
        f"cached path slower than uncached "
        f"({ranking['cached_s']}s > {ranking['uncached_s']}s)"
    )
    if summary["scale"] == "bench":
        assert ranking["speedup_cached_vs_uncached"] >= MIN_RANKING_SPEEDUP, (
            f"ranking speedup {ranking['speedup_cached_vs_uncached']}x "
            f"below the {MIN_RANKING_SPEEDUP}x acceptance floor"
        )


def test_perf_engine(benchmark):
    summary = benchmark.pedantic(
        lambda: run_bench("tiny", write_json=False), rounds=1, iterations=1
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    chosen = os.environ.get("PERF_BENCH_SCALE", "bench")
    bench_summary = run_bench(chosen)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
