"""Storage chaos bench: fleet durability under a hostile filesystem.

Drives the fleet with the ``thrash`` storage-fault profile
(:data:`repro.eval.chaos.STORAGE_PROFILES`) — full disks, torn renames,
rotting reads — underneath a slice of its durable tenants, and asserts
the durability contract the storage tentpole claims, in four legs:

* **idle shim** — with the fault-injecting storage shim installed but
  carrying zero faults, two clean-disk runs produce *bitwise identical*
  durable artifacts (WAL segments, checkpoint generations, health
  journals), whether the default process shim or a freshly scoped one
  handled the I/O: the shim at rest costs nothing and changes nothing;
* **disk chaos** — a fleet whose disks fill (ENOSPC), whose checkpoint
  renames tear, and whose reads rot is driven to the heal round and
  beyond: zero uncaught exceptions escape ``run_round``, every
  degraded tenant re-promotes after the heal, every degrade/re-promote
  transition lands in the health journal, per-tenant WAL retention
  stays under ``max_wal_bytes_per_tenant`` (including the tenant whose
  *lane* is poisoned and therefore never advances its checkpoint
  mark), and recovery under still-rotting reads skips-and-reports
  instead of raising;
* **crash durability** — the process dies with the page cache: every
  active segment is truncated to its last fsynced offset.  No
  acknowledged-durable tick may be lost, the unacknowledged window
  must be smaller than ``fsync_every``, and replay of the truncated
  logs must report zero corrupt records (fsync offsets are record
  boundaries);
* **generation fallback** — the *current* checkpoint generation of a
  tenant slice is rotted on disk; recovery must fall back to the
  previous generation (counted in
  ``repro_storage_checkpoint_fallbacks_total``), replay the longer WAL
  tail the retention mark kept for exactly this case, and restore the
  victims *bitwise* equal to their pre-crash state.

Results land in ``BENCH_storage_chaos.json`` at the repo root.  Run
standalone (``PERF_BENCH_SCALE=tiny`` is the CI smoke scale):

    python benchmarks/bench_storage_chaos.py

or via ``pytest benchmarks/ --benchmark-only`` (tiny scale, no JSON).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
import traceback
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # allow `python benchmarks/bench_storage_chaos.py`
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.eval.chaos import STORAGE_PROFILES  # noqa: E402
from repro.faults import (  # noqa: E402
    CorruptTenantState,
    LaneExceptionFault,
)
from repro.faults import fs as fsmod  # noqa: E402
from repro.faults.fs import StorageShim  # noqa: E402
from repro.fleet import FleetDetector, FleetSimSource  # noqa: E402
from repro.fleet.health import read_health_journal  # noqa: E402
from repro.fleet.scheduler import FleetScheduler  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.stream.wal import TickWAL  # noqa: E402

SCALES = {
    # CI smoke: a small fleet, but the same fault profile, heal cycle,
    # and durability assertions as the recorded run.
    "tiny": dict(
        n_tenants=12,
        n_attrs=5,
        rounds=48,
        checkpoint_every=12,
        fsync_every=4,
        segment_bytes=4096,
        max_wal_bytes=64 * 1024,
        heal_round=30,
    ),
    # The recorded run.
    "bench": dict(
        n_tenants=40,
        n_attrs=6,
        rounds=120,
        checkpoint_every=15,
        fsync_every=8,
        segment_bytes=16384,
        max_wal_bytes=256 * 1024,
        heal_round=80,
    ),
}

# The chaos leg uses the hot storm detector configuration from
# bench_fleet_chaos.py so lanes actually fall out (the poisoned-lane
# retention check needs a lane fault to fire mid-fallout).
STORM_KW = dict(
    capacity=40,
    window=8,
    pp_threshold=0.3,
    min_pts=3,
    cluster_fraction=0.2,
    min_region_s=2.0,
    gap_fill_s=3.0,
)


def _counter(name: str, **labels) -> float:
    """Current value of a process-wide counter (0 if never touched)."""
    metric = metrics.REGISTRY.counter(name, labelnames=tuple(labels))
    return (metric.labels(**labels) if labels else metric).value


def _names(params: dict) -> tuple:
    attrs = [f"m{j}" for j in range(params["n_attrs"])]
    tenants = [f"t{i:04d}" for i in range(params["n_tenants"])]
    return attrs, tenants


def _build_fleet(params: dict, root: Path, tenants, attrs, **overrides):
    kw = dict(
        tenants=tenants,
        root_dir=root,
        durable=tenants,
        checkpoint_every=params["checkpoint_every"],
        fsync_every=params["fsync_every"],
        wal_segment_bytes=params["segment_bytes"],
        max_wal_bytes_per_tenant=params["max_wal_bytes"],
        storage_backoff_s=0.0,
        storage_probe_every=4,
        label_metrics=False,
    )
    detector_kw = overrides.pop("detector_kw", {})
    kw.update(overrides)
    return FleetScheduler(
        FleetDetector(len(tenants), attrs, **detector_kw), **kw
    )


def _durable_digest(root: Path) -> dict:
    """SHA-256 of every durable artifact under *root*, by relative path."""
    out = {}
    for path in sorted(root.rglob("*")):
        if path.is_file():
            out[str(path.relative_to(root))] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return out


# ---------------------------------------------------------------------------
# Leg 1: the idle shim is free
# ---------------------------------------------------------------------------
def run_idle_shim(scale: str) -> dict:
    params = SCALES[scale]
    attrs, tenants = _names(params)

    def one_run(fresh_shim: bool) -> dict:
        src = FleetSimSource(
            len(tenants), attrs, seed=2016, anomaly_fraction=0.0
        )
        with tempfile.TemporaryDirectory(prefix="storage-idle-") as tmp:
            root = Path(tmp)
            shim = StorageShim() if fresh_shim else fsmod.get_fs()
            with fsmod.scoped_fs(shim):
                sched = _build_fleet(params, root, tenants, attrs)
                for times, values, active in src.take(params["rounds"]):
                    sched.run_round(times, values, active)
                sched.drain()
                sched.close()
            return _durable_digest(root)

    t0 = time.perf_counter()
    default_run = one_run(fresh_shim=False)
    scoped_run = one_run(fresh_shim=True)
    wall_s = time.perf_counter() - t0
    identical = default_run == scoped_run
    assert identical, (
        "durable artifacts diverge between the default idle shim and a "
        "freshly scoped idle shim: "
        + str(
            {
                k: (default_run.get(k), scoped_run.get(k))
                for k in set(default_run) ^ set(scoped_run)
                | {
                    k
                    for k in set(default_run) & set(scoped_run)
                    if default_run[k] != scoped_run[k]
                }
            }
        )
    )
    return {
        "bitwise_identical": identical,
        "artifacts": len(default_run),
        "wall_s": round(wall_s, 3),
    }


# ---------------------------------------------------------------------------
# Leg 2: disk chaos — degrade, journal, heal, re-promote, stay bounded
# ---------------------------------------------------------------------------
def run_disk_chaos(scale: str) -> dict:
    params = SCALES[scale]
    attrs, tenants = _names(params)
    profile = STORAGE_PROFILES["thrash"]
    roles = profile.assign(tenants, seed=13)
    index_of = {name: i for i, name in enumerate(tenants)}
    # poison one *clean-disk* tenant's detection lane: its checkpoint
    # mark never advances, so only whole-segment compaction bounds it
    lane_tenant = roles["clean"][0]

    marks = {
        name: _counter(name)
        for name in (
            "repro_storage_retries_total",
            "repro_storage_degraded_transitions_total",
            "repro_storage_repromotions_total",
            "repro_storage_write_errors_total",
        )
    }
    src = FleetSimSource(
        len(tenants),
        attrs,
        seed=2016,
        anomaly_fraction=1.0,
        anomaly_period=25,
        anomaly_duration=16,
        anomaly_scale=14.0,
    )
    summary: dict = {"profile": profile.name, "roles": {
        k: len(v) if k in ("flaky", "clean") else v for k, v in roles.items()
    }}
    with tempfile.TemporaryDirectory(prefix="storage-chaos-") as tmp:
        root = Path(tmp)
        faults = profile.build(root, roles, seed=13)
        lane_fault = LaneExceptionFault(
            [index_of[lane_tenant]], after_fallouts=1
        )
        errors = []
        t0 = time.perf_counter()
        with fsmod.scoped_fs(StorageShim(faults)):
            sched = _build_fleet(
                params, root, tenants, attrs, detector_kw=STORM_KW
            )
            sched.detector.install_lane_fault(lane_fault)
            for round_no, (times, values, active) in enumerate(
                src.take(params["rounds"])
            ):
                if round_no == params["heal_round"]:
                    for fault in faults:
                        fault.active = False  # the disks heal
                try:
                    sched.run_round(times, values, active)
                except Exception:
                    errors.append(traceback.format_exc(limit=4))
            sched.drain()
            sched.checkpoint()  # final marks + compaction + gauges
        chaos_s = time.perf_counter() - t0

        assert not errors, (
            f"disk chaos escaped run_round ({len(errors)} raised):\n"
            f"{errors[0]}"
        )
        # every degraded tenant re-promoted once its disk healed
        still_degraded = [
            t for t in tenants if sched.durability_mode(t) == "degraded"
        ]
        assert not still_degraded, f"never re-promoted: {still_degraded}"
        stranded = {
            t: len(managed.buffer)
            for t, managed in sched._durability.items()
            if managed.buffer
        }
        assert not stranded, f"volatile ticks stranded: {stranded}"
        degrade_counts = {
            t: sched._durability[t].degraded_count for t in tenants
        }
        repromote_counts = {
            t: sched._durability[t].repromoted_count for t in tenants
        }
        assert degrade_counts[roles["full_disk"][0]] >= 1, (
            "the full-disk tenant never degraded — the fault never bit"
        )
        assert degrade_counts == repromote_counts

        # WAL retention bounded for every tenant, poisoned lane included
        wal_bytes = sched.wal_bytes()
        over = {
            t: b
            for t, b in wal_bytes.items()
            if b > params["max_wal_bytes"]
        }
        assert not over, f"WAL retention exceeds the cap: {over}"
        assert index_of[lane_tenant] in {
            int(s) for s in np.nonzero(sched.detector.poisoned)[0]
        }, "the lane fault never fired — poisoned retention went untested"
        assert wal_bytes[lane_tenant] > 0
        sched.close()

        # every storage degrade/re-promote transition is in the journal
        journal_pairs = 0
        for t in tenants:
            if t == lane_tenant:
                continue  # quarantined: storage transitions suppressed
            records = read_health_journal(root, t)
            downs = [
                r
                for r in records
                if r["to"] == "degraded"
                and str(r["reason"]).startswith("storage:")
            ]
            ups = [
                r
                for r in records
                if r["to"] == "healthy"
                and str(r["reason"]).startswith("storage:")
            ]
            assert len(downs) == degrade_counts[t], (
                f"{t}: {degrade_counts[t]} degrades, "
                f"{len(downs)} journaled"
            )
            assert len(ups) == repromote_counts[t], (
                f"{t}: {repromote_counts[t]} re-promotions, "
                f"{len(ups)} journaled"
            )
            journal_pairs += len(downs)

        # recovery under still-rotting reads: skip-and-report, no raise
        for fault in faults:
            fault.active = True
        with fsmod.scoped_fs(StorageShim(faults)):
            recovered = FleetScheduler.recover(
                root, tenants, label_metrics=False
            )
        rec_report = recovered.recovery_report
        assert rec_report is not None
        accounted = {o.tenant for o in rec_report.outcomes}
        assert accounted == set(tenants), (
            f"recovery lost track of {set(tenants) - accounted}"
        )
        recovered.close()

    deltas = {
        name.split("repro_storage_")[1].replace("_total", ""): (
            _counter(name) - before
        )
        for name, before in marks.items()
    }
    assert deltas["retries"] > 0, "no transient error was ever retried"
    assert deltas["degraded_transitions"] >= 1
    assert deltas["degraded_transitions"] == deltas["repromotions"]
    summary.update(
        {
            "uncaught_exceptions": len(errors),
            "chaos_wall_s": round(chaos_s, 3),
            "faults_fired": int(sum(f.fired for f in faults)),
            "degraded_transitions": int(deltas["degraded_transitions"]),
            "repromotions": int(deltas["repromotions"]),
            "retries": int(deltas["retries"]),
            "write_errors": int(deltas["write_errors"]),
            "journaled_degrade_pairs": journal_pairs,
            "max_wal_bytes": max(wal_bytes.values()),
            "wal_cap": params["max_wal_bytes"],
            "poisoned_lane_tenant": lane_tenant,
            "poisoned_lane_wal_bytes": wal_bytes[lane_tenant],
            "rotten_recovery_outcomes": {
                "recovered": len(rec_report.recovered),
                "corrupt": len(rec_report.corrupt),
                "missing": len(rec_report.missing),
                "replay_failed": len(rec_report.failed),
            },
        }
    )
    return summary


# ---------------------------------------------------------------------------
# Leg 3: crash durability — lose the page cache, keep every acked tick
# ---------------------------------------------------------------------------
def run_crash_durability(scale: str) -> dict:
    params = SCALES[scale]
    attrs, tenants = _names(params)
    src = FleetSimSource(len(tenants), attrs, seed=7, anomaly_fraction=0.0)
    # a couple of rounds past the last fsync boundary, so the crash
    # actually catches an open (unacknowledged) batch window
    rounds = list(
        src.take(params["rounds"] + max(1, params["fsync_every"] // 2))
    )
    with tempfile.TemporaryDirectory(prefix="storage-crash-") as tmp:
        root = Path(tmp)
        # one mid-run checkpoint; everything after it lives in the WALs
        sched = _build_fleet(
            params,
            root,
            tenants,
            attrs,
            checkpoint_every=params["rounds"] // 2,
        )
        for times, values, active in rounds:
            sched.run_round(times, values, active)
        sched.drain()

        windows, positions = {}, {}
        for t in tenants:
            wal = sched._wals[t]
            windows[t] = (wal.appended, wal.durable_appended)
            positions[t] = wal.durable_position()
            assert 0 <= wal.appended - wal.durable_appended < params[
                "fsync_every"
            ], f"{t}: acked-durability window exceeds fsync_every"

        # power loss: no clean close — drop every handle, then truncate
        # each active segment to its last fsynced offset (the page
        # cache dies with the process)
        sched._pool.shutdown(wait=True)
        sched.health.close()
        for t in tenants:
            sched._wals[t]._fh.close()
            active_seg, durable_offset = positions[t]
            os.truncate(active_seg, durable_offset)

        for t in tenants:
            reader = TickWAL(root / t / "ticks.wal")
            _, report = reader.replay_report()
            reader.close()
            # fsync offsets are record boundaries: truncating there can
            # tear nothing, and every record that was ever fsynced — on
            # rotated segments or the active prefix — replays intact
            assert report.corrupt_records == 0, (
                f"{t}: {report.corrupt_records} corrupt records after a "
                "boundary truncation"
            )
            assert not report.torn_tail, f"{t}: torn tail at fsync offset"

        recovered = FleetScheduler.recover(root, tenants, label_metrics=False)
        rec_report = recovered.recovery_report
        assert rec_report.recovered == tenants, (
            f"crash recovery skipped {set(tenants) - set(rec_report.recovered)}"
        )
        # every acknowledged-durable tick reached the recovered detector:
        # its per-stream clock sits exactly on the last fsynced tick
        lost_acked = 0
        for t in tenants:
            s = recovered._stream_of[t]
            _, durable = windows[t]
            expected = float(rounds[durable - 1][0][s])
            got = float(recovered.detector.last_time[s])
            if got != expected:
                lost_acked += 1
        assert lost_acked == 0, (
            f"{lost_acked} tenants lost acknowledged-durable ticks "
            "across the crash"
        )
        # the recovered fleet keeps ticking
        post_errors = []
        for times, values, active in src.take(5):
            try:
                recovered.run_round(times, values, active)
            except Exception:
                post_errors.append(traceback.format_exc(limit=4))
        assert not post_errors, post_errors[0]
        replay_total = sum(
            o.replayed_ticks for o in rec_report.outcomes
        )
        recovered.close()

    max_window = max(a - d for a, d in windows.values())
    return {
        "tenants": len(tenants),
        "fsync_every": params["fsync_every"],
        "max_unacked_window": int(max_window),
        "acked_durable_ticks_lost": int(lost_acked),
        "corrupt_after_crash": 0,  # asserted per tenant above
        "replayed_ticks": int(replay_total),
    }


# ---------------------------------------------------------------------------
# Leg 4: generation fallback — rot the current checkpoint, recover bitwise
# ---------------------------------------------------------------------------
def run_generation_fallback(scale: str) -> dict:
    params = SCALES[scale]
    attrs, tenants = _names(params)
    victims = tenants[::4]
    src = FleetSimSource(len(tenants), attrs, seed=29, anomaly_fraction=0.0)
    with tempfile.TemporaryDirectory(prefix="storage-gen-") as tmp:
        root = Path(tmp)
        sched = _build_fleet(params, root, tenants, attrs)
        for times, values, active in src.take(params["rounds"]):
            sched.run_round(times, values, active)
        sched.drain()
        assert sched.report.checkpoints >= 2 * len(tenants), (
            "the fallback leg needs at least two checkpoint generations"
        )
        reference = {
            t: sched.detector.stream_checkpoint(sched._stream_of[t])
            for t in tenants
        }
        sched.close()

        fallbacks_before = _counter(
            "repro_storage_checkpoint_fallbacks_total"
        )
        rotted = CorruptTenantState(victims, mode="generation").apply(root)
        assert rotted == victims
        recovered = FleetScheduler.recover(root, tenants, label_metrics=False)
        rec_report = recovered.recovery_report
        fallbacks = (
            _counter("repro_storage_checkpoint_fallbacks_total")
            - fallbacks_before
        )
        assert fallbacks == len(victims), (
            f"{fallbacks} generation fallbacks for {len(victims)} rotted "
            "current checkpoints"
        )
        # nobody is reported corrupt: the previous generation carried them
        assert rec_report.recovered == tenants, (
            f"fallback recovery skipped "
            f"{set(tenants) - set(rec_report.recovered)}"
        )
        replayed = {
            o.tenant: o.replayed_ticks for o in rec_report.outcomes
        }
        for t in tenants:
            got = recovered.detector.stream_checkpoint(
                recovered._stream_of[t]
            )
            assert got == reference[t], (
                f"{t}: recovered state diverges from pre-crash state"
                + (" (victim)" if t in victims else "")
            )
            if t in victims:
                # the retention mark kept the previous generation's
                # replay window: victims re-tick the last interval
                assert replayed[t] > 0, f"{t}: no WAL tail replayed"
            else:
                assert replayed[t] == 0, (
                    f"{t}: clean tenant unexpectedly replayed "
                    f"{replayed[t]} ticks"
                )
        recovered.close()

    return {
        "tenants": len(tenants),
        "victims": victims,
        "generation_fallbacks": int(fallbacks),
        "victim_replayed_ticks": {t: int(replayed[t]) for t in victims},
        "bitwise_recovered": True,  # the assertions above would have raised
    }


# ---------------------------------------------------------------------------
def run_storage_bench(scale: str = "bench", write_json: bool = True) -> dict:
    summary = {
        "scale": scale,
        "idle_shim": run_idle_shim(scale),
        "disk_chaos": run_disk_chaos(scale),
        "crash_durability": run_crash_durability(scale),
        "generation_fallback": run_generation_fallback(scale),
    }
    if write_json:
        out = _REPO_ROOT / "BENCH_storage_chaos.json"
        out.write_text(json.dumps(summary, indent=2) + "\n")
        summary["json"] = str(out)
    return summary


def _report(summary: dict) -> None:
    print(f"\n=== storage chaos bench ({summary['scale']} scale) ===")
    idle = summary["idle_shim"]
    print(
        f"idle shim         {idle['artifacts']} durable artifacts "
        f"bitwise-identical across default/scoped idle shims: "
        f"{idle['bitwise_identical']}"
    )
    chaos = summary["disk_chaos"]
    print(
        f"disk chaos        profile '{chaos['profile']}': "
        f"{chaos['faults_fired']} faults fired, "
        f"{chaos['retries']} retries, "
        f"{chaos['degraded_transitions']} degraded / "
        f"{chaos['repromotions']} re-promoted "
        f"({chaos['journaled_degrade_pairs']} journaled), "
        f"uncaught exceptions: {chaos['uncaught_exceptions']}"
    )
    print(
        f"wal retention     max {chaos['max_wal_bytes']} B of "
        f"{chaos['wal_cap']} B cap (poisoned lane "
        f"{chaos['poisoned_lane_tenant']}: "
        f"{chaos['poisoned_lane_wal_bytes']} B)"
    )
    crash = summary["crash_durability"]
    print(
        f"crash durability  {crash['tenants']} tenants, window "
        f"{crash['max_unacked_window']} < fsync_every "
        f"{crash['fsync_every']}, acked-durable ticks lost: "
        f"{crash['acked_durable_ticks_lost']}, "
        f"{crash['replayed_ticks']} ticks replayed"
    )
    gen = summary["generation_fallback"]
    print(
        f"generation fall   {gen['generation_fallbacks']} fallbacks for "
        f"{len(gen['victims'])} rotted tenants, bitwise recovered: "
        f"{gen['bitwise_recovered']}"
    )


def _check(summary: dict) -> None:
    assert summary["idle_shim"]["bitwise_identical"]
    chaos = summary["disk_chaos"]
    assert chaos["uncaught_exceptions"] == 0
    assert chaos["retries"] > 0
    assert chaos["degraded_transitions"] >= 1
    assert chaos["degraded_transitions"] == chaos["repromotions"]
    assert chaos["max_wal_bytes"] <= chaos["wal_cap"]
    crash = summary["crash_durability"]
    assert crash["acked_durable_ticks_lost"] == 0
    assert crash["max_unacked_window"] < crash["fsync_every"]
    assert crash["corrupt_after_crash"] == 0
    gen = summary["generation_fallback"]
    assert gen["generation_fallbacks"] == len(gen["victims"])
    assert gen["bitwise_recovered"]


def test_storage_chaos(benchmark):
    summary = benchmark.pedantic(
        lambda: run_storage_bench("tiny", write_json=False),
        rounds=1,
        iterations=1,
    )
    _report(summary)
    _check(summary)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("PERF_BENCH_SCALE", "bench"),
        choices=sorted(SCALES),
    )
    cli = parser.parse_args()
    bench_summary = run_storage_bench(cli.scale)
    _report(bench_summary)
    _check(bench_summary)
    print(f"wrote {bench_summary['json']}")
