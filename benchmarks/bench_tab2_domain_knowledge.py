"""Table 2 — effect of incorporating domain knowledge (Section 8.6).

Paper protocol: single causal models (Section 8.3 setup) constructed with
and without the four MySQL/Linux rules of Section 5; report top-1/top-2
correct-cause accuracy.

Paper result: 85.3 % / 94.8 % with domain knowledge vs 82.7 % / 93.2 %
without — a modest but consistent gain, showing DBSherlock works well even
with no rules at all.
"""

import numpy as np

from _shared import SINGLE_THETA, pct, print_table, suite
from repro.core.causal import CausalModel
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.knowledge import MYSQL_LINUX_RULES, prune_secondary_symptoms
from repro.eval.harness import rank_models
from repro.eval.metrics import topk_contains

PAPER = {
    "With Domain Knowledge": (0.853, 0.948),
    "Without Domain Knowledge": (0.827, 0.932),
}


def build_models(use_rules: bool):
    generator = PredicateGenerator(GeneratorConfig(theta=SINGLE_THETA))
    models = {}
    for cause, runs in suite("tpcc").items():
        cause_models = []
        for run in runs:
            predicates = generator.generate(run.dataset, run.spec).predicates
            if use_rules:
                predicates, _ = prune_secondary_symptoms(
                    predicates, run.dataset, MYSQL_LINUX_RULES
                )
            cause_models.append(CausalModel(cause, predicates))
        models[cause] = cause_models
    return models


def evaluate(models):
    top1, top2 = [], []
    corpus = suite("tpcc")
    for cause, runs in corpus.items():
        n_models = len(models[cause])
        for model_idx in range(n_models):
            competitors = [models[cause][model_idx]] + [
                other[model_idx % len(other)]
                for other_cause, other in models.items()
                if other_cause != cause
            ]
            for test_idx, run in enumerate(runs):
                if test_idx == model_idx:
                    continue
                scores = rank_models(competitors, run.dataset, run.spec)
                top1.append(topk_contains(scores, cause, 1))
                top2.append(topk_contains(scores, cause, 2))
    return float(np.mean(top1)), float(np.mean(top2))


def run_experiment():
    return {
        "With Domain Knowledge": evaluate(build_models(use_rules=True)),
        "Without Domain Knowledge": evaluate(build_models(use_rules=False)),
    }


def test_tab2_domain_knowledge(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            setting,
            pct(t1),
            pct(PAPER[setting][0]),
            pct(t2),
            pct(PAPER[setting][1]),
        )
        for setting, (t1, t2) in results.items()
    ]
    print_table(
        "Table 2: accuracy with/without domain knowledge",
        ["setting", "top-1", "paper top-1", "top-2", "paper top-2"],
        rows,
    )
    with_dk = results["With Domain Knowledge"]
    without_dk = results["Without Domain Knowledge"]
    # the paper's shape: domain knowledge helps slightly; the system is
    # strong even without it (difference only 2-3 %)
    assert with_dk[0] >= without_dk[0] - 0.02
    assert without_dk[1] > 0.8
