"""Table 3 — user study: diagnosing with DBSherlock's predicates.

Paper protocol (Section 8.8): 10 multiple-choice questions (1 correct
cause + 3 random distractors), shown with the latency plot and the
generated predicates, answered by 20/15/13 participants in three
competence cohorts.  Baseline (no predicates) is random guessing.

Substitution (documented in DESIGN.md): humans are simulated as noisy
readers of the predicate evidence — per-option perceived score = causal-
model confidence + Gaussian noise shrinking with competence.

Paper result: baseline 2.5/10; cohorts score 7.5, 7.8, 7.8 of 10.
"""

import numpy as np

from _shared import MERGED_THETA, print_table, suite
from repro.eval.harness import build_model
from repro.eval.study import COHORTS, StudyQuestion, UserStudy

PAPER = {
    "Baseline (No Predicates)": 2.5,
    "Preliminary DB Knowledge": 7.5,
    "DB Usage Experience": 7.8,
    "DB Research or DBA Experience": 7.8,
}


def run_experiment():
    corpus = suite("tpcc")
    causes = list(corpus)
    rng = np.random.default_rng(33)

    # merged models = the participants' mental model of each cause
    models = {}
    for cause, runs in corpus.items():
        merged = None
        for run in runs[:2]:
            model = build_model(run, MERGED_THETA)
            merged = model if merged is None else merged.merge(model)
        models[cause] = merged

    # 10 questions: an unseen dataset + 4 answer options
    questions = []
    for q in range(10):
        cause = causes[q % len(causes)]
        run = corpus[cause][2 + (q % 2)]  # held-out datasets
        distractors = rng.choice(
            [c for c in causes if c != cause], size=3, replace=False
        )
        options = [cause] + list(distractors)
        rng.shuffle(options)
        questions.append(
            StudyQuestion(
                dataset=run.dataset,
                spec=run.spec,
                correct_cause=cause,
                options=options,
            )
        )

    study = UserStudy(models, questions)
    results = {"Baseline (No Predicates)": study.random_baseline()}
    for cohort in COHORTS:
        mean, _ = study.run_cohort(cohort, seed=55 + cohort.n_participants)
        results[cohort.name] = mean
    return results


def test_tab3_user_study(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (name, f"{score:.1f}", f"{PAPER[name]:.1f}")
        for name, score in results.items()
    ]
    print_table(
        "Table 3: avg correct answers out of 10 (simulated participants)",
        ["cohort", "measured", "paper"],
        rows,
    )
    baseline = results["Baseline (No Predicates)"]
    cohort_scores = [v for k, v in results.items() if k != "Baseline (No Predicates)"]
    # the paper's shape: every cohort far above the random baseline, and
    # experienced cohorts at least as good as the preliminary one
    assert all(score > baseline * 2 for score in cohort_scores)
    assert cohort_scores[-1] >= cohort_scores[0] - 0.5
