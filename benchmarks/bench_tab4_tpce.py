"""Table 4 (Appendix A) — accuracy on TPC-C vs TPC-E.

Paper protocol: the merged-model protocol of Section 8.5 repeated on a
TPC-E workload (3 000 customers, ~50 GB); report top-1/top-2 correct-cause
accuracy for both workloads.

Paper result: TPC-C 98.0 % / 99.7 %; TPC-E 92.5 % / 99.6 %.  The top-1
drop on TPC-E traces to 'Poor Physical Design' and 'Lock Contention':
TPC-E is much more read-intensive, so write- and lock-surface anomalies
move the system less.
"""

import numpy as np

from _shared import evaluate_topk, merged_protocol_trials, pct, print_table

PAPER = {"tpcc": (0.980, 0.997), "tpce": (0.925, 0.996)}


def run_experiment():
    results = {}
    for workload in ("tpcc", "tpce"):
        top1, top2 = [], []
        for models, test_runs in merged_protocol_trials(
            workload=workload, seed=17
        ):
            ratios = evaluate_topk(models, test_runs, ks=(1, 2))
            top1.append(ratios[1])
            top2.append(ratios[2])
        results[workload] = (float(np.mean(top1)), float(np.mean(top2)))
    return results


def test_tab4_tpce(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            workload.upper(),
            pct(t1),
            pct(PAPER[workload][0]),
            pct(t2),
            pct(PAPER[workload][1]),
        )
        for workload, (t1, t2) in results.items()
    ]
    print_table(
        "Table 4: TPC-C vs TPC-E accuracy (merged causal models)",
        ["workload", "top-1", "paper top-1", "top-2", "paper top-2"],
        rows,
    )
    # the paper's shape: both workloads diagnose well; TPC-E top-1 is the
    # (slightly) weaker of the four cells
    assert results["tpcc"][0] > 0.75
    assert results["tpce"][1] >= results["tpce"][0]
