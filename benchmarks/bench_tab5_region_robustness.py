"""Table 5 (Appendix C) — robustness against imperfect user input.

Paper protocol: leave-one-out with merged models; the held-out dataset's
abnormal region is perturbed — 10 % longer, 10 % shorter, or replaced by a
random two-second sliver (modelling rare/short anomalies); report
top-1/top-2 accuracy.

Paper result: 94.6/99.1 original, 95.5/100 longer, 95.5/97.3 shorter,
74.6/86.4 with two-second regions — accuracy degrades gracefully.
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.eval.harness import build_merged_models, rank_models
from repro.eval.metrics import topk_contains

PAPER = {
    "Original": (0.946, 0.991),
    "10% Longer": (0.955, 1.000),
    "10% Shorter": (0.955, 0.973),
    "Two Seconds": (0.746, 0.864),
}


def perturb(spec, mode, rng):
    if mode == "Original":
        return spec
    if mode == "10% Longer":
        return spec.perturbed(0.1)
    if mode == "10% Shorter":
        return spec.perturbed(-0.1)
    if mode == "Two Seconds":
        return spec.sliced(2.0, rng)
    raise ValueError(mode)


def run_experiment():
    corpus = suite("tpcc")
    n_runs = len(next(iter(corpus.values())))
    rng = np.random.default_rng(5)
    # models only depend on the training split, not the perturbation mode
    models_by_held_out = {}
    for held_out in range(n_runs):
        train = [i for i in range(n_runs) if i != held_out]
        models_by_held_out[held_out] = build_merged_models(
            corpus, {c: train for c in corpus}, theta=MERGED_THETA
        )
    results = {}
    for mode in PAPER:
        top1, top2 = [], []
        for held_out in range(n_runs):
            models = models_by_held_out[held_out]
            for cause, runs in corpus.items():
                run = runs[held_out]
                spec = perturb(run.spec, mode, rng)
                scores = rank_models(models, run.dataset, spec)
                top1.append(topk_contains(scores, cause, 1))
                top2.append(topk_contains(scores, cause, 2))
        results[mode] = (float(np.mean(top1)), float(np.mean(top2)))
    return results


def test_tab5_region_robustness(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            mode,
            pct(t1),
            pct(PAPER[mode][0]),
            pct(t2),
            pct(PAPER[mode][1]),
        )
        for mode, (t1, t2) in results.items()
    ]
    print_table(
        "Table 5: robustness against rare and imperfect region inputs",
        ["abnormal region", "top-1", "paper top-1", "top-2", "paper top-2"],
        rows,
    )
    # shape: ±10 % perturbations barely matter; two-second slivers degrade
    # but remain usable
    assert abs(results["10% Longer"][0] - results["Original"][0]) < 0.15
    assert abs(results["10% Shorter"][0] - results["Original"][0]) < 0.15
    assert results["Two Seconds"][1] > 0.5
