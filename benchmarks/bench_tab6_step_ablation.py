"""Table 6 (Appendix D) — contribution of Algorithm 1's individual steps.

Paper protocol: re-run the single-model evaluation with variants of the
predicate generator that skip Partition Filtering (Section 4.3), Filling
the Gaps (Section 4.4), or both; report average margin of confidence and
top-1 accuracy.

Paper result: the full algorithm reaches 37.4 margin / 94.6 % accuracy;
without gap filling 9.3 / 10.1 %; without filtering 0.7 / 0 %; without
both, no relevant predicates are found at all (0 / 0 %).

Reproduction delta: on real telemetry, noisy values interleave inside
partitions so the crippled variants produce fragmented abnormal blocks
and extract (almost) nothing — hence the paper's total accuracy collapse.
Our simulator's labels are cleaner, so the crippled variants still
extract a few hyper-specific predicates and retain accuracy; the step
contribution shows up as the *margin of confidence* halving instead.
"""

import numpy as np

from _shared import SINGLE_THETA, pct, print_table, suite
from repro.core.causal import CausalModel
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.eval.harness import rank_models
from repro.eval.metrics import margin_of_confidence, topk_contains

VARIANTS = {
    "Original (all 5 steps)": dict(enable_filtering=True, enable_fill=True),
    "Without Filling the Gaps": dict(enable_filtering=True, enable_fill=False),
    "Without Partition Filtering": dict(enable_filtering=False, enable_fill=True),
    "Without Both": dict(enable_filtering=False, enable_fill=False),
}

PAPER = {
    "Original (all 5 steps)": (0.374, 0.946),
    "Without Filling the Gaps": (0.093, 0.101),
    "Without Partition Filtering": (0.007, 0.0),
    "Without Both": (0.0, 0.0),
}


def evaluate_variant(**switches):
    config = GeneratorConfig(theta=SINGLE_THETA, **switches)
    generator = PredicateGenerator(config)
    corpus = suite("tpcc")
    models = {}
    for cause, runs in corpus.items():
        models[cause] = [
            CausalModel(cause, generator.generate(r.dataset, r.spec).predicates)
            for r in runs
        ]
    margins, top1 = [], []
    for cause, runs in corpus.items():
        for model_idx in range(len(models[cause])):
            competitors = [models[cause][model_idx]] + [
                other[model_idx % len(other)]
                for other_cause, other in models.items()
                if other_cause != cause
            ]
            for test_idx, run in enumerate(runs):
                if test_idx == model_idx:
                    continue
                scores = rank_models(competitors, run.dataset, run.spec)
                margins.append(margin_of_confidence(scores, cause))
                top1.append(topk_contains(scores, cause, 1))
    return float(np.mean(margins)), float(np.mean(top1))


def run_experiment():
    return {name: evaluate_variant(**sw) for name, sw in VARIANTS.items()}


def test_tab6_step_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            pct(margin),
            pct(PAPER[name][0]),
            pct(accuracy),
            pct(PAPER[name][1]),
        )
        for name, (margin, accuracy) in results.items()
    ]
    print_table(
        "Table 6: contribution of filtering / gap-filling steps",
        ["variant", "avg margin", "paper", "top-1", "paper"],
        rows,
    )
    full = results["Original (all 5 steps)"]
    others = [m for name, (m, _) in results.items()
              if name != "Original (all 5 steps)"]
    # the reproducible shape (see module docstring): the full pipeline's
    # margin of confidence dominates every crippled variant's
    assert full[0] > max(others)
    assert full[0] > 1.5 * min(others)
