"""Table 7 (Appendix E) — accuracy with automatic anomaly detection.

Paper protocol: 10-minute normal runs (so the anomaly is well under 20 %
of the data), merged causal models built from ground-truth regions, then
the held-out dataset's abnormal region supplied by (i) the ground truth
(a perfect user), (ii) DBSherlock's potential-power + DBSCAN detector
(Section 7), or (iii) PerfAugur's naïve robust scan; report top-1/top-2
correct-cause accuracy.

Paper result: 94.6/99.1 manual, 90.0/95.5 automatic, 77.3/88.2 PerfAugur.
Bench scale: 5-minute runs, 2 datasets per cause (train on suite models).
"""

import numpy as np

from _shared import MERGED_THETA, pct, print_table, suite
from repro.baselines.perfaugur import PerfAugur, PerfAugurConfig
from repro.core.anomaly import AnomalyDetector
from repro.eval.harness import build_merged_models, rank_models, simulate_run
from repro.eval.metrics import topk_contains
from repro.anomalies.library import ANOMALY_CAUSES

PAPER = {
    "Manual (ground truth)": (0.946, 0.991),
    "Automatic (Section 7)": (0.900, 0.955),
    "PerfAugur": (0.773, 0.882),
}

NORMAL_S = 300  # the paper uses 600 s; scaled for bench time


def run_experiment():
    # merged models from the standard 2-minute suite
    corpus = suite("tpcc")
    models = build_merged_models(
        corpus, {cause: (0, 1, 2, 3) for cause in corpus}, theta=MERGED_THETA
    )

    # long-run test datasets, one per cause
    long_runs = []
    for i, key in enumerate(ANOMALY_CAUSES):
        dataset, spec, cause = simulate_run(
            key, duration_s=55, normal_s=NORMAL_S, seed=8000 + i
        )
        long_runs.append((dataset, spec, cause))

    detector = AnomalyDetector()
    perfaugur = PerfAugur(PerfAugurConfig(step=2))

    results = {}
    for mode in PAPER:
        top1, top2 = [], []
        for dataset, truth, cause in long_runs:
            if mode == "Manual (ground truth)":
                spec = truth
            elif mode == "Automatic (Section 7)":
                detection = detector.detect(dataset)
                if not detection.found:
                    top1.append(False)
                    top2.append(False)
                    continue
                spec = detection.to_region_spec()
            else:
                spec = perfaugur.detect(dataset)
            scores = rank_models(models, dataset, spec)
            top1.append(topk_contains(scores, cause, 1))
            top2.append(topk_contains(scores, cause, 2))
        results[mode] = (float(np.mean(top1)), float(np.mean(top2)))
    return results


def test_tab7_auto_detection(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            mode,
            pct(t1),
            pct(PAPER[mode][0]),
            pct(t2),
            pct(PAPER[mode][1]),
        )
        for mode, (t1, t2) in results.items()
    ]
    print_table(
        "Table 7: manual vs automatic vs PerfAugur anomaly detection",
        ["detection", "top-1", "paper top-1", "top-2", "paper top-2"],
        rows,
    )
    manual = results["Manual (ground truth)"]
    automatic = results["Automatic (Section 7)"]
    perfaugur = results["PerfAugur"]
    # the paper's ordering: manual >= automatic >= PerfAugur
    assert manual[1] >= automatic[1] - 0.10
    assert automatic[1] >= perfaugur[1] - 0.10
