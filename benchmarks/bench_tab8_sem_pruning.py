"""Table 8 (Appendix F) — secondary-symptom pruning on synthetic SEM data.

Paper protocol: 10 000 random linear causal graphs (k = 7, 600 tuples,
10 % abnormal window); domain rules sampled with root causes as cause
variables; ground truth from graph reachability.  Report the confusion
matrix of the pruning decision.

Paper result: 91.6 % of should-prune predicates pruned (8.4 % missed);
only 0.9 % of should-keep predicates wrongly pruned.
Bench scale: 400 graphs.
"""

import numpy as np

from _shared import pct, print_table
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.knowledge import prune_secondary_symptoms
from repro.synth.sem import sem_dataset

N_TRIALS = 400

PAPER = {"pruned|positive": 0.916, "pruned|negative": 0.009}


def run_experiment():
    generator = PredicateGenerator(GeneratorConfig(theta=0.05))
    tp = fn = fp = tn = 0
    for seed in range(N_TRIALS):
        sd = sem_dataset(seed=seed)
        predicates = generator.generate(sd.dataset, sd.spec).predicates
        _, pruned = prune_secondary_symptoms(
            predicates, sd.dataset, sd.rules
        )
        pruned_attrs = {p.attr for p in pruned}
        for predicate in predicates:
            attr = predicate.attr
            if attr in sd.should_prune:
                if attr in pruned_attrs:
                    tp += 1
                else:
                    fn += 1
            elif attr in sd.should_keep:
                if attr in pruned_attrs:
                    fp += 1
                else:
                    tn += 1
    return tp, fn, fp, tn


def test_tab8_sem_pruning(benchmark):
    tp, fn, fp, tn = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    pruned_pos = tp / (tp + fn) if tp + fn else 0.0
    pruned_neg = fp / (fp + tn) if fp + tn else 0.0
    rows = [
        ("Pruned", pct(pruned_pos), pct(PAPER["pruned|positive"]),
         pct(pruned_neg), pct(PAPER["pruned|negative"])),
        ("Not Pruned", pct(1 - pruned_pos), pct(1 - PAPER["pruned|positive"]),
         pct(1 - pruned_neg), pct(1 - PAPER["pruned|negative"])),
    ]
    print_table(
        f"Table 8: pruning confusion matrix over {N_TRIALS} random linear "
        "causal graphs (columns: actual positive / actual negative)",
        ["decision", "actual + (ours)", "paper", "actual − (ours)", "paper"],
        rows,
    )
    print(f"counts: tp={tp} fn={fn} fp={fp} tn={tn}")
    # the paper's shape: high true-prune rate, very low false-prune rate
    assert pruned_pos > 0.7
    assert pruned_neg < 0.15
