"""Pytest configuration for the reproduction benches.

``pytest benchmarks/ --benchmark-only`` runs every experiment and prints
the paper-vs-measured tables; pytest-benchmark additionally records each
experiment's wall-clock time.
"""

import sys
from pathlib import Path

# allow `import _shared` from bench modules regardless of rootdir
sys.path.insert(0, str(Path(__file__).parent))
