#!/usr/bin/env python
"""Automatic anomaly detection: DBSherlock without a human in the loop.

Simulates a 10-minute TPC-C run with an unannounced anomaly, lets the
Section 7 detector (potential power + DBSCAN) find the abnormal window,
compares it against the PerfAugur baseline (Appendix E), and explains the
detected window end to end.

Run:  python examples/auto_detection.py
"""

from repro import DBSherlock
from repro.baselines import PerfAugur
from repro.eval.harness import simulate_run


def overlap(region, truth) -> float:
    """Jaccard overlap of two time intervals."""
    inter = max(
        0.0, min(region.end, truth.end) - max(region.start, truth.start)
    )
    union = (
        (region.end - region.start) + (truth.end - truth.start) - inter
    )
    return inter / union if union > 0 else 0.0


def main() -> None:
    # 10 minutes of normal traffic (Appendix E setting) + a 60 s anomaly.
    dataset, truth, cause = simulate_run(
        "io_saturation",
        duration_s=60,
        normal_s=600,
        seed=13,
    )
    true_region = truth.abnormal[0]
    print(f"hidden anomaly: {cause} in {true_region}\n")

    sherlock = DBSherlock()

    # --- DBSherlock's detector (Section 7) ------------------------------
    detection = sherlock.detect(dataset)
    print(f"DBSherlock selected {len(detection.selected_attributes)} "
          f"high-potential-power attributes, eps={detection.eps:.3f}")
    for region in detection.regions:
        print(f"  detected {region} (overlap {overlap(region, true_region):.0%})")

    # --- PerfAugur baseline (Appendix E) --------------------------------
    perfaugur = PerfAugur()
    pa_spec = perfaugur.detect(dataset)
    pa_region = pa_spec.abnormal[0]
    print(f"PerfAugur detected {pa_region} "
          f"(overlap {overlap(pa_region, true_region):.0%})\n")

    # --- Explain the automatically detected window ----------------------
    explanation = sherlock.explain(dataset)  # no regions: auto-detect
    print(f"explanation from the detected window "
          f"({len(explanation.predicates)} predicates):")
    for predicate in list(explanation.predicates)[:12]:
        print(f"  {predicate}")


if __name__ == "__main__":
    main()
