#!/usr/bin/env python
"""Closed-loop auto-remediation: the paper's Section 10 future work, live.

Trains causal models for two root causes, then runs the online loop
against the simulator: a CPU saturation strikes at t=60; the loop detects
it, diagnoses it with high confidence, kills the offending external
processes, and latency recovers.  A second incident shows the action
journal suggesting the previously successful fix.

Run:  python examples/auto_remediation.py
"""

from repro import DBSherlock, GeneratorConfig
from repro.actions import AutoRemediator, RemediationLoop
from repro.anomalies import make_anomaly
from repro.anomalies.base import ScheduledAnomaly
from repro.eval.harness import simulate_run
from repro.viz import sparkline
from repro.workload import tpcc_workload


def main() -> None:
    # 1. Accumulate causal models from past (hand-diagnosed) incidents.
    sherlock = DBSherlock(config=GeneratorConfig(theta=0.05))
    for key, seed in (
        ("cpu_saturation", 401), ("cpu_saturation", 402),
        ("io_saturation", 411), ("io_saturation", 412),
    ):
        dataset, regions, cause = simulate_run(key, 50, seed=seed)
        sherlock.feedback(cause, sherlock.explain(dataset, regions))
    print(f"trained causal models: {sherlock.store.causes}\n")

    # 2. Engage the closed loop; the anomaly would last forever untreated.
    remediator = AutoRemediator(sherlock.store, confidence_threshold=0.5)
    loop = RemediationLoop(tpcc_workload(), remediator, check_every_s=5)

    for trial in (1, 2):
        anomaly = ScheduledAnomaly(
            make_anomaly("cpu_saturation", intensity=1.0), 60.0, 10_000.0
        )
        result = loop.run(180, [anomaly], seed=500 + trial)
        latency = result.dataset.column("txn.avg_latency_ms")
        print(f"--- incident {trial} ---")
        print(f"latency: {sparkline(latency, width=60)}")
        print(f"baseline latency: {result.baseline_latency_ms:.1f} ms")
        print(f"detected at t={result.detected_at:g}s, diagnosed "
              f"{result.diagnosed_cause!r} "
              f"(confidence {result.diagnosis_confidence:.0%})")
        print(f"action: {result.action_name} at t={result.action_applied_at:g}s")
        print(f"recovered at t={result.recovered_at:g}s "
              f"({result.time_to_recovery:.0f}s after detection)\n")

    # 3. The journal remembers what worked.
    print("action journal:")
    for record in remediator.journal:
        print(f"  {record}")
    print(f"suggested action for a future 'CPU Saturation': "
          f"{remediator.journal.suggest('CPU Saturation')!r}")


if __name__ == "__main__":
    main()
