#!/usr/bin/env python
"""A week in the life of a DBA: building up causal models from incidents.

Replays the paper's core workflow (Figure 2) across a sequence of
incidents on a TPC-C system:

1. early incidents are explained with raw predicates only;
2. each diagnosis is fed back, creating (and merging) causal models;
3. later incidents are answered directly with human-readable causes,
   ranked by confidence — including a compound incident where a workload
   spike and an I/O saturation strike together (Section 8.7).

Run:  python examples/dba_workflow.py
"""

from repro import DBSherlock, GeneratorConfig, MYSQL_LINUX_RULES
from repro.anomalies import CompoundAnomaly, make_anomaly
from repro.anomalies.base import ScheduledAnomaly
from repro.engine import simulate_telemetry
from repro.eval.harness import simulate_run
from repro.workload import tpcc_workload

TRAINING_INCIDENTS = [
    ("workload_spike", 45, 11),
    ("workload_spike", 60, 12),
    ("io_saturation", 45, 21),
    ("io_saturation", 60, 22),
    ("network_congestion", 45, 31),
    ("network_congestion", 60, 32),
    ("lock_contention", 45, 41),
    ("lock_contention", 60, 42),
]


def main() -> None:
    # θ = 0.05 because these models will be merged (Section 8.5).
    sherlock = DBSherlock(
        config=GeneratorConfig(theta=0.05), rules=MYSQL_LINUX_RULES
    )

    print("== Week 1: incidents diagnosed by hand, models accumulated ==")
    for key, duration, seed in TRAINING_INCIDENTS:
        dataset, regions, cause = simulate_run(key, duration, seed=seed)
        explanation = sherlock.explain(dataset, regions)
        model = sherlock.feedback(cause, explanation)
        print(
            f"  {dataset.name:35s} -> model {model.cause!r} "
            f"now merges {model.n_merged} diagnoses, "
            f"{len(model.predicates)} predicates"
        )

    print("\n== Week 2: a familiar problem returns ==")
    dataset, regions, cause = simulate_run("lock_contention", 50, seed=77)
    explanation = sherlock.explain(dataset, regions)
    print(f"  true cause: {cause}")
    for rank, (name, confidence) in enumerate(explanation.causes, start=1):
        print(f"  #{rank} {name}: {confidence:.1%}")

    print("\n== Week 3: two problems at once (compound anomaly) ==")
    compound = CompoundAnomaly(
        [make_anomaly("workload_spike"), make_anomaly("io_saturation")]
    )
    dataset, regions = simulate_telemetry(
        tpcc_workload(),
        duration_s=170,
        anomalies=[ScheduledAnomaly(compound, 60.0, 110.0)],
        seed=88,
        name="tpcc/compound",
    )
    explanation = sherlock.explain(dataset, regions)
    print(f"  true causes: {compound.cause}")
    print("  top-3 explanations offered:")
    for name, confidence in explanation.all_cause_scores[:3]:
        print(f"    {name}: {confidence:.1%}")


if __name__ == "__main__":
    main()
