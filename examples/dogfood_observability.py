#!/usr/bin/env python
"""Dogfood observability: DBSherlock diagnoses its own diagnosis pipeline.

The obs layer samples the pipeline's metrics registry once per simulated
second while a diagnosis service re-explains the same incident in a loop.
Halfway through, the labeled-space cache is knocked out (cleared before
every request — the moral equivalent of a cache server going down).  The
per-second metric deltas then become a Dataset, and the tool itself is
pointed at its own telemetry: the automatic detector flags the fault
window, and the explainer emits predicates over ``repro_cache_*`` and
``repro_generator_seconds`` — the miss storm and latency step a DBA
would want to see.

Run:  python examples/dogfood_observability.py
"""

from repro import DBSherlock, MYSQL_LINUX_RULES, simulate_run
from repro.data.preprocess import regularize_dataset
from repro.obs import trace
from repro.obs.dogfood import MetricsTimeline
from repro.obs.report import stage_summary
from repro.data.regions import RegionSpec

TICKS = 24
FAULT_TICK = 12  # cache disabled from this tick on


def main() -> None:
    # 1. A diagnosis service: the same incident re-explained every second
    #    (think a dashboard polling "what is wrong right now?").
    dataset, regions, true_cause = simulate_run(
        "cpu_saturation", duration_s=30, normal_s=60, workload="tpcc", seed=3
    )
    service = DBSherlock(rules=MYSQL_LINUX_RULES)
    service.feedback(true_cause, service.explain(dataset, regions), dataset)

    timeline = MetricsTimeline(interval=1.0)
    timeline.sample()  # baseline snapshot at t=0
    with trace.recording() as recorder:
        for tick in range(1, TICKS + 1):
            if tick >= FAULT_TICK:
                service.cache.clear()  # fault: cache knocked out
            service.explain(dataset, regions)
            timeline.sample()
    print(f"sampled the metrics registry {len(timeline)} times "
          f"({TICKS} service ticks, cache fault at tick {FAULT_TICK})")

    # 2. The pipeline's own per-second telemetry as a Dataset.
    obs_dataset = timeline.to_dataset(rates=True, name="obs-dogfood")
    obs_dataset, gaps = regularize_dataset(obs_dataset)
    print(f"dogfood dataset: {obs_dataset.n_rows} rows x "
          f"{len(obs_dataset.attributes)} metrics "
          f"(missing values after regularization: {gaps.n_missing})\n")

    # 3. Point the tool at itself.
    meta = DBSherlock()
    detection = meta.detect(obs_dataset)
    if detection.found:
        region = detection.regions[0]
        print(f"detector flagged the pipeline's own telemetry: "
              f"t={region.start:g}..{region.end:g} "
              f"(fault began at t={FAULT_TICK})")
    else:
        print("detector did not flag the fault; using the known window")
    spec = RegionSpec.from_bounds(
        [(FAULT_TICK, TICKS)], [(1, FAULT_TICK - 2)]
    )
    explanation = meta.explain(obs_dataset, spec)
    cache_preds = [
        p for p in explanation.predicates
        if p.attr.startswith(("repro_cache", "repro_generator"))
    ]
    print(f"\n{len(explanation.predicates)} predicates over the "
          f"pipeline's metrics; cache/generator symptoms:")
    for predicate in cache_preds:
        print(f"  {predicate}")

    # 4. The trace from the same run: where did the time go?
    print("\nper-stage wall time of the traced service loop:")
    print(stage_summary(recorder.events, top=8))


if __name__ == "__main__":
    main()
