#!/usr/bin/env python
"""Quickstart: diagnose a single performance anomaly.

Simulates two minutes of TPC-C activity with a 40-second CPU saturation
(a stress-ng style external CPU hog), marks the anomalous window the way a
DBA would on DBSherlock's latency plot, and asks for an explanation.

Run:  python examples/quickstart.py
"""

from repro import DBSherlock, MYSQL_LINUX_RULES, simulate_run


def main() -> None:
    # 1. Telemetry: ~190 OS/DBMS/transaction attributes at 1 s intervals.
    dataset, regions, true_cause = simulate_run(
        "cpu_saturation", duration_s=40, workload="tpcc", seed=7
    )
    print(f"collected {dataset.n_rows} seconds of telemetry "
          f"({len(dataset.attributes)} attributes)")
    print(f"ground-truth cause: {true_cause}")
    print(f"user-marked abnormal region: {regions.abnormal[0]}\n")

    # 2. Explain the anomaly with domain knowledge enabled.
    sherlock = DBSherlock(rules=MYSQL_LINUX_RULES)
    explanation = sherlock.explain(dataset, regions)

    print(f"DBSherlock generated {len(explanation.predicates)} predicates:")
    for predicate in explanation.predicates:
        print(f"  {predicate}")
    if explanation.pruned:
        print("\npruned as secondary symptoms:")
        for predicate in explanation.pruned:
            print(f"  {predicate}")

    # 3. The DBA diagnoses the root cause and teaches DBSherlock.
    model = sherlock.feedback(true_cause, explanation)
    print(f"\nstored causal model: {model.cause} "
          f"({len(model.predicates)} effect predicates)")

    # 4. Next time the same problem strikes, DBSherlock names the cause.
    dataset2, regions2, _ = simulate_run(
        "cpu_saturation", duration_s=60, workload="tpcc", seed=99
    )
    explanation2 = sherlock.explain(dataset2, regions2)
    print("\nsecond incident — ranked causes:")
    for cause, confidence in explanation2.all_cause_scores:
        print(f"  {cause}: confidence {confidence:.1%}")


if __name__ == "__main__":
    main()
