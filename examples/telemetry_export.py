#!/usr/bin/env python
"""Telemetry round-trip: simulate, export to CSV, reload, diagnose.

Shows the dbseer-style data path: raw logs are simulated, aggregated and
aligned (Section 2.1), persisted as CSV, and later reloaded for offline
diagnosis — the way a DBA would archive incident telemetry for post-mortem
analysis.  Also demonstrates building a dataset from raw per-transaction
records via the preprocessing layer.

Run:  python examples/telemetry_export.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DBSherlock
from repro.data import (
    AlignedLogBuilder,
    TransactionRecord,
    load_dataset_csv,
    save_dataset_csv,
)
from repro.eval.harness import simulate_run


def preprocessing_demo() -> None:
    """Build an aligned dataset from raw (unaligned) log streams."""
    rng = np.random.default_rng(5)
    records = [
        TransactionRecord(
            start_time=float(rng.uniform(0, 60)),
            latency_ms=float(rng.gamma(2.0, 2.0)),
            txn_type=rng.choice(["NewOrder", "Payment"]),
        )
        for _ in range(3000)
    ]
    builder = AlignedLogBuilder(start=0.0, end=60.0)
    builder.add_transactions(records, txn_types=["NewOrder", "Payment"])
    # an OS sampler that ticks slightly off the 1 s grid
    os_times = np.arange(0.3, 60.0, 1.0)
    builder.add_sampled(
        "os", os_times, {"cpu_usage": 30 + 5 * rng.standard_normal(os_times.size)}
    )
    builder.add_constant_categorical("mysql.version", "5.6.20")
    dataset = builder.build(name="raw-log-demo")
    print(f"preprocessed raw logs -> {dataset}")
    print(f"  txn columns: "
          f"{[a for a in dataset.numeric_attributes if a.startswith('txn')]}\n")


def main() -> None:
    preprocessing_demo()

    dataset, regions, cause = simulate_run("database_backup", 50, seed=17)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "incident-2026-07-04.csv"
        save_dataset_csv(dataset, path)
        print(f"archived incident telemetry to {path.name} "
              f"({path.stat().st_size // 1024} KiB)")

        reloaded = load_dataset_csv(path)
        print(f"reloaded: {reloaded}\n")

        sherlock = DBSherlock()
        explanation = sherlock.explain(reloaded, regions)
        print(f"post-mortem explanation (true cause: {cause}):")
        for predicate in list(explanation.predicates)[:12]:
            print(f"  {predicate}")


if __name__ == "__main__":
    main()
