#!/usr/bin/env python
"""Workload drift: the gradual-onset anomaly the paper leaves as future work.

Simulates four minutes of TPC-C where, from t=120, the request rate creeps
up and an analytical scan pattern slowly grows (no step change anywhere).
Shows (i) how the gradual onset challenges the median-window detector,
(ii) that DBSherlock still explains the drift once the region is marked,
and (iii) the ASCII plotting of the drifting telemetry.

Run:  python examples/workload_drift.py
"""

from repro import DBSherlock
from repro.anomalies import WorkloadDrift
from repro.anomalies.base import ScheduledAnomaly
from repro.engine import simulate_telemetry
from repro.viz import plot_series, sparkline
from repro.workload import tpcc_workload


def main() -> None:
    drift = WorkloadDrift(tps_growth=2.5, scan_growth_rows=2e6, ramp_s=60.0)
    dataset, regions = simulate_telemetry(
        tpcc_workload(),
        duration_s=240,
        anomalies=[ScheduledAnomaly(drift, 120.0, 240.0)],
        seed=42,
        name="tpcc/workload-drift",
    )

    print(plot_series(dataset, "txn.throughput_tps", regions, height=8))
    print()
    scans = dataset.column("mysql.handler_read_rnd_next")
    print(f"scan counter: {sparkline(scans, width=60)}")
    print()

    sherlock = DBSherlock()

    # (i) the automatic detector struggles with gradual onsets
    detection = sherlock.detect(dataset)
    truth = regions.abnormal[0]
    print(f"true drift window: t = {truth.start:g} .. {truth.end:g}")
    if detection.found:
        for region in detection.regions:
            print(f"detector found:    t = {region.start:g} .. {region.end:g}")
        boundary_error = abs(detection.regions[0].start - truth.start)
        print(f"onset boundary error: {boundary_error:.0f}s "
              "(gradual ramps blur the median-window statistic)")
    else:
        print("detector found:    nothing — the ramp never looks like a step")

    # (ii) with the region marked (e.g. by a capacity review), the drift
    # explains cleanly
    explanation = sherlock.explain(dataset, regions)
    print(f"\npredicates for the marked drift window "
          f"({len(explanation.predicates)}):")
    for predicate in list(explanation.predicates)[:10]:
        print(f"  {predicate}")


if __name__ == "__main__":
    main()
