"""DBSherlock reproduction: performance diagnosis for transactional databases.

A pure-Python reproduction of *DBSherlock: A Performance Diagnostic Tool
for Transactional Databases* (Yoon, Niu, Mozafari — SIGMOD 2016), including
the predicate-generation algorithm, causal models, domain-knowledge
pruning, automatic anomaly detection, the PerfXplain/PerfAugur baselines,
and an OLTP telemetry simulator standing in for the paper's MySQL-on-Azure
testbed.

Quickstart
----------
>>> from repro import DBSherlock, simulate_run
>>> dataset, spec, cause = simulate_run("cpu_saturation", seed=7)
>>> sherlock = DBSherlock()
>>> explanation = sherlock.explain(dataset, spec)
>>> print(explanation.predicates)
"""

from repro.core import (
    AnomalyDetector,
    CausalModel,
    CausalModelStore,
    CategoricalPredicate,
    Conjunction,
    DBSherlock,
    DomainRule,
    Explanation,
    GeneratorConfig,
    MYSQL_LINUX_RULES,
    NumericPredicate,
    PredicateGenerator,
)
from repro.data import Dataset, Region, RegionSpec
from repro.eval.harness import simulate_run
from repro.stream import RingBufferWindow, StreamingDetector, StreamingDiagnoser

__all__ = [
    "DBSherlock",
    "Explanation",
    "GeneratorConfig",
    "PredicateGenerator",
    "CausalModel",
    "CausalModelStore",
    "AnomalyDetector",
    "DomainRule",
    "MYSQL_LINUX_RULES",
    "NumericPredicate",
    "CategoricalPredicate",
    "Conjunction",
    "Dataset",
    "Region",
    "RegionSpec",
    "RingBufferWindow",
    "StreamingDetector",
    "StreamingDiagnoser",
    "simulate_run",
]

__version__ = "1.0.0"
