"""Automatic remediation — the paper's Section 10 future work, realised.

    "An important future work is to enable automatic actions for
    rectifying simple forms of performance anomaly (e.g., throttling
    certain tenants or triggering a migration), once they are detected
    and diagnosed with high confidence.  We also plan to extend
    DBSherlock to [...] documenting and storing the actions taken by the
    DBA to use as a suggestion for future occurrences of the same
    anomaly."

This package provides both: a library of remediation actions mapped to
the Table 1 root causes, a confidence-gated policy that fires them, an
action journal that records what was done and whether it worked, and an
online loop that closes the detect → diagnose → remediate cycle against
the simulator.
"""

from repro.actions.base import RemediationAction
from repro.actions.library import (
    DEFAULT_POLICY_TABLE,
    DeferBackup,
    DropUnusedIndex,
    EnableAdaptiveFlushing,
    KillRogueQuery,
    PauseBulkLoad,
    RerouteNetwork,
    SpreadHotKeys,
    StopExternalProcesses,
    ThrottleWorkload,
)
from repro.actions.journal import ActionJournal, ActionRecord
from repro.actions.policy import AutoRemediator, RemediationPolicy
from repro.actions.loop import RemediationLoop, LoopResult

__all__ = [
    "RemediationAction",
    "ThrottleWorkload",
    "KillRogueQuery",
    "DeferBackup",
    "PauseBulkLoad",
    "StopExternalProcesses",
    "SpreadHotKeys",
    "EnableAdaptiveFlushing",
    "RerouteNetwork",
    "DropUnusedIndex",
    "DEFAULT_POLICY_TABLE",
    "RemediationPolicy",
    "AutoRemediator",
    "ActionJournal",
    "ActionRecord",
    "RemediationLoop",
    "LoopResult",
]
