"""Remediation action interface.

An action models what a DBA (or an automated controller) does to the
system: kill a rogue query, throttle tenants, reschedule a backup.  In
the simulator this is a *transformation of the tick modifiers* — the
combined anomaly perturbations pass through every active action before
reaching the server, so an action can cancel, cap, or dampen the exact
causal pathway it targets.
"""

from __future__ import annotations

import abc

from repro.engine.server import TickModifiers

__all__ = ["RemediationAction"]


class RemediationAction(abc.ABC):
    """Base class for all remediation actions.

    Attributes
    ----------
    name:
        Short imperative label ("kill rogue query").
    target_cause:
        The Table 1 cause label this action is designed to rectify.
    """

    name: str = "no-op"
    target_cause: str = ""

    @abc.abstractmethod
    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        """Rewrite the tick's combined modifiers as if the action ran."""

    def describe(self) -> str:
        """Human-readable action description for journals and logs."""
        return f"{self.name} (targets: {self.target_cause or 'any'})"

    def __str__(self) -> str:
        return self.name
