"""Action journal: remembering what the DBA did and whether it worked.

The paper's second future-work item: store the actions taken after each
diagnosis and surface them as suggestions when the same cause recurs.
Records carry a simple outcome measure — latency before the action vs
after it settled — so suggestions rank by demonstrated effectiveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ActionRecord", "ActionJournal"]


@dataclass(frozen=True)
class ActionRecord:
    """One remediation applied to one diagnosed incident."""

    cause: str
    action_name: str
    applied_at: float
    latency_before_ms: float
    latency_after_ms: float
    note: str = ""

    @property
    def improvement(self) -> float:
        """Fractional latency reduction; negative when the action hurt."""
        if self.latency_before_ms <= 0:
            return 0.0
        return 1.0 - self.latency_after_ms / self.latency_before_ms

    @property
    def succeeded(self) -> bool:
        """A record counts as a success above 20 % latency reduction."""
        return self.improvement > 0.2

    def __str__(self) -> str:
        return (
            f"[{self.cause}] {self.action_name}: "
            f"{self.latency_before_ms:.1f}ms -> {self.latency_after_ms:.1f}ms "
            f"({self.improvement:+.0%})"
        )


class ActionJournal:
    """Append-only store of remediation outcomes, queried per cause."""

    def __init__(self) -> None:
        self._records: List[ActionRecord] = []

    def record(self, record: ActionRecord) -> None:
        """Append one outcome."""
        self._records.append(record)

    def records_for(self, cause: str) -> List[ActionRecord]:
        """All records for a cause, newest last."""
        return [r for r in self._records if r.cause == cause]

    def suggest(self, cause: str) -> Optional[str]:
        """The most effective action previously taken for *cause*.

        Ranks candidate actions by mean latency improvement over their
        recorded applications; returns ``None`` for never-seen causes.
        """
        by_action: Dict[str, List[float]] = {}
        for record in self.records_for(cause):
            by_action.setdefault(record.action_name, []).append(
                record.improvement
            )
        if not by_action:
            return None
        return max(
            by_action, key=lambda a: sum(by_action[a]) / len(by_action[a])
        )

    def success_rate(self, cause: str) -> float:
        """Fraction of recorded actions for *cause* that succeeded."""
        records = self.records_for(cause)
        if not records:
            return 0.0
        return sum(r.succeeded for r in records) / len(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)
