"""Remediation actions for the ten Table 1 root causes.

Each action neutralises the causal pathway of its target anomaly the way
a DBA would on the real system:

===========================  =========================================
Root cause                    Action (real-world analogue)
===========================  =========================================
Workload Spike                admission control / tenant throttling
Poorly Written Query          kill the rogue query
Database Backup               reschedule mysqldump off-peak
Table Restore                 pause / rate-limit the bulk load
CPU & I/O Saturation          stop the offending external processes
Lock Contention               spread the hot keys (re-partition)
Flush Log/Table               re-enable adaptive flushing
Network Congestion            fail over to a healthy route
Poor Physical Design          drop the unnecessary index
===========================  =========================================
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Type

from repro.actions.base import RemediationAction
from repro.engine.server import TickModifiers

__all__ = [
    "ThrottleWorkload",
    "KillRogueQuery",
    "DeferBackup",
    "PauseBulkLoad",
    "StopExternalProcesses",
    "SpreadHotKeys",
    "EnableAdaptiveFlushing",
    "RerouteNetwork",
    "DropUnusedIndex",
    "DEFAULT_POLICY_TABLE",
]


class ThrottleWorkload(RemediationAction):
    """Admission control: cap the surge at a multiple of the normal rate."""

    name = "throttle workload"
    target_cause = "Workload Spike"

    def __init__(self, cap_multiplier: float = 1.2):
        self.cap_multiplier = cap_multiplier

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(
            modifiers,
            tps_multiplier=min(modifiers.tps_multiplier, self.cap_multiplier),
            added_terminals=0,
        )


class KillRogueQuery(RemediationAction):
    """KILL the long-running JOIN; its scan stream stops immediately."""

    name = "kill rogue query"
    target_cause = "Poorly Written Query"

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(modifiers, scan_cpu_cores=0.0, scan_rows_per_s=0.0)


class DeferBackup(RemediationAction):
    """Stop mysqldump and reschedule it to an off-peak window."""

    name = "defer backup"
    target_cause = "Database Backup"

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(
            modifiers, dump_read_mb=0.0, dump_net_mb=0.0, buffer_miss_boost=0.0
        )


class PauseBulkLoad(RemediationAction):
    """Pause the table restore (or rate-limit it to a trickle)."""

    name = "pause bulk load"
    target_cause = "Table Restore"

    def __init__(self, trickle_fraction: float = 0.05):
        self.trickle_fraction = trickle_fraction

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(
            modifiers,
            bulk_insert_rows=modifiers.bulk_insert_rows * self.trickle_fraction,
        )


class StopExternalProcesses(RemediationAction):
    """Kill the stress-ng style resource hogs competing with the DBMS."""

    name = "stop external processes"
    target_cause = "CPU Saturation"  # also effective for I/O Saturation

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(
            modifiers,
            external_cpu_cores=0.0,
            external_disk_ops=0.0,
            external_net_mb=0.0,
            external_mem_mb=0.0,
        )


class SpreadHotKeys(RemediationAction):
    """Re-partition the hot district across warehouses (a migration)."""

    name = "spread hot keys"
    target_cause = "Lock Contention"

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(modifiers, hot_fraction_override=None)


class EnableAdaptiveFlushing(RemediationAction):
    """Turn adaptive flushing back on: storms smooth into the background."""

    name = "enable adaptive flushing"
    target_cause = "Flush Log/Table"

    def __init__(self, damping: float = 0.1):
        self.damping = damping

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(
            modifiers, flush_pages=modifiers.flush_pages * self.damping
        )


class RerouteNetwork(RemediationAction):
    """Fail traffic over to a healthy route past the bad router."""

    name = "reroute network"
    target_cause = "Network Congestion"

    def __init__(self, residual_delay_ms: float = 5.0):
        self.residual_delay_ms = residual_delay_ms

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(
            modifiers,
            network_delay_ms=min(
                modifiers.network_delay_ms, self.residual_delay_ms
            ),
        )


class DropUnusedIndex(RemediationAction):
    """Drop the unnecessary index; write amplification returns to normal."""

    name = "drop unused index"
    target_cause = "Poor Physical Design"

    def transform(self, modifiers: TickModifiers) -> TickModifiers:
        return replace(modifiers, write_amplification=1.0, scan_cpu_cores=0.0)


#: Default cause → action factory mapping used by RemediationPolicy.
DEFAULT_POLICY_TABLE: Dict[str, Type[RemediationAction]] = {
    "Workload Spike": ThrottleWorkload,
    "Poorly Written Query": KillRogueQuery,
    "Database Backup": DeferBackup,
    "Table Restore": PauseBulkLoad,
    "CPU Saturation": StopExternalProcesses,
    "I/O Saturation": StopExternalProcesses,
    "Lock Contention": SpreadHotKeys,
    "Flush Log/Table": EnableAdaptiveFlushing,
    "Network Congestion": RerouteNetwork,
    "Poor Physical Design": DropUnusedIndex,
}
