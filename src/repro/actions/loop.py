"""The closed remediation loop: detect → diagnose → act → verify.

Drives the simulator tick by tick.  A sliding window of recent telemetry
feeds the Section 7 detector every ``check_every_s`` seconds; when an
abnormal window is found, the :class:`AutoRemediator` diagnoses it and —
if a cause clears the confidence gate — applies the mapped action from
the next tick onward.  The loop records time-to-detection,
time-to-recovery (latency back within ``recovery_factor`` of baseline),
and writes the outcome into the action journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.actions.base import RemediationAction
from repro.actions.journal import ActionRecord
from repro.actions.policy import AutoRemediator
from repro.anomalies.base import ScheduledAnomaly
from repro.core.anomaly import AnomalyDetector
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.engine.metrics import MetricCatalog
from repro.engine.server import DatabaseServer, TickModifiers
from repro.workload.spec import WorkloadSpec

__all__ = ["RemediationLoop", "LoopResult"]


@dataclass
class LoopResult:
    """Outcome of one closed-loop simulation."""

    dataset: Dataset
    baseline_latency_ms: float
    detected_at: Optional[float] = None
    diagnosed_cause: Optional[str] = None
    diagnosis_confidence: float = 0.0
    action_name: Optional[str] = None
    action_applied_at: Optional[float] = None
    recovered_at: Optional[float] = None

    @property
    def time_to_recovery(self) -> Optional[float]:
        """Seconds from anomaly detection to latency recovery."""
        if self.detected_at is None or self.recovered_at is None:
            return None
        return self.recovered_at - self.detected_at


class RemediationLoop:
    """Online detect-diagnose-remediate simulation."""

    def __init__(
        self,
        workload: WorkloadSpec,
        remediator: AutoRemediator,
        detector: Optional[AnomalyDetector] = None,
        check_every_s: int = 10,
        window_s: int = 120,
        recovery_factor: float = 1.5,
    ) -> None:
        self.workload = workload
        self.remediator = remediator
        self.detector = detector or AnomalyDetector(
            cluster_fraction=0.45, min_region_s=4.0
        )
        self.check_every_s = check_every_s
        self.window_s = window_s
        self.recovery_factor = recovery_factor

    # ------------------------------------------------------------------
    def run(
        self,
        duration_s: int,
        anomalies: List[ScheduledAnomaly],
        seed: Optional[int] = None,
        baseline_s: int = 30,
    ) -> LoopResult:
        """Simulate ``duration_s`` seconds with the loop engaged.

        The first ``baseline_s`` seconds establish the reference latency;
        detection is suppressed during that period.
        """
        rng = np.random.default_rng(seed)
        server = DatabaseServer(self.workload)
        catalog = MetricCatalog(self.workload.type_names)

        timestamps: List[float] = []
        numeric: Dict[str, List[float]] = {
            n: [] for n in catalog.numeric_names
        }
        categorical: Dict[str, List[str]] = {
            n: [] for n in catalog.categorical_names
        }
        latencies: List[float] = []

        active_action: Optional[RemediationAction] = None
        result: Optional[LoopResult] = None
        baseline_latency = 0.0
        detected_at: Optional[float] = None
        diagnosed: Optional[str] = None
        confidence = 0.0
        action_applied_at: Optional[float] = None
        recovered_at: Optional[float] = None
        latency_at_detection = 0.0

        for second in range(duration_s):
            t = float(second)
            modifiers = TickModifiers()
            for anomaly in anomalies:
                modifiers = modifiers.combine(anomaly.modifiers(t, rng))
            if active_action is not None:
                modifiers = active_action.transform(modifiers)

            state = server.tick(t, modifiers, rng)
            latencies.append(state.avg_latency_ms)
            timestamps.append(t)
            for attr, value in catalog.emit_numeric(state, rng).items():
                numeric[attr].append(value)
            for attr, value in catalog.emit_categorical(state).items():
                categorical[attr].append(value)

            if second == baseline_s - 1:
                baseline_latency = float(np.mean(latencies))

            ready = second >= baseline_s and second % self.check_every_s == 0
            if ready and active_action is None:
                window = self._window_dataset(
                    timestamps, numeric, categorical
                )
                detection = self.detector.detect(window)
                if detection.found:
                    spec = detection.to_region_spec()
                    cause, action, conf = self.remediator.decide(window, spec)
                    # only latch a *confident* diagnosis; spurious detector
                    # blips on normal telemetry stay in monitoring mode
                    if cause is not None:
                        detected_at = t
                        latency_at_detection = state.avg_latency_ms
                        diagnosed = cause
                        confidence = conf
                        if action is not None:
                            active_action = action
                            action_applied_at = t

            if (
                detected_at is not None
                and recovered_at is None
                and second > (action_applied_at or detected_at)
                and state.avg_latency_ms
                <= baseline_latency * self.recovery_factor
            ):
                recovered_at = t

        dataset = Dataset(
            timestamps,
            numeric=numeric,
            categorical=categorical,
            name=f"{self.workload.name}/remediation-loop",
        )
        result = LoopResult(
            dataset=dataset,
            baseline_latency_ms=baseline_latency,
            detected_at=detected_at,
            diagnosed_cause=diagnosed,
            diagnosis_confidence=confidence,
            action_name=active_action.name if active_action else None,
            action_applied_at=action_applied_at,
            recovered_at=recovered_at,
        )
        self._journal(result, latency_at_detection, latencies)
        return result

    # ------------------------------------------------------------------
    def _window_dataset(self, timestamps, numeric, categorical) -> Dataset:
        """The trailing telemetry window the online detector sees."""
        start = max(len(timestamps) - self.window_s, 0)
        return Dataset(
            timestamps[start:],
            numeric={a: np.asarray(v[start:]) for a, v in numeric.items()},
            categorical={
                a: np.asarray(v[start:], dtype=object)
                for a, v in categorical.items()
            },
            name="window",
        )

    def _journal(
        self,
        result: LoopResult,
        latency_at_detection: float,
        latencies: List[float],
    ) -> None:
        """Record the action's outcome for future suggestions."""
        if result.action_name is None or result.diagnosed_cause is None:
            return
        settled = float(np.mean(latencies[-10:]))
        self.remediator.journal.record(
            ActionRecord(
                cause=result.diagnosed_cause,
                action_name=result.action_name,
                applied_at=result.action_applied_at or 0.0,
                latency_before_ms=latency_at_detection,
                latency_after_ms=settled,
            )
        )
