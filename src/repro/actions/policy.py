"""Confidence-gated remediation policy.

The paper insists automatic actions fire only "once [anomalies] are
detected and diagnosed with high confidence".  ``AutoRemediator`` wraps a
DBSherlock causal-model store: given a diagnosed anomaly it returns an
action only when the top cause's confidence clears a (strict) threshold,
consulting the journal first so demonstrated-effective actions win over
the static policy table.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.actions.base import RemediationAction
from repro.actions.journal import ActionJournal
from repro.actions.library import DEFAULT_POLICY_TABLE
from repro.core.causal import CausalModelStore
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = ["RemediationPolicy", "AutoRemediator"]

DEFAULT_ACTION_CONFIDENCE = 0.6


class RemediationPolicy:
    """Static cause → action mapping (the DBA's runbook)."""

    def __init__(
        self,
        table: Optional[Dict[str, Type[RemediationAction]]] = None,
    ) -> None:
        self.table = dict(table if table is not None else DEFAULT_POLICY_TABLE)

    def action_for(self, cause: str) -> Optional[RemediationAction]:
        """Instantiate the runbook action for *cause*, if any."""
        factory = self.table.get(cause)
        return factory() if factory else None

    def causes(self):
        """Causes the runbook covers."""
        return list(self.table)


class AutoRemediator:
    """Closed-loop remediation gated on diagnosis confidence.

    Parameters
    ----------
    store:
        The causal models accumulated from past DBA diagnoses.
    policy:
        Runbook mapping causes to actions.
    journal:
        Outcome history; effective past actions take precedence.
    confidence_threshold:
        Minimum top-cause confidence before any action fires — far above
        the λ=0.2 display threshold, per the paper's "high confidence".
    """

    def __init__(
        self,
        store: CausalModelStore,
        policy: Optional[RemediationPolicy] = None,
        journal: Optional[ActionJournal] = None,
        confidence_threshold: float = DEFAULT_ACTION_CONFIDENCE,
    ) -> None:
        self.store = store
        self.policy = policy or RemediationPolicy()
        self.journal = journal or ActionJournal()
        self.confidence_threshold = confidence_threshold

    def decide(
        self, dataset: Dataset, spec: RegionSpec
    ) -> Tuple[Optional[str], Optional[RemediationAction], float]:
        """Diagnose and pick an action.

        Returns ``(cause, action, confidence)``; cause/action are ``None``
        when no model clears the confidence gate (the safe default: do
        nothing and page a human).
        """
        ranking = self.store.rank(dataset, spec)
        if not ranking:
            return None, None, 0.0
        cause, confidence = ranking[0]
        if confidence < self.confidence_threshold:
            return None, None, confidence
        action = self._action_from_journal(cause) or self.policy.action_for(
            cause
        )
        return cause, action, confidence

    def _action_from_journal(
        self, cause: str
    ) -> Optional[RemediationAction]:
        """Re-instantiate the journal's best past action, when it maps."""
        suggestion = self.journal.suggest(cause)
        if suggestion is None:
            return None
        for factory in self.policy.table.values():
            if factory().name == suggestion:
                return factory()
        return None
