"""Anomaly injectors: the 10 root causes of Table 1, plus compounds."""

from repro.anomalies.base import AnomalyInjector, ScheduledAnomaly
from repro.anomalies.library import (
    ANOMALY_CAUSES,
    CompoundAnomaly,
    WorkloadDrift,
    make_anomaly,
)

__all__ = [
    "AnomalyInjector",
    "ScheduledAnomaly",
    "ANOMALY_CAUSES",
    "CompoundAnomaly",
    "WorkloadDrift",
    "make_anomaly",
]
