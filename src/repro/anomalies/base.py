"""Anomaly injection interface.

An injector owns a *cause label* (what the DBA would eventually diagnose)
and produces :class:`~repro.engine.server.TickModifiers` for the seconds
in which it is active.  The collector composes the modifiers of all active
injectors, which is how compound situations (Section 8.7) arise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.regions import Region, RegionSpec
from repro.engine.server import TickModifiers

__all__ = ["AnomalyInjector", "ScheduledAnomaly"]


class AnomalyInjector(abc.ABC):
    """Base class for all root-cause injectors."""

    #: Human-readable cause label (matches Table 1 naming).
    cause: str = "unknown"

    @abc.abstractmethod
    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        """The perturbation this anomaly applies at second *t* when active."""

    def __str__(self) -> str:
        return self.cause


@dataclass
class ScheduledAnomaly:
    """An injector bound to an activity window ``[start, end)``."""

    injector: AnomalyInjector
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("anomaly window must have positive length")

    @property
    def cause(self) -> str:
        """The underlying injector's cause label."""
        return self.injector.cause

    def active(self, t: float) -> bool:
        """True when second *t* falls inside the window."""
        return self.start <= t < self.end

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        """Modifiers at *t* (identity when inactive)."""
        if not self.active(t):
            return TickModifiers()
        return self.injector.modifiers(t, rng)

    def ground_truth_region(self) -> Region:
        """The true abnormal interval (used as the 'perfect user' marking)."""
        return Region(self.start, self.end - 1.0)


def ground_truth_spec(anomalies: List[ScheduledAnomaly]) -> RegionSpec:
    """Region spec marking every scheduled window as abnormal."""
    return RegionSpec(
        abnormal=[a.ground_truth_region() for a in anomalies], normal=None
    )
