"""The ten anomaly classes of Table 1, plus compound anomalies.

Each injector perturbs the same causal pathway the paper's tooling
stressed on the real testbed:

=====================  =====================================================
Paper mechanism         Our injector
=====================  =====================================================
poorly written JOIN     rogue scan stream: DB CPU + ``handler_read_rnd_next``
unnecessary index       write amplification on DML
OLTPBenchmark surge     tps ×, +128 terminals
stress-ng (I/O)         external IOPS consumer
mysqldump               sequential disk reads streamed out the NIC
restore of a dump       bulk insert rows (log + dirty-page storm)
stress-ng (CPU)         external CPU hog (DB CPU untouched)
mysqladmin flush        bursty page/log flush storms, table cache reopen
tc netem 300 ms         +300 ms per-transaction network delay
single-district mix     hot_fraction shrunk to a handful of rows
=====================  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from repro.anomalies.base import AnomalyInjector
from repro.engine.server import TickModifiers

__all__ = [
    "PoorlyWrittenQuery",
    "PoorPhysicalDesign",
    "WorkloadSpike",
    "IOSaturation",
    "DatabaseBackup",
    "TableRestore",
    "CPUSaturation",
    "FlushLogTable",
    "NetworkCongestion",
    "LockContention",
    "WorkloadDrift",
    "CompoundAnomaly",
    "ANOMALY_CAUSES",
    "make_anomaly",
]


class PoorlyWrittenQuery(AnomalyInjector):
    """A badly written JOIN scanning millions of rows (Table 1, row 1)."""

    cause = "Poorly Written Query"

    def __init__(
        self,
        scan_cpu_cores: float = 1.6,
        scan_rows: float = 2.5e6,
        intensity: float = 1.0,
    ):
        self.scan_cpu_cores = scan_cpu_cores * intensity
        self.scan_rows = scan_rows * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        wobble = 1.0 + 0.08 * rng.standard_normal()
        return TickModifiers(
            scan_cpu_cores=self.scan_cpu_cores * wobble,
            scan_rows_per_s=self.scan_rows * wobble,
            buffer_miss_boost=0.01,
        )


class PoorPhysicalDesign(AnomalyInjector):
    """An unnecessary index on insert-heavy tables (Table 1, row 2)."""

    cause = "Poor Physical Design"

    def __init__(self, amplification: float = 4.5, intensity: float = 1.0):
        self.amplification = 1.0 + (amplification - 1.0) * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(
            write_amplification=self.amplification
            * (1.0 + 0.05 * rng.standard_normal()),
            scan_cpu_cores=0.15,
        )


class WorkloadSpike(AnomalyInjector):
    """128 extra terminals at a 50 000 tps target (Table 1, row 3)."""

    cause = "Workload Spike"

    def __init__(
        self,
        tps_multiplier: float = 5.0,
        added_terminals: int = 128,
        intensity: float = 1.0,
    ):
        self.tps_multiplier = 1.0 + (tps_multiplier - 1.0) * intensity
        self.added_terminals = int(added_terminals * intensity)

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(
            tps_multiplier=self.tps_multiplier,
            added_terminals=self.added_terminals,
        )


class IOSaturation(AnomalyInjector):
    """stress-ng spinning on write()/unlink()/sync() (Table 1, row 4)."""

    cause = "I/O Saturation"

    def __init__(self, external_ops: float = 2300.0, intensity: float = 1.0):
        self.external_ops = external_ops * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(
            external_disk_ops=self.external_ops
            * (1.0 + 0.06 * rng.standard_normal()),
        )


class DatabaseBackup(AnomalyInjector):
    """mysqldump streaming the database to a remote client (Table 1, row 5)."""

    cause = "Database Backup"

    def __init__(
        self,
        read_mb: float = 85.0,
        net_mb: float = 30.0,
        intensity: float = 1.0,
    ):
        self.read_mb = read_mb * intensity
        self.net_mb = net_mb * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        wobble = 1.0 + 0.05 * rng.standard_normal()
        return TickModifiers(
            dump_read_mb=self.read_mb * wobble,
            dump_net_mb=self.net_mb * wobble,
            buffer_miss_boost=0.04,
            scan_cpu_cores=0.3,
        )


class TableRestore(AnomalyInjector):
    """Re-loading a dumped history table (Table 1, row 6)."""

    cause = "Table Restore"

    def __init__(self, rows_per_s: float = 22000.0, intensity: float = 1.0):
        self.rows_per_s = rows_per_s * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(
            bulk_insert_rows=self.rows_per_s
            * (1.0 + 0.07 * rng.standard_normal()),
            external_net_mb=4.0,  # the incoming dump stream
            buffer_miss_boost=0.02,
        )


class CPUSaturation(AnomalyInjector):
    """stress-ng spawning poll() spinners (Table 1, row 7)."""

    cause = "CPU Saturation"

    def __init__(self, cores: float = 3.8, intensity: float = 1.0):
        self.cores = cores * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(
            external_cpu_cores=self.cores * (1.0 + 0.03 * rng.standard_normal()),
        )


class FlushLogTable(AnomalyInjector):
    """mysqladmin flush-logs / refresh storms (Table 1, row 8).

    Flushing is bursty: every few seconds the storm writes a slug of pages
    and reopens table caches, causing short stalls — with MySQL's adaptive
    flushing disabled (the footnote setting), each burst hits foreground
    I/O directly.
    """

    cause = "Flush Log/Table"

    def __init__(
        self,
        burst_pages: float = 3200.0,
        period_s: int = 4,
        intensity: float = 1.0,
    ):
        self.burst_pages = burst_pages * intensity
        self.period_s = period_s

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        bursting = int(t) % self.period_s < 2
        pages = self.burst_pages if bursting else self.burst_pages * 0.15
        return TickModifiers(
            flush_pages=pages * (1.0 + 0.05 * rng.standard_normal()),
            buffer_miss_boost=0.015 if bursting else 0.005,
        )


class NetworkCongestion(AnomalyInjector):
    """tc netem adding 300 ms to every packet (Table 1, row 9)."""

    cause = "Network Congestion"

    def __init__(self, delay_ms: float = 300.0, intensity: float = 1.0):
        self.delay_ms = delay_ms * intensity

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(
            network_delay_ms=self.delay_ms
            * (1.0 + 0.04 * rng.standard_normal()),
        )


class LockContention(AnomalyInjector):
    """All NewOrder traffic against one warehouse/district (Table 1, row 10)."""

    cause = "Lock Contention"

    def __init__(self, hot_fraction: float = 2e-6, intensity: float = 1.0):
        self.hot_fraction = hot_fraction / max(intensity, 1e-3)

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        return TickModifiers(hot_fraction_override=self.hot_fraction)


class WorkloadDrift(AnomalyInjector):
    """Gradual workload drift — the paper's closing future-work pointer.

    Unlike the step anomalies of Table 1, drift ramps linearly over its
    window: the request rate creeps up while an analytical query pattern
    (scans) slowly grows.  Gradual onsets are the hard case for
    median-window detection (Equation 4) and for users eyeballing plots,
    which is exactly why the paper flags them as future work.

    Not part of the ten-cause Table 1 registry; construct it directly or
    via ``make_anomaly("workload_drift")`` using the extended registry.
    """

    cause = "Workload Drift"

    def __init__(
        self,
        tps_growth: float = 2.0,
        scan_growth_rows: float = 1.2e6,
        ramp_s: float = 60.0,
        intensity: float = 1.0,
    ):
        self.tps_growth = 1.0 + (tps_growth - 1.0) * intensity
        self.scan_growth_rows = scan_growth_rows * intensity
        self.ramp_s = ramp_s
        self._start: Optional[float] = None

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        if self._start is None:
            self._start = t
        progress = min((t - self._start) / max(self.ramp_s, 1.0), 1.0)
        return TickModifiers(
            tps_multiplier=1.0 + (self.tps_growth - 1.0) * progress,
            scan_rows_per_s=self.scan_growth_rows * progress,
            scan_cpu_cores=0.6 * progress,
        )


class CompoundAnomaly(AnomalyInjector):
    """Several root causes active simultaneously (Section 8.7)."""

    def __init__(self, injectors: Sequence[AnomalyInjector]):
        if not injectors:
            raise ValueError("compound anomaly needs at least one injector")
        self.injectors = list(injectors)
        self.cause = " + ".join(i.cause for i in self.injectors)

    @property
    def causes(self) -> List[str]:
        """The individual cause labels."""
        return [i.cause for i in self.injectors]

    def modifiers(self, t: float, rng: np.random.Generator) -> TickModifiers:
        combined = TickModifiers()
        for injector in self.injectors:
            combined = combined.combine(injector.modifiers(t, rng))
        return combined


#: Registry mapping canonical cause keys to injector factories.
_REGISTRY: Dict[str, Type[AnomalyInjector]] = {
    "poorly_written_query": PoorlyWrittenQuery,
    "poor_physical_design": PoorPhysicalDesign,
    "workload_spike": WorkloadSpike,
    "io_saturation": IOSaturation,
    "database_backup": DatabaseBackup,
    "table_restore": TableRestore,
    "cpu_saturation": CPUSaturation,
    "flush_log_table": FlushLogTable,
    "network_congestion": NetworkCongestion,
    "lock_contention": LockContention,
}

#: Canonical anomaly keys, in Table 1 order.
ANOMALY_CAUSES: List[str] = list(_REGISTRY)

#: Extensions beyond Table 1 (future-work anomalies; excluded from the
#: paper-faithful benches, which iterate ANOMALY_CAUSES).
_EXTENDED_REGISTRY: Dict[str, Type[AnomalyInjector]] = {
    "workload_drift": WorkloadDrift,
}


def make_anomaly(key: str, **kwargs) -> AnomalyInjector:
    """Instantiate an injector by its canonical key (see ANOMALY_CAUSES)."""
    registry = {**_REGISTRY, **_EXTENDED_REGISTRY}
    if key not in registry:
        raise KeyError(
            f"unknown anomaly {key!r}; choose from {sorted(registry)}"
        )
    return registry[key](**kwargs)
