"""Baselines the paper compares against: PerfXplain and PerfAugur."""

from repro.baselines.perfxplain import PerfXplain, PerfXplainConfig
from repro.baselines.perfaugur import PerfAugur, PerfAugurConfig

__all__ = ["PerfXplain", "PerfXplainConfig", "PerfAugur", "PerfAugurConfig"]
