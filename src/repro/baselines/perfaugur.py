"""PerfAugur baseline (Roy et al., ICDE 2015): robust anomaly detection.

Appendix E compares DBSherlock's automatic detector against PerfAugur's
*naïve algorithm with the original scoring function*, fed the overall
average latency as the performance indicator.  PerfAugur locates the
interval of a time series that most deviates from the rest using robust
aggregates: we score every candidate interval by the difference between
its median indicator and the median of the remainder, scaled by the median
absolute deviation (MAD) of the remainder, with a mild length bonus so the
detector prefers covering the whole anomalous window over a single extreme
point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec

__all__ = ["PerfAugur", "PerfAugurConfig"]


@dataclass(frozen=True)
class PerfAugurConfig:
    """Scan parameters for the naïve interval search.

    Attributes
    ----------
    min_length:
        Shortest candidate interval, in samples.
    step:
        Scan stride over interval boundaries (1 = exhaustive; larger
        strides trade a little boundary precision for speed).
    length_exponent:
        Interval score is multiplied by ``length**length_exponent``
        (0 = pure robust-z, 0.5 = the usual sqrt-length bonus).
    """

    min_length: int = 10
    step: int = 1
    length_exponent: float = 0.5


def _mad(values: np.ndarray) -> float:
    """Median absolute deviation, floored to avoid division by zero."""
    median = np.median(values)
    mad = float(np.median(np.abs(values - median)))
    return max(mad, 1e-9)


class PerfAugur:
    """Naïve robust-scoring interval detector over a performance indicator."""

    def __init__(self, config: Optional[PerfAugurConfig] = None) -> None:
        self.config = config or PerfAugurConfig()

    def score_interval(
        self, indicator: np.ndarray, start: int, end: int
    ) -> float:
        """Robust separation score of ``indicator[start:end]`` vs the rest."""
        inside = indicator[start:end]
        outside = np.concatenate([indicator[:start], indicator[end:]])
        if inside.size == 0 or outside.size == 0:
            return float("-inf")
        gap = abs(float(np.median(inside)) - float(np.median(outside)))
        robust_z = gap / _mad(outside)
        return robust_z * inside.size ** self.config.length_exponent

    def best_interval(self, indicator: np.ndarray) -> Tuple[int, int, float]:
        """Exhaustively scan intervals; returns ``(start, end, score)``."""
        indicator = np.asarray(indicator, dtype=np.float64)
        n = indicator.shape[0]
        cfg = self.config
        if n <= cfg.min_length:
            return 0, n, 0.0
        best = (0, min(cfg.min_length, n), float("-inf"))
        for start in range(0, n - cfg.min_length, cfg.step):
            for end in range(start + cfg.min_length, n + 1, cfg.step):
                if end - start > n - cfg.min_length:
                    break  # leave some 'outside' for the robust baseline
                score = self.score_interval(indicator, start, end)
                if score > best[2]:
                    best = (start, end, score)
        return best

    def detect(
        self,
        dataset: Dataset,
        indicator_attr: str = "txn.avg_latency_ms",
    ) -> RegionSpec:
        """Locate the most anomalous interval of the indicator attribute."""
        indicator = dataset.column(indicator_attr)
        start, end, _ = self.best_interval(np.asarray(indicator, dtype=float))
        timestamps = dataset.timestamps
        return RegionSpec(
            abnormal=[Region(float(timestamps[start]), float(timestamps[end - 1]))],
            normal=None,
        )
