"""PerfXplain baseline (Khoussainova et al., PVLDB 2012), adapted per §8.4.

PerfXplain explains *pairs* of MapReduce jobs: the user states an EXPECTED
relation and an OBSERVED one, and the tool learns a conjunction of
pairwise feature predicates maximising a weighted precision/recall score.
The paper re-implements it over pairs of telemetry tuples with the query::

    EXPECTED avg_latency_difference = insignificant
    OBSERVED avg_latency_difference = significant

where two latencies differ *significantly* when the gap is at least 50 %
of the smaller value, using 2 000 sampled pairs, a scoring weight of 0.8,
and (the best-performing) 2 predicates.

Faithful to that construction, this implementation works on random tuple
pairs rather than a curated normal reference:

* **fit** samples 2 000 random pairs of input tuples; a pair is a positive
  example when its latency difference is significant.  Pair features
  compare each attribute between the *slower* and the *faster* tuple of
  the pair (``higher`` / ``similar`` / ``lower`` with the same 50 % cut).
  A greedy search grows the best conjunction of at most ``n_predicates``
  features under ``w · precision + (1 − w) · recall``.
* **predict** classifies a test tuple by pairing it against ``n_probes``
  random tuples of the test dataset itself (PerfXplain has no notion of a
  ground-truth normal region) and majority-voting the learned conjunction
  with the test tuple on the slow side.

The pair sampling is exactly what limits PerfXplain here (Figure 9):
abnormal-abnormal pairs have insignificant latency differences and teach
it nothing, and attribute shifts below the 50 % significance cut are
invisible to its coarse pairwise features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = ["PerfXplain", "PerfXplainConfig", "PairFeature"]

HIGHER = "higher"
SIMILAR = "similar"
LOWER = "lower"

LATENCY_ATTR = "txn.avg_latency_ms"


@dataclass(frozen=True)
class PairFeature:
    """One pairwise predicate: the slow tuple's attribute vs the fast one's."""

    attr: str
    relation: str  # HIGHER / SIMILAR / LOWER

    def __str__(self) -> str:
        return f"{self.attr} {self.relation} (slow vs fast)"


@dataclass(frozen=True)
class PerfXplainConfig:
    """The §8.4 PerfXplain settings.

    Attributes
    ----------
    n_samples:
        Training pairs sampled (paper: 2 000).
    weight:
        Scoring weight ``w`` on precision (paper: 0.8).
    n_predicates:
        Conjunction size (paper varied 1-10 and chose 2).
    significance:
        Relative difference below which two values are *similar* (50 %).
    n_probes:
        Random peers each test tuple is paired with at prediction time.
    """

    n_samples: int = 2000
    weight: float = 0.8
    n_predicates: int = 2
    significance: float = 0.5
    n_probes: int = 15


def _relation(value: float, reference: float, significance: float) -> str:
    """Discretize the relative difference between two paired values."""
    smaller = min(abs(value), abs(reference))
    gap = abs(value - reference)
    if gap < significance * max(smaller, 1e-9):
        return SIMILAR
    return HIGHER if value > reference else LOWER


class PerfXplain:
    """Pairwise decision-list explanations over telemetry tuples."""

    def __init__(self, config: Optional[PerfXplainConfig] = None) -> None:
        self.config = config or PerfXplainConfig()
        self.features_: List[PairFeature] = []
        self._attrs: List[str] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        datasets: Sequence[Dataset],
        specs: Sequence[RegionSpec],
        seed: Optional[int] = None,
    ) -> "PerfXplain":
        """Learn an explanation from random tuple pairs of the datasets.

        ``specs`` select the rows PerfXplain may sample from (tuples in
        either region, matching the input DBSherlock receives); the region
        labels themselves are never shown to PerfXplain — it learns purely
        from the latency-difference query.
        """
        if len(datasets) != len(specs) or not datasets:
            raise ValueError("datasets and specs must be equal-length, non-empty")
        if LATENCY_ATTR not in datasets[0]:
            raise ValueError(f"datasets must carry {LATENCY_ATTR!r}")
        rng = np.random.default_rng(seed)
        self._attrs = [
            a for a in datasets[0].numeric_attributes if a != LATENCY_ATTR
        ]

        per_dataset = max(self.config.n_samples // len(datasets), 1)
        feature_rows: List[Dict[str, str]] = []
        labels: List[bool] = []
        for dataset, spec in zip(datasets, specs):
            rows = np.flatnonzero(
                spec.abnormal_mask(dataset) | spec.normal_mask(dataset)
            )
            if rows.size < 2:
                continue
            latency = dataset.column(LATENCY_ATTR)
            for _ in range(per_dataset):
                i, j = rng.choice(rows, size=2, replace=False)
                # orient the pair: slow tuple first
                if latency[i] < latency[j]:
                    i, j = j, i
                significant = _relation(
                    float(latency[i]), float(latency[j]),
                    self.config.significance,
                ) != SIMILAR
                feats = {
                    attr: _relation(
                        float(dataset.column(attr)[i]),
                        float(dataset.column(attr)[j]),
                        self.config.significance,
                    )
                    for attr in self._attrs
                }
                feature_rows.append(feats)
                labels.append(significant)

        label_arr = np.asarray(labels, dtype=bool)
        self.features_ = self._greedy_search(feature_rows, label_arr)
        return self

    # ------------------------------------------------------------------
    def _score(self, predicted: np.ndarray, actual: np.ndarray) -> float:
        """``w · precision + (1 − w) · recall`` (the paper's scoring weight)."""
        tp = float((predicted & actual).sum())
        precision = tp / predicted.sum() if predicted.any() else 0.0
        recall = tp / actual.sum() if actual.any() else 0.0
        w = self.config.weight
        return w * precision + (1.0 - w) * recall

    def _greedy_search(
        self, rows: List[Dict[str, str]], labels: np.ndarray
    ) -> List[PairFeature]:
        """Grow the best conjunction of pair features, one at a time."""
        candidates = [
            PairFeature(attr, relation)
            for attr in self._attrs
            for relation in (HIGHER, LOWER)
        ]
        matches = {
            feature: np.asarray(
                [row[feature.attr] == feature.relation for row in rows],
                dtype=bool,
            )
            for feature in candidates
        }
        chosen: List[PairFeature] = []
        current = np.ones(len(rows), dtype=bool)
        current_score = -1.0
        for _ in range(self.config.n_predicates):
            best_feature = None
            best_mask = None
            best_score = current_score
            for feature in candidates:
                if any(feature.attr == c.attr for c in chosen):
                    continue
                mask = current & matches[feature]
                score = self._score(mask, labels)
                if score > best_score:
                    best_feature, best_mask, best_score = feature, mask, score
            if best_feature is None:
                break
            chosen.append(best_feature)
            current = best_mask
            current_score = best_score
        return chosen

    # ------------------------------------------------------------------
    def _pair_matches(
        self, dataset: Dataset, row: int, peer: int, feature: PairFeature
    ) -> bool:
        values = dataset.column(feature.attr)
        return (
            _relation(
                float(values[row]), float(values[peer]),
                self.config.significance,
            )
            == feature.relation
        )

    def predict(
        self, dataset: Dataset, seed: Optional[int] = None
    ) -> np.ndarray:
        """Classify tuples by majority vote over random-peer pairings."""
        if not self.features_:
            return np.zeros(dataset.n_rows, dtype=bool)
        rng = np.random.default_rng(seed)
        masks = self.feature_masks(dataset, rng)
        combined = np.ones(dataset.n_rows, dtype=bool)
        for mask in masks:
            combined &= mask
        return combined

    def feature_masks(
        self,
        dataset: Dataset,
        rng: Optional[np.random.Generator] = None,
    ) -> List[np.ndarray]:
        """Per-feature row masks via random-peer majority vote (Figure 9)."""
        rng = rng or np.random.default_rng(0)
        n = dataset.n_rows
        n_probes = min(self.config.n_probes, max(n - 1, 1))
        peers = rng.integers(0, n, size=(n, n_probes))
        masks: List[np.ndarray] = []
        for feature in self.features_:
            if feature.attr not in dataset:
                masks.append(np.zeros(n, dtype=bool))
                continue
            values = np.asarray(dataset.column(feature.attr), dtype=float)
            votes = np.zeros(n, dtype=np.int64)
            for p in range(n_probes):
                peer_vals = values[peers[:, p]]
                smaller = np.minimum(np.abs(values), np.abs(peer_vals))
                gap = np.abs(values - peer_vals)
                similar = gap < self.config.significance * np.maximum(
                    smaller, 1e-9
                )
                if feature.relation == SIMILAR:
                    votes += similar
                elif feature.relation == HIGHER:
                    votes += (~similar) & (values > peer_vals)
                else:
                    votes += (~similar) & (values < peer_vals)
            masks.append(votes * 2 > n_probes)
        return masks

    def explanation(self) -> str:
        """Human-readable rendering of the learned conjunction."""
        return " ∧ ".join(str(f) for f in self.features_) or "(empty)"
