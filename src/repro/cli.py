"""Command-line interface: simulate, detect, explain, diagnose.

A thin operational wrapper around the library, in the spirit of the
dbseer tooling the paper ships with::

    repro-sherlock simulate --anomaly cpu_saturation --out incident.csv
    repro-sherlock detect incident.csv
    repro-sherlock explain incident.csv --abnormal 60:99
    repro-sherlock causes
    repro-sherlock report incident.csv --abnormal 60:99

All commands print plain text; ``explain``/``report`` accept one or more
``--abnormal start:end`` ranges (seconds) and optional ``--normal``
ranges, mirroring the GUI's region selection.  ``fleet status`` renders
per-tenant lag, shed counts, and verdict summaries from the fleet
engine's metrics (live registry or a ``--metrics`` snapshot JSON).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.anomalies.library import ANOMALY_CAUSES, make_anomaly
from repro.core.explain import DBSherlock
from repro.core.generator import GeneratorConfig
from repro.core.knowledge import MYSQL_LINUX_RULES
from repro.data.loader import load_dataset_csv, save_dataset_csv
from repro.data.regions import RegionSpec
from repro.eval.harness import simulate_run
from repro.viz.ascii import incident_report, plot_series

__all__ = ["main", "build_parser"]


def _parse_range(text: str) -> Tuple[float, float]:
    try:
        start, end = text.split(":")
        return float(start), float(end)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"range {text!r} must look like START:END"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    """The repro-sherlock argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sherlock",
        description="DBSherlock reproduction: diagnose OLTP anomalies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate an incident to CSV")
    sim.add_argument("--anomaly", choices=ANOMALY_CAUSES + ["workload_drift"],
                     default="cpu_saturation")
    sim.add_argument("--duration", type=int, default=50,
                     help="anomaly duration in seconds")
    sim.add_argument("--normal", type=int, default=120,
                     help="seconds of normal activity")
    sim.add_argument("--workload", choices=["tpcc", "tpce"], default="tpcc")
    sim.add_argument("--seed", type=int, default=None)
    sim.add_argument("--out", required=True, help="output CSV path")

    det = sub.add_parser("detect", help="auto-detect abnormal regions")
    det.add_argument("csv", help="telemetry CSV (see 'simulate')")

    exp = sub.add_parser("explain", help="generate explanatory predicates")
    _add_region_args(exp)
    exp.add_argument("--theta", type=float, default=0.2)
    exp.add_argument("--no-rules", action="store_true",
                     help="disable domain-knowledge pruning")

    rep = sub.add_parser("report", help="full text incident report")
    _add_region_args(rep)
    rep.add_argument("--theta", type=float, default=0.2)

    plot = sub.add_parser("plot", help="ASCII plot of one attribute")
    plot.add_argument("csv")
    plot.add_argument("--attr", default="txn.avg_latency_ms")

    sub.add_parser("causes", help="list the Table 1 anomaly causes")

    obs = sub.add_parser(
        "obs", help="inspect the pipeline's own traces and metrics"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="span tree, stage totals, metric snapshot"
    )
    obs_report.add_argument("--trace", required=True,
                            help="JSON-lines trace (see docs/OBSERVABILITY.md)")
    obs_report.add_argument("--metrics", default=None,
                            help="metrics snapshot JSON (optional)")
    obs_report.add_argument("--max-spans", type=int, default=40)
    obs_incidents = obs_sub.add_parser(
        "incidents", help="list, inspect, and diagnose incident bundles"
    )
    inc_sub = obs_incidents.add_subparsers(
        dest="incidents_command", required=True
    )
    inc_list = inc_sub.add_parser(
        "list", help="incident bundles under a fleet root"
    )
    inc_list.add_argument(
        "--root", default=".",
        help="fleet root or incidents/ directory (default: cwd)",
    )
    inc_show = inc_sub.add_parser(
        "show", help="one bundle's manifest, spans, and health tail"
    )
    inc_show.add_argument("bundle", help="bundle directory path")
    inc_explain = inc_sub.add_parser(
        "explain",
        help="diagnose a bundle from its retained metric timeline",
    )
    inc_explain.add_argument("bundle", help="bundle directory path")
    inc_explain.add_argument(
        "--models", default=None,
        help="saved causal models (see DBSherlock.save_models) for "
        "cause ranking",
    )
    inc_explain.add_argument("--theta", type=float, default=0.2)

    fleet = sub.add_parser(
        "fleet", help="multi-tenant fleet engine operations"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status",
        help="per-tenant lag, sheds, and verdicts from fleet metrics",
    )
    fleet_status.add_argument(
        "--metrics", default=None,
        help="metrics snapshot JSON (default: this process's registry)",
    )
    fleet_status.add_argument("--max-tenants", type=int, default=40)
    fleet_status.add_argument(
        "--json", action="store_true",
        help="emit the full status as machine-readable JSON",
    )
    return parser


def _add_region_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument("csv")
    sub_parser.add_argument(
        "--abnormal", type=_parse_range, action="append", required=True,
        metavar="START:END",
    )
    sub_parser.add_argument(
        "--normal", type=_parse_range, action="append", default=None,
        metavar="START:END",
    )


def _region_spec(args) -> RegionSpec:
    return RegionSpec.from_bounds(args.abnormal, args.normal)


def _cmd_simulate(args, out) -> int:
    dataset, spec, cause = simulate_run(
        args.anomaly,
        duration_s=args.duration,
        workload=args.workload,
        seed=args.seed,
        normal_s=args.normal,
    )
    save_dataset_csv(dataset, args.out)
    region = spec.abnormal[0]
    print(f"wrote {dataset.n_rows} seconds of telemetry to {args.out}", file=out)
    print(f"injected cause: {cause}", file=out)
    print(f"abnormal region: {region.start:g}:{region.end:g}", file=out)
    return 0


def _cmd_detect(args, out) -> int:
    dataset = load_dataset_csv(args.csv)
    sherlock = DBSherlock()
    detection = sherlock.detect(dataset)
    if not detection.found:
        print("no abnormal region detected", file=out)
        return 1
    for region in detection.regions:
        print(f"abnormal region: {region.start:g}:{region.end:g}", file=out)
    print(
        f"({len(detection.selected_attributes)} attributes selected, "
        f"eps={detection.eps:.3f})",
        file=out,
    )
    return 0


def _sherlock(args) -> DBSherlock:
    rules = () if getattr(args, "no_rules", False) else MYSQL_LINUX_RULES
    return DBSherlock(config=GeneratorConfig(theta=args.theta), rules=rules)


def _cmd_explain(args, out) -> int:
    dataset = load_dataset_csv(args.csv)
    explanation = _sherlock(args).explain(dataset, _region_spec(args))
    if not explanation.predicates:
        print("no predicates found (try a lower --theta)", file=out)
        return 1
    for predicate in explanation.predicates:
        print(str(predicate), file=out)
    for predicate in explanation.pruned:
        print(f"(pruned secondary symptom: {predicate})", file=out)
    return 0


def _cmd_report(args, out) -> int:
    dataset = load_dataset_csv(args.csv)
    spec = _region_spec(args)
    explanation = _sherlock(args).explain(dataset, spec)
    print(incident_report(dataset, spec, explanation), file=out)
    return 0


def _cmd_plot(args, out) -> int:
    dataset = load_dataset_csv(args.csv)
    if args.attr not in dataset:
        print(f"unknown attribute {args.attr!r}", file=out)
        return 1
    print(plot_series(dataset, args.attr), file=out)
    return 0


def _cmd_causes(args, out) -> int:
    for key in ANOMALY_CAUSES:
        print(f"{key:22s} {make_anomaly(key).cause}", file=out)
    return 0


def _cmd_obs(args, out) -> int:
    if args.obs_command == "incidents":
        return _cmd_obs_incidents(args, out)
    return _cmd_obs_report(args, out)


def _cmd_obs_report(args, out) -> int:
    import json

    from repro.obs.report import render_report
    from repro.obs.trace import load_trace, validate_event

    events = load_trace(args.trace)
    if not events:
        print(f"no span events in {args.trace}", file=out)
        return 1
    for event in events:
        validate_event(event)
    snapshot = None
    if args.metrics is not None:
        with open(args.metrics) as fh:
            snapshot = json.load(fh)
    print(render_report(events, snapshot, max_spans=args.max_spans), file=out)
    return 0


def _cmd_obs_incidents(args, out) -> int:
    from repro.obs.incident import explain_bundle, list_bundles, load_bundle

    if args.incidents_command == "list":
        bundles = list_bundles(args.root)
        if not bundles:
            print(f"no incident bundles under {args.root}", file=out)
            return 1
        for bundle in bundles:
            manifest = load_bundle(bundle)["manifest"]
            print(
                f"{bundle}  tenant={manifest.get('tenant')} "
                f"round={manifest.get('round')} "
                f"reason={manifest.get('reason')!r}",
                file=out,
            )
        return 0

    if args.incidents_command == "show":
        bundle = load_bundle(args.bundle)
        manifest = bundle["manifest"]
        print(f"incident bundle {bundle['path']}", file=out)
        for key in ("tenant", "reason", "round", "seq", "version"):
            print(f"  {key}: {manifest.get(key)}", file=out)
        context = manifest.get("context") or {}
        for key in sorted(context):
            print(f"  context.{key}: {context[key]}", file=out)
        print(f"  window: {manifest.get('window')}", file=out)
        print(
            f"  retained: {manifest.get('spans')} spans, "
            f"{manifest.get('timeline_samples')} timeline samples, "
            f"{len(bundle['health'])} health records",
            file=out,
        )
        for tick in manifest.get("kept_ticks") or []:
            print(
                f"  kept tick round={tick.get('round')} "
                f"reasons={tick.get('reasons')}",
                file=out,
            )
        for record in bundle["health"][-5:]:
            print(
                f"  health {record.get('from')} -> {record.get('to')} "
                f"({record.get('reason')!r}, round {record.get('round')})",
                file=out,
            )
        return 0

    # explain: replay the bundle's metric timeline through DBSherlock.
    from repro.core.generator import GeneratorConfig
    from repro.core.explain import DBSherlock as _DBSherlock

    sherlock = _DBSherlock(config=GeneratorConfig(theta=args.theta))
    if args.models is not None:
        sherlock.load_models(args.models)
    try:
        explanation, dataset, spec = explain_bundle(
            args.bundle, sherlock=sherlock
        )
    except ValueError as exc:
        print(str(exc), file=out)
        return 1
    region = spec.abnormal[0]
    print(
        f"diagnosing {dataset.name} "
        f"(abnormal {region.start:g}:{region.end:g}, "
        f"{dataset.n_rows} rows)",
        file=out,
    )
    if explanation.causes:
        cause, confidence = explanation.causes[0]
        print(f"top cause: {cause} (confidence {confidence:.1f})", file=out)
        for cause, confidence in explanation.causes[1:5]:
            print(
                f"  runner-up: {cause} (confidence {confidence:.1f})",
                file=out,
            )
    else:
        print("top cause: (no causal models loaded)", file=out)
    if explanation.predicates:
        for predicate in explanation.predicates:
            print(str(predicate), file=out)
    else:
        print("no predicates found (try a lower --theta)", file=out)
    return 0


def _cmd_fleet(args, out) -> int:
    import json

    from repro.fleet.status import fleet_status_data, render_fleet_status

    if args.metrics is not None:
        with open(args.metrics) as fh:
            snapshot = json.load(fh)
    else:
        from repro.obs.metrics import REGISTRY

        snapshot = REGISTRY.snapshot()
    if getattr(args, "json", False):
        data = fleet_status_data(snapshot, max_tenants=args.max_tenants)
        print(json.dumps(data, indent=2, sort_keys=True), file=out)
        return 0
    print(render_fleet_status(snapshot, max_tenants=args.max_tenants),
          file=out)
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "detect": _cmd_detect,
    "explain": _cmd_explain,
    "report": _cmd_report,
    "plot": _cmd_plot,
    "causes": _cmd_causes,
    "obs": _cmd_obs,
    "fleet": _cmd_fleet,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
