"""Clustering substrate: a from-scratch DBSCAN used by anomaly detection."""

from repro.cluster.dbscan import DBSCAN, NOISE, k_distances

__all__ = ["DBSCAN", "NOISE", "k_distances"]
