"""DBSCAN (Ester et al., KDD 1996) implemented from scratch.

DBSherlock's automatic anomaly detector (Section 7) clusters normalized
telemetry points with DBSCAN, fixing ``minPts = 3`` and deriving ``ε`` from
the k-dist curve: ``ε = max(Lk) / 4`` where ``Lk`` lists each point's
distance to its k-th nearest neighbour.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

__all__ = ["DBSCAN", "NOISE", "k_distances"]

#: Cluster id assigned to noise points.
NOISE = -1


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (fine for the few-hundred-point runs)."""
    sq = np.sum(points * points, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def k_distances(points: np.ndarray, k: int) -> np.ndarray:
    """Distance from each point to its k-th nearest neighbour (k-dist list).

    ``k`` counts neighbours excluding the point itself, following the
    original DBSCAN paper's sorted k-dist graph heuristic.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if n == 0:
        return np.zeros(0)
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n - 1)
    if k == 0:
        return np.zeros(n)
    distances = _pairwise_distances(points)
    sorted_rows = np.sort(distances, axis=1)
    # Column 0 is the self-distance (0); the k-th neighbour is column k.
    return sorted_rows[:, k]


class DBSCAN:
    """Density-based clustering.

    Parameters
    ----------
    eps:
        Neighbourhood radius.  ``None`` derives ``ε = max(Lk)/4`` from the
        k-dist list at fit time (the DBSherlock heuristic).
    min_pts:
        Minimum neighbourhood size (including the point itself) for a core
        point.  DBSherlock fixes this to 3.
    """

    def __init__(self, eps: Optional[float] = None, min_pts: int = 3) -> None:
        if min_pts < 1:
            raise ValueError("min_pts must be at least 1")
        self.eps = eps
        self.min_pts = min_pts
        self.labels_: Optional[np.ndarray] = None
        self.eps_: Optional[float] = None

    def fit(self, points: np.ndarray) -> "DBSCAN":
        """Cluster *points*; labels land in ``labels_`` (NOISE = -1)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[:, None]
        n = points.shape[0]
        if n == 0:
            self.labels_ = np.zeros(0, dtype=np.int64)
            self.eps_ = self.eps or 0.0
            return self

        eps = self.eps
        if eps is None:
            kd = k_distances(points, self.min_pts)
            if kd.size:
                # DBSherlock's heuristic is ε = max(Lk)/4; when the k-dist
                # curve is flat that can land below the typical neighbour
                # distance and dissolve every cluster, so we floor ε at the
                # 95th percentile of Lk (keeping cluster-dense points core).
                eps = max(float(kd.max()) / 4.0, float(np.quantile(kd, 0.95)))
            else:
                eps = 0.0
        if eps <= 0:
            # Degenerate geometry (all points identical): one cluster.
            self.labels_ = np.zeros(n, dtype=np.int64)
            self.eps_ = eps
            return self
        self.eps_ = eps

        distances = _pairwise_distances(points)
        neighbours: List[np.ndarray] = [
            np.flatnonzero(distances[i] <= eps) for i in range(n)
        ]
        labels = np.full(n, NOISE, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        cluster_id = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            if neighbours[i].size < self.min_pts:
                continue  # stays noise unless captured as a border point
            labels[i] = cluster_id
            queue = deque(neighbours[i])
            while queue:
                j = queue.popleft()
                if labels[j] == NOISE:
                    labels[j] = cluster_id  # border point
                if visited[j]:
                    continue
                visited[j] = True
                labels[j] = cluster_id
                if neighbours[j].size >= self.min_pts:
                    queue.extend(neighbours[j])
            cluster_id += 1
        self.labels_ = labels
        return self

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Fit and return the label array."""
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    def cluster_sizes(self) -> dict:
        """Mapping of cluster id → size (noise excluded)."""
        if self.labels_ is None:
            raise RuntimeError("fit() has not been called")
        sizes = {}
        for label in self.labels_:
            if label == NOISE:
                continue
            sizes[int(label)] = sizes.get(int(label), 0) + 1
        return sizes
