"""DBSCAN (Ester et al., KDD 1996) implemented from scratch.

DBSherlock's automatic anomaly detector (Section 7) clusters normalized
telemetry points with DBSCAN, fixing ``minPts = 3`` and deriving ``ε`` from
the k-dist curve: ``ε = max(Lk) / 4`` where ``Lk`` lists each point's
distance to its k-th nearest neighbour.

The fit path is built for the streaming engine's always-on re-clustering:

* ``k_distances`` evaluates the distance matrix in row chunks (no dense
  O(n²) materialization) and extracts the k-th column with
  ``np.partition``;
* neighbourhoods come from a uniform-grid index with cell size ε over the
  highest-spread dimensions — each cell's points are compared only against
  the 3^g adjacent cells, block by block;
* cluster expansion is a vectorized BFS: the whole frontier is labeled,
  visited, and expanded with array operations instead of a per-point
  ``deque`` walk.

The dense path is kept (``index="dense"``) as the equivalence baseline;
``index="auto"`` switches to the grid above ``_GRID_MIN_POINTS`` points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics

__all__ = ["DBSCAN", "NOISE", "dbscan_labels_batch", "k_distances"]

_GRID_FITS = metrics.REGISTRY.counter(
    "repro_dbscan_grid_fits_total", "DBSCAN fits served by the grid index"
)
_DENSE_FITS = metrics.REGISTRY.counter(
    "repro_dbscan_dense_fits_total",
    "DBSCAN fits served by the dense distance matrix",
)
_LAST_CLUSTERS = metrics.REGISTRY.gauge(
    "repro_dbscan_last_clusters", "Clusters found by the most recent fit"
)
_BATCH_FITS = metrics.REGISTRY.counter(
    "repro_dbscan_batch_fits_total",
    "DBSCAN fits served by the batched multi-set path",
)

#: Cluster id assigned to noise points.
NOISE = -1

#: Row-chunk size for blocked distance evaluation (bounds peak memory at
#: ``chunk × n`` floats instead of ``n × n``).
DEFAULT_CHUNK = 2048

#: Below this the grid bookkeeping costs more than the dense matrix.
_GRID_MIN_POINTS = 64

#: The grid bins on at most this many dimensions — in high-dimensional
#: telemetry 3^d adjacent cells is intractable, and binning on the
#: widest-spread axes already prunes most candidate pairs (any true
#: ε-neighbour is within ε along every axis, so adjacent cells along the
#: projection are a superset of the true neighbourhood).
_GRID_MAX_DIMS = 3


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (fine for the few-hundred-point runs)."""
    sq = np.sum(points * points, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def k_distances(
    points: np.ndarray, k: int, chunk_size: int = DEFAULT_CHUNK
) -> np.ndarray:
    """Distance from each point to its k-th nearest neighbour (k-dist list).

    ``k`` counts neighbours excluding the point itself, following the
    original DBSCAN paper's sorted k-dist graph heuristic.  Distances are
    evaluated ``chunk_size`` rows at a time and the k-th order statistic
    taken with ``np.partition``, so peak memory is O(chunk × n).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if n == 0:
        return np.zeros(0)
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n - 1)
    if k == 0:
        return np.zeros(n)
    sq = np.sum(points * points, axis=1)
    out = np.empty(n)
    for start in range(0, n, max(int(chunk_size), 1)):
        stop = min(start + max(int(chunk_size), 1), n)
        d2 = sq[start:stop, None] + sq[None, :] - 2.0 * points[start:stop] @ points.T
        np.maximum(d2, 0.0, out=d2)
        rows = np.sqrt(d2)
        # Column 0 of the sorted row is the self-distance (0); the k-th
        # neighbour is order statistic k, which partition finds directly.
        out[start:stop] = np.partition(rows, k, axis=1)[:, k]
    return out


def _grid_neighbours(
    points: np.ndarray, eps: float
) -> List[np.ndarray]:
    """ε-neighbour lists via uniform-grid binning + blocked distances.

    Points are binned into cells of side ε along the (at most
    ``_GRID_MAX_DIMS``) widest-spread dimensions; each cell block is
    compared against the union of its 3^g adjacent cells in one small
    matrix product.  Neighbour lists come back in ascending index order,
    matching the dense ``np.flatnonzero`` path.
    """
    n, d = points.shape
    spans = points.max(axis=0) - points.min(axis=0)
    order = np.argsort(-spans, kind="stable")
    dims = order[: min(d, _GRID_MAX_DIMS)]
    proj = points[:, dims]
    mins = proj.min(axis=0)
    coords = np.floor((proj - mins) / eps).astype(np.int64)

    cells: Dict[Tuple[int, ...], List[int]] = {}
    for i, key in enumerate(map(tuple, coords)):
        cells.setdefault(key, []).append(i)
    cell_index = {key: np.asarray(idx, dtype=np.int64) for key, idx in cells.items()}

    g = len(dims)
    offsets = np.stack(
        np.meshgrid(*([np.arange(-1, 2)] * g), indexing="ij"), axis=-1
    ).reshape(-1, g)

    sq = np.sum(points * points, axis=1)
    neighbours: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    for key, members in cell_index.items():
        cand_blocks = []
        base = np.asarray(key, dtype=np.int64)
        for off in offsets:
            block = cell_index.get(tuple(base + off))
            if block is not None:
                cand_blocks.append(block)
        cand = np.sort(np.concatenate(cand_blocks))
        d2 = (
            sq[members][:, None]
            + sq[cand][None, :]
            - 2.0 * points[members] @ points[cand].T
        )
        np.maximum(d2, 0.0, out=d2)
        within = np.sqrt(d2) <= eps
        for row, i in enumerate(members):
            neighbours[i] = cand[within[row]]
    return neighbours


def _dense_neighbours(points: np.ndarray, eps: float) -> List[np.ndarray]:
    distances = _pairwise_distances(points)
    return [np.flatnonzero(distances[i] <= eps) for i in range(points.shape[0])]


class DBSCAN:
    """Density-based clustering.

    Parameters
    ----------
    eps:
        Neighbourhood radius.  ``None`` derives ``ε = max(Lk)/4`` from the
        k-dist list at fit time (the DBSherlock heuristic).
    min_pts:
        Minimum neighbourhood size (including the point itself) for a core
        point.  DBSherlock fixes this to 3.
    index:
        Neighbour-search backend: ``"grid"`` (uniform-grid binning),
        ``"dense"`` (full distance matrix), or ``"auto"`` (grid once the
        input outgrows the dense crossover).  Both backends produce the
        same neighbour sets; the grid is the production path for the
        streaming detector's per-tick re-clustering.
    """

    def __init__(
        self,
        eps: Optional[float] = None,
        min_pts: int = 3,
        index: str = "auto",
    ) -> None:
        if min_pts < 1:
            raise ValueError("min_pts must be at least 1")
        if index not in ("auto", "grid", "dense"):
            raise ValueError("index must be 'auto', 'grid', or 'dense'")
        self.eps = eps
        self.min_pts = min_pts
        self.index = index
        self.labels_: Optional[np.ndarray] = None
        self.eps_: Optional[float] = None

    def _neighbour_lists(
        self, points: np.ndarray, eps: float
    ) -> List[np.ndarray]:
        use_grid = self.index == "grid" or (
            self.index == "auto" and points.shape[0] >= _GRID_MIN_POINTS
        )
        if use_grid:
            _GRID_FITS.inc()
            return _grid_neighbours(points, eps)
        _DENSE_FITS.inc()
        return _dense_neighbours(points, eps)

    def fit(self, points: np.ndarray) -> "DBSCAN":
        """Cluster *points*; labels land in ``labels_`` (NOISE = -1)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[:, None]
        n = points.shape[0]
        if n == 0:
            self.labels_ = np.zeros(0, dtype=np.int64)
            self.eps_ = self.eps or 0.0
            return self

        eps = self.eps
        if eps is None:
            kd = k_distances(points, self.min_pts)
            if kd.size:
                # DBSherlock's heuristic is ε = max(Lk)/4; when the k-dist
                # curve is flat that can land below the typical neighbour
                # distance and dissolve every cluster, so we floor ε at the
                # 95th percentile of Lk (keeping cluster-dense points core).
                eps = max(float(kd.max()) / 4.0, float(np.quantile(kd, 0.95)))
            else:
                eps = 0.0
        if eps <= 0:
            # Degenerate geometry (all points identical): one cluster.
            self.labels_ = np.zeros(n, dtype=np.int64)
            self.eps_ = eps
            return self
        self.eps_ = eps

        neighbours = self._neighbour_lists(points, eps)
        counts = np.asarray([nb.size for nb in neighbours], dtype=np.int64)
        labels = np.full(n, NOISE, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        cluster_id = 0
        for i in range(n):
            if visited[i]:
                continue
            visited[i] = True
            if counts[i] < self.min_pts:
                continue  # stays noise unless captured as a border point
            labels[i] = cluster_id
            frontier = neighbours[i]
            while frontier.size:
                # Label every still-noise frontier point (core or border).
                # A point already owned by an earlier cluster keeps its
                # label — border points belong to the first cluster that
                # reaches them.
                unclaimed = frontier[labels[frontier] == NOISE]
                labels[unclaimed] = cluster_id
                fresh = frontier[~visited[frontier]]
                visited[fresh] = True
                cores = fresh[counts[fresh] >= self.min_pts]
                if cores.size:
                    frontier = np.unique(
                        np.concatenate([neighbours[c] for c in cores])
                    )
                else:
                    break
            cluster_id += 1
        self.labels_ = labels
        _LAST_CLUSTERS.set(cluster_id)
        return self

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Fit and return the label array."""
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    def cluster_sizes(self) -> dict:
        """Mapping of cluster id → size (noise excluded)."""
        if self.labels_ is None:
            raise RuntimeError("fit() has not been called")
        members = self.labels_[self.labels_ != NOISE]
        ids, counts = np.unique(members, return_counts=True)
        return {int(i): int(c) for i, c in zip(ids, counts)}


#: Element budget for one batched ``(block, n, n)`` distance stack —
#: bounds peak memory the same way ``DEFAULT_CHUNK`` bounds the serial
#: k-dist evaluation.
_BATCH_ELEMENT_BUDGET = 4_000_000


def _component_labels(
    within: np.ndarray, core: np.ndarray
) -> np.ndarray:
    """Serial-equal cluster labels from a ``(B, n, n)`` neighbour stack.

    The serial BFS numbers components by the smallest core index that
    starts them (the ascending outer loop reaches every component first
    at its minimal core point) and gives border points to the
    lowest-numbered cluster owning a core neighbour.  Both rules reduce
    to pure array ops: propagate the minimum core index over core-core
    adjacency until fixpoint (with pointer jumping, so long chains
    converge in O(log n) sweeps), rank the surviving component roots in
    ascending order, and label every point by the rank of the smallest
    root among its core neighbours (a core point's own root for cores;
    first-cluster-wins for borders).
    """
    b, n, _ = within.shape
    sentinel = n
    # int32 indices: the propagation sweeps are memory-bound on the
    # (B, n, n) where/min temporaries, and window counts never approach
    # 2**31 — halving the element width halves the traffic.  The final
    # labels are still produced from an int64 rank table.
    idx = np.arange(n, dtype=np.int32)
    labels_like = np.where(core, idx[None, :], np.int32(sentinel))
    adjacency = within & core[:, :, None] & core[:, None, :]
    current = labels_like
    while True:
        candidate = np.where(
            adjacency, current[:, None, :], np.int32(sentinel)
        ).min(axis=2)
        nxt = np.minimum(current, candidate)
        hop = np.take_along_axis(nxt, np.minimum(nxt, n - 1), axis=1)
        nxt = np.where(nxt < sentinel, np.minimum(nxt, hop), np.int32(sentinel))
        if np.array_equal(nxt, current):
            break
        current = nxt
    roots = current  # min core index of the component; sentinel for non-core
    present = np.zeros((b, n + 1), dtype=bool)
    np.put_along_axis(present, roots, True, axis=1)
    present[:, n] = False
    rank = np.cumsum(present, axis=1).astype(np.int64) - 1
    rank = np.concatenate([rank, np.full((b, 1), NOISE, dtype=np.int64)], axis=1)
    # Min component root over core neighbours (self included for cores);
    # sentinel rows (no core neighbour at all) index the NOISE column.
    neighbour_root = np.where(
        within & core[:, None, :], roots[:, None, :], np.int32(sentinel)
    ).min(axis=2)
    lookup = np.where(neighbour_root < sentinel, neighbour_root, n + 1)
    return np.take_along_axis(rank, lookup, axis=1)


def dbscan_labels_batch(
    points: np.ndarray, min_pts: int = 3
) -> tuple:
    """DBSCAN over a stack of point sets in a handful of numpy passes.

    *points* is ``(n_sets, n_rows, n_dims)``; every set is clustered with
    the DBSherlock ε heuristic exactly as ``DBSCAN(eps=None,
    min_pts=min_pts).fit_predict(points[i])`` would — the k-dist
    extraction, ε derivation, core test, component numbering, and border
    ownership are all the same arithmetic, just evaluated across the
    leading axis — so the returned ``(labels, eps)`` pair is
    bitwise-identical to the serial loop (asserted by the equivalence
    tests).  Sets are processed in blocks sized to the same element
    budget the serial chunked path uses.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if points.ndim != 3:
        raise ValueError("points must be (n_sets, n_rows, n_dims)")
    if min_pts < 1:
        raise ValueError("min_pts must be at least 1")
    n_sets, n, _d = points.shape
    labels = np.zeros((n_sets, n), dtype=np.int64)
    eps_out = np.zeros(n_sets)
    if n_sets == 0 or n == 0:
        return labels, eps_out
    _BATCH_FITS.inc(n_sets)
    k = min(min_pts, n - 1)
    block_size = max(1, _BATCH_ELEMENT_BUDGET // (n * n))
    for start in range(0, n_sets, block_size):
        stop = min(start + block_size, n_sets)
        block = points[start:stop]
        sq = np.sum(block * block, axis=2)
        # NB: the serial paths spell this ``... - 2.0 * points @ points.T``,
        # which binds as ``(2.0 * points) @ points.T`` — the doubling
        # happens *before* the matrix product.  Reproduce that exactly,
        # ulp for ulp.
        d2 = sq[:, :, None] + sq[:, None, :] - np.matmul(
            2.0 * block, block.transpose(0, 2, 1)
        )
        np.maximum(d2, 0.0, out=d2)
        dist = np.sqrt(d2)
        if k == 0:
            kd = np.zeros((stop - start, n))
        else:
            kd = np.partition(dist, k, axis=2)[:, :, k]
        eps = np.maximum(
            kd.max(axis=1) / 4.0, np.quantile(kd, 0.95, axis=1)
        )
        eps_out[start:stop] = eps
        active = eps > 0
        if not bool(active.any()):
            continue  # degenerate lanes keep their all-zeros labels
        within = dist <= eps[:, None, None]
        counts = within.sum(axis=2)
        core = (counts >= min_pts) & active[:, None]
        block_labels = _component_labels(within, core)
        block_labels[~active] = 0
        labels[start:stop] = block_labels
    _LAST_CLUSTERS.set(int((labels[-1].max() + 1) if n else 0))
    return labels, eps_out
