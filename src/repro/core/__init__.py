"""DBSherlock's core contribution: predicate-based anomaly explanation.

Modules
-------
``partition``   equi-width partition spaces and labeling (Sections 4.1-4.2)
``filtering``   partition filtering and gap filling (Sections 4.3-4.4)
``predicates``  predicate types, evaluation, and merging (Sections 3, 6.2)
``separation``  separation power and normalization (Equations 1-2)
``generator``   Algorithm 1 end to end (Section 4)
``knowledge``   domain-knowledge pruning of secondary symptoms (Section 5)
``causal``      causal models, confidence, merging (Section 6)
``anomaly``     automatic anomaly detection (Section 7)
``explain``     the ``DBSherlock`` facade tying everything together
"""

from repro.core.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericPredicate,
    Predicate,
)
from repro.core.partition import (
    Label,
    CategoricalPartitionSpace,
    NumericPartitionSpace,
)
from repro.core.separation import normalized_difference, separation_power
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.knowledge import (
    DomainRule,
    MYSQL_LINUX_RULES,
    independence_factor,
    mutual_information,
    prune_secondary_symptoms,
)
from repro.core.causal import CausalModel, CausalModelStore
from repro.core.anomaly import AnomalyDetector, potential_power
from repro.core.explain import DBSherlock, Explanation

__all__ = [
    "Predicate",
    "NumericPredicate",
    "CategoricalPredicate",
    "Conjunction",
    "Label",
    "NumericPartitionSpace",
    "CategoricalPartitionSpace",
    "separation_power",
    "normalized_difference",
    "GeneratorConfig",
    "PredicateGenerator",
    "DomainRule",
    "MYSQL_LINUX_RULES",
    "mutual_information",
    "independence_factor",
    "prune_secondary_symptoms",
    "CausalModel",
    "CausalModelStore",
    "AnomalyDetector",
    "potential_power",
    "DBSherlock",
    "Explanation",
]
