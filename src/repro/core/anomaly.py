"""Automatic anomaly detection (Section 7).

The detector (i) normalizes each numeric attribute to [0, 1], (ii) selects
attributes whose *potential power* — the largest absolute gap between the
overall median and a sliding-window median (Equation 4) — exceeds ``PPt``,
(iii) clusters the selected attribute vectors with DBSCAN (minPts = 3,
ε = max(Lk)/4), and (iv) flags points in clusters smaller than 20 % of the
data as abnormal, under the assumption that anomalies are rare.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.dbscan import DBSCAN, NOISE
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec

__all__ = [
    "potential_power",
    "impute_missing",
    "AnomalyDetector",
    "mask_to_regions",
    "mask_runs_batch",
    "smooth_masks_batch",
]

DEFAULT_WINDOW = 20
DEFAULT_PP_THRESHOLD = 0.3
DEFAULT_CLUSTER_FRACTION = 0.2


def potential_power(values: np.ndarray, window: int = DEFAULT_WINDOW) -> float:
    """Equation 4: max over sliding windows of |median − window median|.

    *values* should already be normalized to [0, 1] so the result is
    comparable across attributes; windows longer than the series degrade to
    a single whole-series window (power 0).

    All window medians are taken in one ``sliding_window_view`` +
    ``np.median(axis=1)`` pass; per-window values are identical to the
    per-slice medians the seed loop computed (same elements, same
    median), so the result is bitwise-unchanged.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return 0.0
    window = max(min(int(window), n), 1)
    windows = np.lib.stride_tricks.sliding_window_view(values, window)
    if np.isnan(values).any():
        # degraded telemetry: medians over valid samples only; an
        # attribute (or window) with no valid samples has zero power.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            overall = np.nanmedian(values)
            locals_ = np.nanmedian(windows, axis=1)
            power = np.nanmax(np.abs(overall - locals_))
        return float(power) if np.isfinite(power) else 0.0
    overall = float(np.median(values))
    locals_ = np.median(windows, axis=1)
    return float(np.max(np.abs(overall - locals_)))


def impute_missing(matrix: np.ndarray) -> np.ndarray:
    """Replace NaN cells with their column's valid median (0.5 if none).

    Used before distance-based stages (DBSCAN) that cannot tolerate NaN;
    returns the input untouched when it is already clean.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    nan = np.isnan(matrix)
    if not nan.any():
        return matrix
    out = matrix.copy()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        fill = np.nanmedian(out, axis=0)
    fill = np.nan_to_num(fill, nan=0.5)
    cols = np.nonzero(nan)[1]
    out[nan] = fill[cols]
    return out


def mask_to_regions(timestamps: np.ndarray, mask: np.ndarray) -> List[Region]:
    """Convert a boolean row mask into contiguous time regions.

    Run boundaries come from one ``np.flatnonzero(np.diff(...))`` edge
    detection over the padded mask instead of a per-row Python loop.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0 or not mask.any():
        return []
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    starts = edges[0::2]
    ends = edges[1::2] - 1  # last flagged row of each run
    return [
        Region(float(timestamps[s]), float(timestamps[e]))
        for s, e in zip(starts, ends)
    ]


def mask_runs_batch(masks: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run boundaries for a stack of boolean row masks at once.

    *masks* is ``(n_lanes, n_rows)``; returns ``(lanes, starts, ends)``
    index arrays where the k-th entry describes one contiguous True run
    (``ends`` inclusive).  ``np.nonzero``'s row-major order pairs each
    lane's k-th rising edge with its k-th falling edge, so per lane the
    runs come back exactly as :func:`mask_to_regions` would emit them.
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError("masks must be (n_lanes, n_rows)")
    n_lanes, n = masks.shape
    if n_lanes == 0 or n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    padded = np.zeros((n_lanes, n + 2), dtype=np.int8)
    padded[:, 1:-1] = masks
    edges = np.diff(padded, axis=1)
    lanes, starts = np.nonzero(edges == 1)
    ends = np.nonzero(edges == -1)[1] - 1
    return lanes, starts, ends


def smooth_masks_batch(
    masks: np.ndarray,
    timestamps: np.ndarray,
    gap_fill_s: float,
    min_region_s: float,
) -> np.ndarray:
    """:meth:`AnomalyDetector._smooth_mask` for many lanes at once.

    *masks* and *timestamps* are ``(n_lanes, n_rows)``; timestamps must
    be strictly increasing per lane (callers fall back to the serial
    path otherwise), so a region's member rows are exactly its index
    span.  Each pass snapshots its run boundaries before mutating, the
    same order of operations as the serial loops, and every float
    comparison is the identical ``duration + 1.0 <= threshold``
    expression — lane ``i`` of the result is bitwise-identical to the
    serial smoothing of ``masks[i]``.
    """
    masks = np.asarray(masks, dtype=bool).copy()
    n_lanes, n = masks.shape
    if n_lanes == 0 or n == 0:
        return masks
    ts = np.asarray(timestamps, dtype=np.float64)
    first = ts[:, 0]
    last = ts[:, -1]

    # pass 1: bridge short interior gaps inside a flagged window
    lanes, starts, ends = mask_runs_batch(~masks)
    if lanes.size:
        start_t = ts[lanes, starts]
        end_t = ts[lanes, ends]
        interior = (start_t > first[lanes]) & (end_t < last[lanes])
        fill = interior & ((end_t - start_t) + 1.0 <= gap_fill_s)
        if bool(fill.any()):
            delta = np.zeros((n_lanes, n + 1), dtype=np.int32)
            np.add.at(delta, (lanes[fill], starts[fill]), 1)
            np.add.at(delta, (lanes[fill], ends[fill] + 1), -1)
            masks |= np.cumsum(delta[:, :n], axis=1) > 0

    # pass 2: drop flagged runs too short to be a sustained anomaly
    lanes, starts, ends = mask_runs_batch(masks)
    if lanes.size:
        drop = (ts[lanes, ends] - ts[lanes, starts]) + 1.0 <= min_region_s
        if bool(drop.any()):
            delta = np.zeros((n_lanes, n + 1), dtype=np.int32)
            np.add.at(delta, (lanes[drop], starts[drop]), 1)
            np.add.at(delta, (lanes[drop], ends[drop] + 1), -1)
            masks &= ~(np.cumsum(delta[:, :n], axis=1) > 0)
    return masks


@dataclass
class DetectionResult:
    """Outcome of automatic detection."""

    mask: np.ndarray
    regions: List[Region]
    selected_attributes: List[str]
    eps: float

    def to_region_spec(self) -> RegionSpec:
        """The detected abnormal regions as a user-style region spec."""
        return RegionSpec(abnormal=list(self.regions), normal=None)

    @property
    def found(self) -> bool:
        """True when at least one abnormal region was detected."""
        return bool(self.regions)


class AnomalyDetector:
    """DBSCAN-based automatic anomaly detection (Section 7 defaults)."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        pp_threshold: float = DEFAULT_PP_THRESHOLD,
        min_pts: int = 3,
        cluster_fraction: float = DEFAULT_CLUSTER_FRACTION,
        include_noise: bool = True,
        min_region_s: float = 5.0,
        gap_fill_s: float = 3.0,
    ) -> None:
        self.window = window
        self.pp_threshold = pp_threshold
        self.min_pts = min_pts
        self.cluster_fraction = cluster_fraction
        # DBSCAN noise points are density outliers — in high-dimensional
        # telemetry the anomalous seconds often land there rather than in
        # a cluster of their own, so they count as abnormal candidates.
        self.include_noise = include_noise
        # temporal smoothing: anomalies are sustained windows, so flagged
        # slivers shorter than min_region_s are discarded and unflagged
        # gaps shorter than gap_fill_s inside a window are bridged.
        self.min_region_s = min_region_s
        self.gap_fill_s = gap_fill_s

    def select_attributes(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> List[str]:
        """Numeric attributes whose potential power exceeds the threshold.

        All candidate columns are normalized, stacked, and scored in one
        :func:`repro.perf.batch.potential_power_batch` call.
        """
        from repro.perf.batch import potential_power_batch

        names = (
            [a for a in attributes if dataset.is_numeric(a)]
            if attributes is not None
            else dataset.numeric_attributes
        )
        if not names or dataset.n_rows == 0:
            return []
        matrix = np.stack(
            [normalize_values(dataset.column(a)) for a in names]
        )
        powers = potential_power_batch(matrix, self.window)
        return [a for a, p in zip(names, powers) if p > self.pp_threshold]

    def detect(
        self, dataset: Dataset, attributes: Optional[Sequence[str]] = None
    ) -> DetectionResult:
        """Run the full detection pipeline on *dataset*."""
        selected = self.select_attributes(dataset, attributes)
        n = dataset.n_rows
        if not selected or n == 0:
            return DetectionResult(
                mask=np.zeros(n, dtype=bool),
                regions=[],
                selected_attributes=[],
                eps=0.0,
            )
        matrix = impute_missing(
            np.column_stack(
                [normalize_values(dataset.column(a)) for a in selected]
            )
        )
        return self._cluster_and_mask(matrix, dataset.timestamps, selected)

    def _cluster_and_mask(
        self,
        matrix: np.ndarray,
        timestamps: np.ndarray,
        selected: List[str],
    ) -> DetectionResult:
        """Cluster the normalized attribute matrix and build the result.

        Shared verbatim by :class:`repro.stream.StreamingDetector`, which
        swaps only the attribute-selection stage for its incremental
        Equation 4 trackers — everything downstream of selection runs
        through this single code path, so batch and streaming results can
        only diverge at selection.
        """
        n = matrix.shape[0]
        clusterer = DBSCAN(eps=None, min_pts=self.min_pts)
        labels = clusterer.fit_predict(matrix)
        sizes = clusterer.cluster_sizes()
        threshold = self.cluster_fraction * n
        abnormal_clusters = {cid for cid, size in sizes.items() if size < threshold}
        mask = np.isin(labels, sorted(abnormal_clusters))
        if self.include_noise:
            mask |= labels == NOISE
        mask = self._smooth_mask(mask, timestamps)
        return DetectionResult(
            mask=mask,
            regions=mask_to_regions(timestamps, mask),
            selected_attributes=selected,
            eps=float(clusterer.eps_ or 0.0),
        )

    def _smooth_mask(
        self, mask: np.ndarray, timestamps: np.ndarray
    ) -> np.ndarray:
        """Bridge short unflagged gaps, then drop sub-threshold slivers."""
        smoothed = mask.copy()
        # pass 1: bridge short interior gaps inside a flagged window
        for gap in mask_to_regions(timestamps, ~smoothed):
            is_interior = (
                gap.start > timestamps[0] and gap.end < timestamps[-1]
            )
            if is_interior and gap.duration + 1.0 <= self.gap_fill_s:
                smoothed[gap.contains(timestamps)] = True
        # pass 2: drop flagged runs too short to be a sustained anomaly
        for run in mask_to_regions(timestamps, smoothed):
            if run.duration + 1.0 <= self.min_region_s:
                smoothed[run.contains(timestamps)] = False
        return smoothed
