"""Causal models: DBA feedback turned into reusable diagnoses (Section 6).

A causal model pairs a *cause variable* (the DBA's label, e.g. "Log
Rotation") with *effect predicates* (the accepted explanation).  For a new
anomaly, the model's **confidence** (Equation 3) is the average separation
power of its effect predicates measured in the partition space — partitions
rather than raw tuples, to damp real-world noise.  Models sharing a cause
**merge** (Section 6.2): only attributes common to both survive, and the
per-attribute predicates widen to cover both instances.

Models additionally carry per-attribute **fingerprints**
(:class:`~repro.schema.fingerprint.AttributeFingerprint`) captured from
the training data, so diagnosis survives collector schema drift: ranking
through a :class:`~repro.schema.reconcile.SchemaReconciler` matches the
test data's attributes back to the model vocabulary, missing attributes
contribute zero confidence (an implicit coverage penalty — Equation 3
averages over *all* of a model's predicates), and a model whose coverage
falls below a floor abstains instead of scoring garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.filtering import filter_partitions
from repro.core.partition import (
    CategoricalPartitionSpace,
    Label,
    NumericPartitionSpace,
)
from repro.core.predicates import (
    CategoricalPredicate,
    Conjunction,
    InconsistentPredicates,
    NumericPredicate,
    Predicate,
)
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.schema.fingerprint import AttributeFingerprint

__all__ = ["CausalModel", "CausalModelStore", "model_confidence"]

DEFAULT_CONFIDENCE_PARTITIONS = 250


def _predicate_on_partitions(
    predicate: Predicate,
    dataset: Dataset,
    abnormal: np.ndarray,
    normal: np.ndarray,
    n_partitions: int,
    apply_filtering: bool,
    entry: Optional[object] = None,
) -> Optional[float]:
    """Separation power of one predicate in the partition space (Eq. 3 term).

    Region masks are computed once by the caller; *entry* optionally
    supplies a cached labeled space (see
    :class:`repro.perf.cache.LabeledSpaceCache`).  Returns ``None`` when
    the attribute is missing or either region has no labeled partitions
    (the predicate then contributes zero confidence).
    """
    attr = predicate.attr
    if attr not in dataset:
        return None
    if entry is not None:
        # Fast path: evaluate only on the cached Abnormal/Normal partition
        # representatives — the counts (hence the ratios) are identical to
        # masking a full-space evaluation.
        regions = entry.region_partitions(apply_filtering)
        if regions is None:
            return None
        reps_abnormal, reps_normal, n_abnormal, n_normal = regions
        ratio_abnormal = (
            float(np.count_nonzero(predicate.evaluate_values(reps_abnormal)))
            / n_abnormal
        )
        ratio_normal = (
            float(np.count_nonzero(predicate.evaluate_values(reps_normal)))
            / n_normal
        )
        return ratio_abnormal - ratio_normal
    else:
        values = dataset.column(attr)
        if dataset.is_numeric(attr):
            space = NumericPartitionSpace(attr, values, n_partitions)
            labels = space.label(values, abnormal, normal)
            if apply_filtering:
                labels = filter_partitions(labels)
            satisfied = predicate.evaluate_values(space.midpoints())
        else:
            space = CategoricalPartitionSpace(attr, values)
            labels = space.label(values, abnormal, normal)
            satisfied = predicate.evaluate_values(
                np.asarray(space.categories, dtype=object)
            )
    abnormal_parts = labels == int(Label.ABNORMAL)
    normal_parts = labels == int(Label.NORMAL)
    n_abnormal = int(abnormal_parts.sum())
    n_normal = int(normal_parts.sum())
    if n_abnormal == 0 or n_normal == 0:
        return None
    ratio_abnormal = float((satisfied & abnormal_parts).sum()) / n_abnormal
    ratio_normal = float((satisfied & normal_parts).sum()) / n_normal
    return ratio_abnormal - ratio_normal


def model_confidence(
    predicates: Sequence[Predicate],
    dataset: Dataset,
    spec: RegionSpec,
    n_partitions: int = DEFAULT_CONFIDENCE_PARTITIONS,
    apply_filtering: bool = True,
    cache: Optional[object] = None,
) -> float:
    """Equation 3: mean partition-space separation power of *predicates*.

    The region masks are computed once for the whole model (not per
    predicate); passing a :class:`repro.perf.cache.LabeledSpaceCache`
    additionally shares each attribute's labeled partition space across
    predicates, models, and repeated rankings of the same anomaly.
    """
    if not predicates:
        return 0.0
    if cache is not None:
        abnormal, normal = cache.masks(dataset, spec)
    else:
        abnormal = spec.abnormal_mask(dataset)
        normal = spec.normal_mask(dataset)
    entries: Dict[str, object] = {}
    if cache is not None:
        present = [p.attr for p in predicates if p.attr in dataset]
        if present:
            # one bulk fetch (single key prefix, batched hit counters)
            # instead of a per-predicate entry() round-trip
            entries = cache.entries(dataset, spec, present, n_partitions)
    total = 0.0
    for predicate in predicates:
        power = _predicate_on_partitions(
            predicate, dataset, abnormal, normal, n_partitions,
            apply_filtering, entries.get(predicate.attr),
        )
        total += power if power is not None else 0.0
    return total / len(predicates)


@dataclass
class CausalModel:
    """A cause variable with its effect predicates.

    Parameters
    ----------
    cause:
        Human-readable root-cause label supplied by the DBA.
    predicates:
        Effect predicates accepted as the explanation for this cause.
    n_merged:
        How many diagnosed datasets contributed to this model (1 for a
        freshly created model; grows via :meth:`merge`).
    """

    cause: str
    predicates: List[Predicate] = field(default_factory=list)
    n_merged: int = 1
    #: per-attribute distributional identities captured at training time
    #: (may be empty for legacy models; reconciliation then falls back to
    #: name-only matching).
    fingerprints: Dict[str, "AttributeFingerprint"] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        attrs = [p.attr for p in self.predicates]
        if len(attrs) != len(set(attrs)):
            raise ValueError("causal model has duplicate predicate attributes")

    @property
    def attributes(self) -> List[str]:
        """Attributes the effect predicates constrain."""
        return [p.attr for p in self.predicates]

    def confidence(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        n_partitions: int = DEFAULT_CONFIDENCE_PARTITIONS,
        apply_filtering: bool = True,
        cache: Optional[object] = None,
    ) -> float:
        """Fitness of this model for the given anomaly (Equation 3)."""
        return model_confidence(
            self.predicates, dataset, spec, n_partitions, apply_filtering,
            cache=cache,
        )

    def merge(self, other: "CausalModel") -> "CausalModel":
        """Merge with another model of the same cause (Section 6.2).

        Keeps only predicates on attributes common to both models, widening
        each pair to cover both; attribute pairs with inconsistent numeric
        directions are discarded.
        """
        if other.cause != self.cause:
            raise ValueError(
                f"cannot merge causes {self.cause!r} and {other.cause!r}"
            )
        mine = {p.attr: p for p in self.predicates}
        theirs = {p.attr: p for p in other.predicates}
        merged: List[Predicate] = []
        for attr in mine:
            if attr not in theirs:
                continue
            a, b = mine[attr], theirs[attr]
            if isinstance(a, NumericPredicate) != isinstance(b, NumericPredicate):
                continue
            try:
                merged.append(a.merge(b))  # type: ignore[arg-type]
            except InconsistentPredicates:
                continue
        fingerprints: Dict[str, AttributeFingerprint] = {}
        for predicate in merged:
            fp_a = self.fingerprints.get(predicate.attr)
            fp_b = other.fingerprints.get(predicate.attr)
            if fp_a is not None and fp_b is not None:
                fingerprints[predicate.attr] = fp_a.merged(fp_b)
            elif fp_a is not None or fp_b is not None:
                fingerprints[predicate.attr] = fp_a or fp_b  # type: ignore[assignment]
        return CausalModel(
            cause=self.cause,
            predicates=merged,
            n_merged=self.n_merged + other.n_merged,
            fingerprints=fingerprints,
        )

    def conjunction(self) -> Conjunction:
        """The effect predicates as an evaluable conjunction."""
        return Conjunction(self.predicates)

    def __str__(self) -> str:
        preds = " ∧ ".join(str(p) for p in self.predicates) or "(no predicates)"
        return f"[{self.cause}] {preds}"


class CausalModelStore:
    """The system's accumulated causal models, keyed by cause.

    Adding a model whose cause already exists merges it into the stored
    model, mirroring how DBSherlock refines diagnoses over time.
    """

    def __init__(self, merge_on_add: bool = True) -> None:
        self._models: Dict[str, CausalModel] = {}
        self.merge_on_add = merge_on_add

    def add(self, model: CausalModel) -> CausalModel:
        """Insert (or merge) *model*; returns the stored model."""
        existing = self._models.get(model.cause)
        if existing is not None and self.merge_on_add:
            model = existing.merge(model)
        self._models[model.cause] = model
        return model

    def get(self, cause: str) -> Optional[CausalModel]:
        """The stored model for *cause*, if any."""
        return self._models.get(cause)

    @property
    def causes(self) -> List[str]:
        """All known causes."""
        return list(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self):
        return iter(self._models.values())

    def rank(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        n_partitions: int = DEFAULT_CONFIDENCE_PARTITIONS,
        apply_filtering: bool = True,
        cache: Optional[object] = None,
        reconciler: Optional[object] = None,
        coverage_floor: float = 0.5,
    ) -> List[Tuple[str, float]]:
        """All causes with their confidence, highest first.

        A :class:`repro.perf.cache.LabeledSpaceCache` is created for the
        call when none is supplied, so ranking K models labels each
        attribute of *dataset* once instead of once per model.  Passing a
        :class:`~repro.schema.reconcile.SchemaReconciler` additionally
        matches drifted attribute names back to the model vocabulary
        (see :meth:`rank_reconciled` for the full report).
        """
        if cache is None:
            from repro.perf.cache import LabeledSpaceCache

            cache = LabeledSpaceCache()
        if reconciler is not None:
            return self.rank_reconciled(
                dataset,
                spec,
                reconciler,
                n_partitions=n_partitions,
                apply_filtering=apply_filtering,
                cache=cache,
                coverage_floor=coverage_floor,
            ).scores
        scored = [
            (
                model.cause,
                model.confidence(
                    dataset, spec, n_partitions, apply_filtering, cache=cache
                ),
            )
            for model in self._models.values()
        ]
        scored.sort(key=lambda item: item[1], reverse=True)
        return scored

    def rank_reconciled(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        reconciler,
        n_partitions: int = DEFAULT_CONFIDENCE_PARTITIONS,
        apply_filtering: bool = True,
        cache: Optional[object] = None,
        coverage_floor: float = 0.5,
    ):
        """Rank through a schema reconciler, returning the full
        :class:`~repro.schema.reconcile.RankResult` (scores, abstaining
        causes, and the per-attribute :class:`ReconciliationReport`)."""
        from repro.schema.reconcile import rank_with_reconciliation

        if cache is None:
            from repro.perf.cache import LabeledSpaceCache

            cache = LabeledSpaceCache()
        return rank_with_reconciliation(
            self._models.values(),
            dataset,
            spec,
            reconciler,
            n_partitions=n_partitions,
            apply_filtering=apply_filtering,
            cache=cache,
            coverage_floor=coverage_floor,
        )
