"""The ``DBSherlock`` facade: explain, diagnose, learn from feedback.

Ties together the predicate generator (Section 4), domain-knowledge
pruning (Section 5), the causal-model store (Section 6), and the automatic
anomaly detector (Section 7) behind the workflow of Figure 2:

1. the user marks an anomaly (or calls :meth:`DBSherlock.detect`),
2. :meth:`DBSherlock.explain` returns predicates plus any known causes
   whose confidence clears the display threshold λ,
3. once the user confirms the actual cause, :meth:`DBSherlock.feedback`
   stores (and merges) a causal model for future diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.anomaly import AnomalyDetector, DetectionResult
from repro.core.causal import CausalModel, CausalModelStore
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.knowledge import (
    DEFAULT_KAPPA_THRESHOLD,
    DomainRule,
    prune_secondary_symptoms,
)
from repro.core.predicates import Conjunction, Predicate
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.obs import metrics, trace
from repro.schema.fingerprint import fingerprint_attributes
from repro.schema.reconcile import (
    DEFAULT_COVERAGE_FLOOR,
    ReconciliationReport,
    SchemaReconciler,
)

__all__ = ["DBSherlock", "Explanation"]

DEFAULT_LAMBDA = 0.2

_CONFIDENCE = metrics.REGISTRY.histogram(
    "repro_rank_confidence",
    "Per-model Eq. 3 confidence at ranking time",
    buckets=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)
_ABSTENTIONS = metrics.REGISTRY.counter(
    "repro_rank_abstentions_total",
    "Models that declined to score (reconciliation coverage below floor)",
)
_RECONCILED_RANKS = metrics.REGISTRY.counter(
    "repro_rank_reconciled_total",
    "Rankings that fell back to schema reconciliation (drifted input)",
)
_CLEAN_RANKS = metrics.REGISTRY.counter(
    "repro_rank_clean_total",
    "Rankings served on the clean (no-drift) path",
)
_COVERAGE = metrics.REGISTRY.gauge(
    "repro_reconciliation_coverage",
    "Attribute coverage of the most recent schema reconciliation",
)
_EXPLAINS = metrics.REGISTRY.counter(
    "repro_explains_total", "DBSherlock.explain invocations"
)


def _observe_rank(scores, report, abstained) -> None:
    """Fold one ranking pass into the registry (shared with the harness)."""
    for _cause, confidence in scores:
        _CONFIDENCE.observe(confidence)
    if abstained:
        _ABSTENTIONS.inc(len(abstained))
    if report is not None:
        _RECONCILED_RANKS.inc()
        matches = report.matches
        if matches:
            matched = sum(1 for m in matches.values() if m.matched)
            _COVERAGE.set(matched / len(matches))
    else:
        _CLEAN_RANKS.inc()


@dataclass
class Explanation:
    """What DBSherlock shows the user for one anomaly.

    Attributes
    ----------
    predicates:
        The explanatory conjunction (after domain-knowledge pruning).
    pruned:
        Predicates removed as secondary symptoms, kept for transparency.
    causes:
        ``(cause, confidence)`` pairs from causal models clearing λ,
        ordered by decreasing confidence.
    all_cause_scores:
        Every model's score regardless of λ (useful for evaluation).
    reconciliation:
        The :class:`~repro.schema.reconcile.ReconciliationReport` the
        causes were scored under, when schema reconciliation ran
        (``None`` on the clean path where every model attribute was
        present verbatim).
    abstained:
        Causes whose models declined to score because too few of their
        attributes could be reconciled (coverage below the floor).
    """

    predicates: Conjunction
    pruned: List[Predicate] = field(default_factory=list)
    causes: List[Tuple[str, float]] = field(default_factory=list)
    all_cause_scores: List[Tuple[str, float]] = field(default_factory=list)
    reconciliation: Optional[ReconciliationReport] = None
    abstained: List[str] = field(default_factory=list)

    @property
    def top_cause(self) -> Optional[str]:
        """The highest-confidence cause above λ, if any."""
        return self.causes[0][0] if self.causes else None

    def __str__(self) -> str:
        lines = [f"predicates: {self.predicates}"]
        for cause, confidence in self.causes:
            lines.append(f"cause: {cause} (confidence {confidence:.1%})")
        return "\n".join(lines)


class DBSherlock:
    """Performance-anomaly explanation for OLTP telemetry.

    Parameters
    ----------
    config:
        Predicate-generation parameters (R, δ, θ).
    rules:
        Domain-knowledge rules for secondary-symptom pruning; empty
        disables pruning (the paper shows only a 2-3 % accuracy drop).
    kappa_threshold:
        Independence-test threshold κt (default 0.15).
    lambda_threshold:
        Minimum confidence λ for a cause to be displayed (default 20 %).
    detector:
        Automatic anomaly detector; defaults to the Section 7 settings.
        Any object with ``detect(dataset) -> DetectionResult`` works —
        e.g. the alternative strategies in :mod:`repro.detect`.
    reconciler:
        Schema reconciler used when the diagnosis data is missing model
        attributes (collector drift).  Defaults to a
        :class:`~repro.schema.reconcile.SchemaReconciler` with no alias
        table; pass one with aliases after a known collector upgrade.
    coverage_floor:
        Minimum fraction of a model's attributes that must reconcile for
        the model to score; below it the model abstains.
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        rules: Sequence[DomainRule] = (),
        kappa_threshold: float = DEFAULT_KAPPA_THRESHOLD,
        lambda_threshold: float = DEFAULT_LAMBDA,
        detector: Optional[AnomalyDetector] = None,
        reconciler: Optional[SchemaReconciler] = None,
        coverage_floor: float = DEFAULT_COVERAGE_FLOOR,
    ) -> None:
        from repro.perf.cache import LabeledSpaceCache

        self.config = config or GeneratorConfig()
        # One shared labeled-space cache: explain() generates predicates
        # and ranks stored models on the same (dataset, spec), so each
        # attribute is discretized and labeled exactly once per anomaly.
        self.cache = LabeledSpaceCache()
        self.generator = PredicateGenerator(self.config, cache=self.cache)
        self.rules = list(rules)
        self.kappa_threshold = kappa_threshold
        self.lambda_threshold = lambda_threshold
        self.detector = detector or AnomalyDetector()
        self.reconciler = reconciler or SchemaReconciler()
        self.coverage_floor = coverage_floor
        self.store = CausalModelStore()

    # ------------------------------------------------------------------
    def explain(
        self,
        dataset: Dataset,
        spec: Optional[RegionSpec] = None,
        attributes: Optional[Sequence[str]] = None,
    ) -> Explanation:
        """Explain an anomaly on *dataset*.

        When *spec* is omitted the automatic detector locates the abnormal
        region first; a detector miss yields an empty explanation.
        """
        _EXPLAINS.inc()
        with trace.span(
            "explain", dataset=getattr(dataset, "name", None)
        ) as sp:
            if spec is None:
                detection = self.detect(dataset)
                if not detection.found:
                    sp.set(detected=False)
                    return Explanation(predicates=Conjunction())
                spec = detection.to_region_spec()

            conjunction = self.generator.generate(dataset, spec, attributes)
            with trace.span("prune", candidates=len(conjunction.predicates)):
                kept, pruned = prune_secondary_symptoms(
                    conjunction.predicates, dataset, self.rules,
                    self.kappa_threshold,
                )
            scores, report, abstained = self._rank(dataset, spec)
            visible = [
                (cause, confidence)
                for cause, confidence in scores
                if confidence > self.lambda_threshold
            ]
            sp.set(
                predicates=len(kept),
                pruned=len(pruned),
                causes_visible=len(visible),
                abstained=len(abstained),
            )
            return Explanation(
                predicates=Conjunction(kept),
                pruned=pruned,
                causes=visible,
                all_cause_scores=scores,
                reconciliation=report,
                abstained=abstained,
            )

    def _rank(
        self, dataset: Dataset, spec: RegionSpec
    ) -> Tuple[
        List[Tuple[str, float]], Optional[ReconciliationReport], List[str]
    ]:
        """Rank stored models, reconciling the schema only under drift.

        When every model attribute is present in *dataset* verbatim, the
        clean ranking path runs unchanged (bitwise-identical scores, warm
        labeled-space cache).  Otherwise the reconciler maps the drifted
        schema back to the model vocabulary and models with too little
        coverage abstain.
        """
        drifted = any(
            attr not in dataset
            for model in self.store
            for attr in model.attributes
        )
        with trace.span(
            "rank", models=len(self.store), drifted=drifted
        ):
            if not drifted:
                scores = self.store.rank(
                    dataset, spec, n_partitions=self.config.n_partitions,
                    cache=self.cache,
                )
                _observe_rank(scores, None, [])
                return scores, None, []
            result = self.store.rank_reconciled(
                dataset,
                spec,
                self.reconciler,
                n_partitions=self.config.n_partitions,
                cache=self.cache,
                coverage_floor=self.coverage_floor,
            )
            _observe_rank(result.scores, result.report, result.abstained)
            return result.scores, result.report, result.abstained

    def detect(self, dataset: Dataset) -> DetectionResult:
        """Automatically locate abnormal regions (Section 7)."""
        with trace.span("detect") as sp:
            result = self.detector.detect(dataset)
            sp.set(found=result.found)
            return result

    def feedback(
        self,
        cause: str,
        explanation: Explanation,
        dataset: Optional[Dataset] = None,
    ) -> CausalModel:
        """Record the DBA's confirmed cause for an explanation.

        Creates a causal model from the accepted predicates and adds it to
        the store, merging with any existing model for the same cause.
        Passing the diagnosed *dataset* additionally fingerprints the
        predicate attributes, so the model survives collector schema
        drift (renamed metrics reconcile by distribution, not just name).
        """
        predicates = explanation.predicates.predicates
        fingerprints = (
            fingerprint_attributes(dataset, [p.attr for p in predicates])
            if dataset is not None
            else {}
        )
        model = CausalModel(
            cause=cause, predicates=predicates, fingerprints=fingerprints
        )
        return self.store.add(model)

    def diagnose(
        self, dataset: Dataset, spec: RegionSpec, top_k: int = 1
    ) -> List[Tuple[str, float]]:
        """The ``top_k`` most likely known causes for an anomaly."""
        scores, _, _ = self._rank(dataset, spec)
        return scores[:top_k]

    # ------------------------------------------------------------------
    @staticmethod
    def _alias_path(path):
        """The alias table lives next to the model store."""
        from pathlib import Path

        path = Path(path)
        return path.with_name(path.stem + ".aliases.json")

    def save_models(self, path) -> None:
        """Persist the accumulated causal models as JSON.

        The reconciler's learned alias table (if any) is saved alongside
        at ``<models>.aliases.json`` — models and confirmed drift
        resolutions are both accumulated diagnostic knowledge.
        """
        from repro.core.persistence import save_store

        save_store(self.store, path)
        store = self.reconciler.alias_store
        if store is not None:
            if store.path is None:
                store.path = self._alias_path(path)
            store.save()

    def load_models(self, path) -> None:
        """Load previously saved causal models, merging same-cause models.

        When an alias table sits next to the model store and the
        reconciler has none yet, it is attached — previously confirmed
        drift resolutions resolve at the alias stage from the first
        diagnosis.
        """
        from repro.core.persistence import load_store
        from repro.schema.aliases import AliasStore

        loaded = load_store(path)
        for model in loaded:
            self.store.add(model)
        alias_path = self._alias_path(path)
        if self.reconciler.alias_store is None and alias_path.exists():
            self.reconciler.alias_store = AliasStore(alias_path)
