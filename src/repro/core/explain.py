"""The ``DBSherlock`` facade: explain, diagnose, learn from feedback.

Ties together the predicate generator (Section 4), domain-knowledge
pruning (Section 5), the causal-model store (Section 6), and the automatic
anomaly detector (Section 7) behind the workflow of Figure 2:

1. the user marks an anomaly (or calls :meth:`DBSherlock.detect`),
2. :meth:`DBSherlock.explain` returns predicates plus any known causes
   whose confidence clears the display threshold λ,
3. once the user confirms the actual cause, :meth:`DBSherlock.feedback`
   stores (and merges) a causal model for future diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.anomaly import AnomalyDetector, DetectionResult
from repro.core.causal import CausalModel, CausalModelStore
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.core.knowledge import (
    DEFAULT_KAPPA_THRESHOLD,
    DomainRule,
    prune_secondary_symptoms,
)
from repro.core.predicates import Conjunction, Predicate
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.obs import metrics, trace
from repro.schema.fingerprint import fingerprint_attributes
from repro.schema.reconcile import (
    DEFAULT_COVERAGE_FLOOR,
    ReconciliationReport,
    SchemaReconciler,
)

__all__ = ["DBSherlock", "Explanation"]

DEFAULT_LAMBDA = 0.2

_CONFIDENCE = metrics.REGISTRY.histogram(
    "repro_rank_confidence",
    "Per-model Eq. 3 confidence at ranking time",
    buckets=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)
_ABSTENTIONS = metrics.REGISTRY.counter(
    "repro_rank_abstentions_total",
    "Models that declined to score (reconciliation coverage below floor)",
)
_RECONCILED_RANKS = metrics.REGISTRY.counter(
    "repro_rank_reconciled_total",
    "Rankings that fell back to schema reconciliation (drifted input)",
)
_CLEAN_RANKS = metrics.REGISTRY.counter(
    "repro_rank_clean_total",
    "Rankings served on the clean (no-drift) path",
)
_COVERAGE = metrics.REGISTRY.gauge(
    "repro_reconciliation_coverage",
    "Attribute coverage of the most recent schema reconciliation",
)
_EXPLAINS = metrics.REGISTRY.counter(
    "repro_explains_total", "DBSherlock.explain invocations"
)
_EXPLAIN_BATCHES = metrics.REGISTRY.counter(
    "repro_explain_batches_total",
    "Fused explain_batch passes (cross-anomaly kernel seeding)",
)


def _observe_rank(scores, report, abstained) -> None:
    """Fold one ranking pass into the registry (shared with the harness)."""
    for _cause, confidence in scores:
        _CONFIDENCE.observe(confidence)
    if abstained:
        _ABSTENTIONS.inc(len(abstained))
    if report is not None:
        _RECONCILED_RANKS.inc()
        matches = report.matches
        if matches:
            matched = sum(1 for m in matches.values() if m.matched)
            _COVERAGE.set(matched / len(matches))
    else:
        _CLEAN_RANKS.inc()


@dataclass
class Explanation:
    """What DBSherlock shows the user for one anomaly.

    Attributes
    ----------
    predicates:
        The explanatory conjunction (after domain-knowledge pruning).
    pruned:
        Predicates removed as secondary symptoms, kept for transparency.
    causes:
        ``(cause, confidence)`` pairs from causal models clearing λ,
        ordered by decreasing confidence.
    all_cause_scores:
        Every model's score regardless of λ (useful for evaluation).
    reconciliation:
        The :class:`~repro.schema.reconcile.ReconciliationReport` the
        causes were scored under, when schema reconciliation ran
        (``None`` on the clean path where every model attribute was
        present verbatim).
    abstained:
        Causes whose models declined to score because too few of their
        attributes could be reconciled (coverage below the floor).
    """

    predicates: Conjunction
    pruned: List[Predicate] = field(default_factory=list)
    causes: List[Tuple[str, float]] = field(default_factory=list)
    all_cause_scores: List[Tuple[str, float]] = field(default_factory=list)
    reconciliation: Optional[ReconciliationReport] = None
    abstained: List[str] = field(default_factory=list)

    @property
    def top_cause(self) -> Optional[str]:
        """The highest-confidence cause above λ, if any."""
        return self.causes[0][0] if self.causes else None

    def __str__(self) -> str:
        lines = [f"predicates: {self.predicates}"]
        for cause, confidence in self.causes:
            lines.append(f"cause: {cause} (confidence {confidence:.1%})")
        return "\n".join(lines)


class DBSherlock:
    """Performance-anomaly explanation for OLTP telemetry.

    Parameters
    ----------
    config:
        Predicate-generation parameters (R, δ, θ).
    rules:
        Domain-knowledge rules for secondary-symptom pruning; empty
        disables pruning (the paper shows only a 2-3 % accuracy drop).
    kappa_threshold:
        Independence-test threshold κt (default 0.15).
    lambda_threshold:
        Minimum confidence λ for a cause to be displayed (default 20 %).
    detector:
        Automatic anomaly detector; defaults to the Section 7 settings.
        Any object with ``detect(dataset) -> DetectionResult`` works —
        e.g. the alternative strategies in :mod:`repro.detect`.
    reconciler:
        Schema reconciler used when the diagnosis data is missing model
        attributes (collector drift).  Defaults to a
        :class:`~repro.schema.reconcile.SchemaReconciler` with no alias
        table; pass one with aliases after a known collector upgrade.
    coverage_floor:
        Minimum fraction of a model's attributes that must reconcile for
        the model to score; below it the model abstains.
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        rules: Sequence[DomainRule] = (),
        kappa_threshold: float = DEFAULT_KAPPA_THRESHOLD,
        lambda_threshold: float = DEFAULT_LAMBDA,
        detector: Optional[AnomalyDetector] = None,
        reconciler: Optional[SchemaReconciler] = None,
        coverage_floor: float = DEFAULT_COVERAGE_FLOOR,
    ) -> None:
        from repro.perf.cache import LabeledSpaceCache

        self.config = config or GeneratorConfig()
        # One shared labeled-space cache: explain() generates predicates
        # and ranks stored models on the same (dataset, spec), so each
        # attribute is discretized and labeled exactly once per anomaly.
        self.cache = LabeledSpaceCache()
        self.generator = PredicateGenerator(self.config, cache=self.cache)
        self.rules = list(rules)
        self.kappa_threshold = kappa_threshold
        self.lambda_threshold = lambda_threshold
        self.detector = detector or AnomalyDetector()
        self.reconciler = reconciler or SchemaReconciler()
        self.coverage_floor = coverage_floor
        self.store = CausalModelStore()

    # ------------------------------------------------------------------
    def explain(
        self,
        dataset: Dataset,
        spec: Optional[RegionSpec] = None,
        attributes: Optional[Sequence[str]] = None,
    ) -> Explanation:
        """Explain an anomaly on *dataset*.

        When *spec* is omitted the automatic detector locates the abnormal
        region first; a detector miss yields an empty explanation.
        """
        _EXPLAINS.inc()
        with trace.span(
            "explain", dataset=getattr(dataset, "name", None)
        ) as sp:
            if spec is None:
                detection = self.detect(dataset)
                if not detection.found:
                    sp.set(detected=False)
                    return Explanation(predicates=Conjunction())
                spec = detection.to_region_spec()

            conjunction = self.generator.generate(dataset, spec, attributes)
            with trace.span("prune", candidates=len(conjunction.predicates)):
                kept, pruned = prune_secondary_symptoms(
                    conjunction.predicates, dataset, self.rules,
                    self.kappa_threshold,
                )
            scores, report, abstained = self._rank(dataset, spec)
            visible = [
                (cause, confidence)
                for cause, confidence in scores
                if confidence > self.lambda_threshold
            ]
            sp.set(
                predicates=len(kept),
                pruned=len(pruned),
                causes_visible=len(visible),
                abstained=len(abstained),
            )
            return Explanation(
                predicates=Conjunction(kept),
                pruned=pruned,
                causes=visible,
                all_cause_scores=scores,
                reconciliation=report,
                abstained=abstained,
            )

    def explain_batch(
        self,
        jobs: Sequence[Tuple[Dataset, Optional[RegionSpec]]],
        attributes: Optional[Sequence[str]] = None,
    ) -> List[Explanation]:
        """:meth:`explain` for many anomalies, fused through batch kernels.

        The per-anomaly result is **identical** to calling
        :meth:`explain` serially — this method only *seeds* the shared
        :class:`~repro.perf.cache.LabeledSpaceCache` first: the Section
        4.3 filter, the Section 4.4 gap fill, and the θ-gate normalized
        means for every job are computed in a handful of stacked numpy
        passes (:mod:`repro.perf.batch`) whose outputs are bitwise-equal
        to the serial functions, and published as cache entries.  The
        unchanged serial :meth:`explain` then runs per job and hits the
        cache everywhere, so a batch of K diagnoses costs a few kernels
        plus K cheap cache-hit walks instead of K full Algorithm 1 runs.
        Jobs the kernels cannot express exactly (NaN telemetry, ablation
        configs, missing specs) are simply not seeded and take the
        serial path inside :meth:`explain` as usual.
        """
        jobs = list(jobs)
        if (
            len(jobs) > 1
            and self.config.enable_filtering
            and self.config.enable_fill
        ):
            _EXPLAIN_BATCHES.inc()
            self._seed_batch(jobs, attributes)
        return [self.explain(ds, spec, attributes) for ds, spec in jobs]

    def _seed_batch(
        self,
        jobs: Sequence[Tuple[Dataset, Optional[RegionSpec]]],
        attributes: Optional[Sequence[str]],
    ) -> None:
        """Warm the labeled-space cache for *jobs* via batch kernels."""
        import numpy as np

        from repro.core.partition import Label, NumericPartitionSpace
        from repro.perf.batch import (
            abnormal_blocks_batch,
            fill_gaps_batch,
            filter_partitions_batch,
            normalize_columns_batch,
        )
        from repro.perf.cache import LabeledAttribute

        n_partitions = self.config.n_partitions
        grid = int(n_partitions)
        delta = float(self.config.delta)
        seen: set = set()
        numeric_entries: List[object] = []

        def collect(entry) -> None:
            if entry is None or not entry.is_numeric:
                return
            if id(entry) in seen:
                return
            seen.add(id(entry))
            if entry.labels_initial.shape[0] == grid:
                numeric_entries.append(entry)

        def degrade(dataset, spec, numeric) -> None:
            # degraded job (NaN cells, mixed dtypes, empty regions):
            # label it per-dataset; explain() falls back serially
            for entry in self.cache.entries(
                dataset, spec, numeric, n_partitions
            ).values():
                collect(entry)

        # Group fusable candidates by row count so each group stacks into
        # one (total_attrs, rows) matrix: jobs of equal length share the
        # NaN scan, normalization, min/max, and labeling kernels no
        # matter the tenant.  (Invalid specs are caught by the validate
        # inside explain(); seeding never consumes the region bounds
        # beyond building masks.)
        groups: dict = {}
        for dataset, spec in jobs:
            if spec is None:
                continue
            names = (
                list(attributes)
                if attributes is not None
                else dataset.attributes
            )
            numeric = [a for a in names if dataset.is_numeric(a)]
            if not numeric:
                continue
            columns = [np.asarray(dataset.column(a)) for a in numeric]
            if all(
                c.dtype == np.float64 and c.ndim == 1
                and c.shape == columns[0].shape
                for c in columns
            ):
                groups.setdefault(columns[0].shape[0], []).append(
                    (dataset, spec, numeric, columns)
                )
            else:
                degrade(dataset, spec, numeric)

        # Per-job publication staged for one bulk seed_job call each —
        # (dataset, spec, norm_means, entries, masks); entries fill in
        # during the stacked labeling pass below.
        pending: List[tuple] = []
        for group in groups.values():
            big = np.stack(
                [c for _, _, _, cols in group for c in cols]
            )
            nan_rows = np.isnan(big).any(axis=1)
            starts: List[int] = []
            offset = 0
            for _, _, numeric, _ in group:
                starts.append(offset)
                offset += len(numeric)
            # Region masks for the whole group in two comparisons — the
            # single-abnormal-region / implicit-normal shape the fleet
            # produces; other spec shapes fall back to per-job masks.
            simple = [
                len(spec.abnormal) == 1 and spec.normal is None
                for _, spec, _, _ in group
            ]
            ab_all = None
            if any(simple):
                stamps = np.stack([ds.timestamps for ds, _, _, _ in group])
                lo = np.array(
                    [spec.abnormal[0].start for _, spec, _, _ in group]
                )[:, None]
                hi = np.array(
                    [spec.abnormal[0].end for _, spec, _, _ in group]
                )[:, None]
                ab_all = (stamps >= lo) & (stamps <= hi)
            # θ-gate means for every attribute in two masked reductions —
            # mean(axis=1) reduces each contiguous row with the exact
            # pairwise summation of the serial values[mask].mean()
            big_norm = normalize_columns_batch(big)
            big_mins = big.min(axis=1)
            big_maxs = big.max(axis=1)
            lanes: List[tuple] = []
            for j, (dataset, spec, numeric, _) in enumerate(group):
                s = starts[j]
                e = s + len(numeric)
                if bool(nan_rows[s:e].any()):
                    degrade(dataset, spec, numeric)
                    continue
                if simple[j]:
                    abnormal = ab_all[j]
                    normal = ~abnormal
                else:
                    abnormal, normal = self.cache.masks(dataset, spec)
                if not (bool(abnormal.any()) and bool(normal.any())):
                    degrade(dataset, spec, numeric)
                    continue
                sub = big_norm[s:e]
                mu_abnormal = sub[:, abnormal].mean(axis=1).tolist()
                mu_normal = sub[:, normal].mean(axis=1).tolist()
                job_means: dict = {}
                job_entries: dict = {}
                job_masks = (abnormal, normal) if simple[j] else None
                pending.append(
                    (dataset, spec, job_means, job_entries, job_masks)
                )
                cached_entries = self.cache.peek_entries(
                    dataset, spec, numeric, n_partitions
                )
                for i, attr in enumerate(numeric):
                    job_means[attr] = (mu_abnormal[i], mu_normal[i])
                    cached = cached_entries.get(attr)
                    if cached is not None:
                        collect(cached)
                    else:
                        lanes.append(
                            (job_entries, attr, s + i, abnormal, normal)
                        )
            if not lanes:
                continue
            # One Algorithm-1 labeling pass over every lane of the group —
            # the same arithmetic as label_numeric_batch, with the per-job
            # region masks expanded to lane rows so a single pair of
            # offset bincounts serves the whole group.
            rows = np.array([lane[2] for lane in lanes], dtype=np.intp)
            stacked = big[rows]
            abnormal_sel = np.stack([lane[3] for lane in lanes])
            normal_sel = np.stack([lane[4] for lane in lanes])
            mins = big_mins[rows]
            maxs = big_maxs[rows]
            spans = maxs - mins
            nparts = np.where(spans > 0, grid, 1).astype(np.int64)
            widths = spans / nparts
            safe_widths = np.where(widths == 0.0, 1.0, widths)
            with np.errstate(invalid="ignore"):
                raw = np.floor((stacked - mins[:, None]) / safe_widths[:, None])
            idx = np.clip(raw.astype(np.int64), 0, (nparts - 1)[:, None])
            L = len(lanes)
            offsets = (np.arange(L, dtype=np.int64) * grid)[:, None]
            flat = idx + offsets
            counts_abnormal = np.bincount(
                flat[abnormal_sel], minlength=L * grid
            ).reshape(L, grid)
            counts_normal = np.bincount(
                flat[normal_sel], minlength=L * grid
            ).reshape(L, grid)
            labels_grid = np.full((L, grid), int(Label.EMPTY), dtype=np.int64)
            labels_grid[(counts_abnormal > 0) & (counts_normal == 0)] = int(
                Label.ABNORMAL
            )
            labels_grid[(counts_normal > 0) & (counts_abnormal == 0)] = int(
                Label.NORMAL
            )
            for j, (job_entries, attr, _row, _a, _n) in enumerate(lanes):
                space = NumericPartitionSpace.from_stats(
                    attr, mins[j], maxs[j], n_partitions
                )
                job_entries[attr] = LabeledAttribute(
                    attr,
                    True,
                    space,
                    labels_grid[j, : space.n_partitions].copy(),
                )
        # One grouped-by-shard publication per job instead of two lock
        # round-trips per (attribute, table) key.
        for dataset, spec, job_means, job_entries, job_masks in pending:
            winners = self.cache.seed_job(
                dataset,
                spec,
                n_partitions,
                entries=job_entries or None,
                norm_means=job_means or None,
                masks=job_masks,
            )
            for entry in winners.values():
                collect(entry)
        abnormal_label = int(Label.ABNORMAL)
        normal_label = int(Label.NORMAL)
        unfiltered = [
            e for e in numeric_entries if e._labels_filtered is None
        ]
        if unfiltered:
            filtered = filter_partitions_batch(
                np.stack([e.labels_initial for e in unfiltered])
            )
            # Also seed the derived forms the ranking path asks for:
            # partition representatives, row-vectorized with the exact
            # serial association order (minimum + i*width) + width/2 of
            # NumericPartitionSpace.midpoints, and the filtered
            # Abnormal/Normal region views built from them.
            mins_f = np.array([e.space.minimum for e in unfiltered])
            widths_f = np.array([e.space.width for e in unfiltered])
            reps_all = (
                mins_f[:, None]
                + np.arange(grid, dtype=np.float64)[None, :]
                * widths_f[:, None]
            ) + widths_f[:, None] / 2.0
            # One nonzero over the whole matrix; np.split hands each row
            # its ascending column indices — the same values flatnonzero
            # yields per row.
            cuts = np.arange(1, len(unfiltered))
            ab_rows, ab_cols = np.nonzero(filtered == abnormal_label)
            ab_split = np.split(ab_cols, np.searchsorted(ab_rows, cuts))
            no_rows, no_cols = np.nonzero(filtered == normal_label)
            no_split = np.split(no_cols, np.searchsorted(no_rows, cuts))
            for entry, row, reps, ab_idx, no_idx in zip(
                unfiltered, filtered, reps_all, ab_split, no_split
            ):
                entry._labels_filtered = row
                entry._representatives = reps
                entry._regions_filtered = (
                    None
                    if ab_idx.size == 0 or no_idx.size == 0
                    else (
                        reps[ab_idx],
                        reps[no_idx],
                        int(ab_idx.size),
                        int(no_idx.size),
                    )
                )
        if delta <= 0:
            return
        # Only lanes where both labels survive the filter take the
        # normal_mean_partition=None fill the generator will ask for;
        # abnormal-only lanes need the per-job mean partition and fall
        # to the serial fill inside explain().  The seeded region view
        # answers "both labels present?" without rescanning; entries
        # carried over from earlier batches answer it memoized the same
        # way via region_partitions.
        fill_todo = []
        for entry in numeric_entries:
            if (delta, None) in entry._filled:
                continue
            if entry.region_partitions(apply_filtering=True) is not None:
                fill_todo.append(entry)
        if fill_todo:
            filled = fill_gaps_batch(
                np.stack([e.filtered_labels() for e in fill_todo]), delta
            )
            blocks = abnormal_blocks_batch(filled)
            for entry, filled_row, block_row in zip(
                fill_todo, filled, blocks
            ):
                entry._filled[(delta, None)] = (filled_row, block_row)

    def _rank(
        self, dataset: Dataset, spec: RegionSpec
    ) -> Tuple[
        List[Tuple[str, float]], Optional[ReconciliationReport], List[str]
    ]:
        """Rank stored models, reconciling the schema only under drift.

        When every model attribute is present in *dataset* verbatim, the
        clean ranking path runs unchanged (bitwise-identical scores, warm
        labeled-space cache).  Otherwise the reconciler maps the drifted
        schema back to the model vocabulary and models with too little
        coverage abstain.
        """
        drifted = any(
            attr not in dataset
            for model in self.store
            for attr in model.attributes
        )
        with trace.span(
            "rank", models=len(self.store), drifted=drifted
        ):
            if not drifted:
                scores = self.store.rank(
                    dataset, spec, n_partitions=self.config.n_partitions,
                    cache=self.cache,
                )
                _observe_rank(scores, None, [])
                return scores, None, []
            result = self.store.rank_reconciled(
                dataset,
                spec,
                self.reconciler,
                n_partitions=self.config.n_partitions,
                cache=self.cache,
                coverage_floor=self.coverage_floor,
            )
            _observe_rank(result.scores, result.report, result.abstained)
            return result.scores, result.report, result.abstained

    def detect(self, dataset: Dataset) -> DetectionResult:
        """Automatically locate abnormal regions (Section 7)."""
        with trace.span("detect") as sp:
            result = self.detector.detect(dataset)
            sp.set(found=result.found)
            return result

    def feedback(
        self,
        cause: str,
        explanation: Explanation,
        dataset: Optional[Dataset] = None,
    ) -> CausalModel:
        """Record the DBA's confirmed cause for an explanation.

        Creates a causal model from the accepted predicates and adds it to
        the store, merging with any existing model for the same cause.
        Passing the diagnosed *dataset* additionally fingerprints the
        predicate attributes, so the model survives collector schema
        drift (renamed metrics reconcile by distribution, not just name).
        """
        predicates = explanation.predicates.predicates
        fingerprints = (
            fingerprint_attributes(dataset, [p.attr for p in predicates])
            if dataset is not None
            else {}
        )
        model = CausalModel(
            cause=cause, predicates=predicates, fingerprints=fingerprints
        )
        return self.store.add(model)

    def diagnose(
        self, dataset: Dataset, spec: RegionSpec, top_k: int = 1
    ) -> List[Tuple[str, float]]:
        """The ``top_k`` most likely known causes for an anomaly."""
        scores, _, _ = self._rank(dataset, spec)
        return scores[:top_k]

    # ------------------------------------------------------------------
    @staticmethod
    def _alias_path(path):
        """The alias table lives next to the model store."""
        from pathlib import Path

        path = Path(path)
        return path.with_name(path.stem + ".aliases.json")

    def save_models(self, path) -> None:
        """Persist the accumulated causal models as JSON.

        The reconciler's learned alias table (if any) is saved alongside
        at ``<models>.aliases.json`` — models and confirmed drift
        resolutions are both accumulated diagnostic knowledge.
        """
        from repro.core.persistence import save_store

        save_store(self.store, path)
        store = self.reconciler.alias_store
        if store is not None:
            if store.path is None:
                store.path = self._alias_path(path)
            store.save()

    def load_models(self, path) -> None:
        """Load previously saved causal models, merging same-cause models.

        When an alias table sits next to the model store and the
        reconciler has none yet, it is attached — previously confirmed
        drift resolutions resolve at the alias stage from the first
        diagnosis.
        """
        from repro.core.persistence import load_store
        from repro.schema.aliases import AliasStore

        loaded = load_store(path)
        for model in loaded:
            self.store.add(model)
        alias_path = self._alias_path(path)
        if self.reconciler.alias_store is None and alias_path.exists():
            self.reconciler.alias_store = AliasStore(alias_path)
