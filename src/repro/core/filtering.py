"""Partition filtering and gap filling (Sections 4.3-4.4).

Both steps apply to numeric attributes only.  *Filtering* erases non-Empty
partitions whose label disagrees with either of their nearest non-Empty
neighbours — all decisions taken simultaneously on the original labels, so
partitions cannot cascade-filter each other (the paper's Figure 5 note).
*Gap filling* then assigns every Empty partition the label of the closer
non-Empty side, with the distance to the Abnormal side inflated by the
anomaly distance multiplier ``δ`` (δ > 1 yields more specific predicates).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.partition import Label

__all__ = ["filter_partitions", "fill_gaps"]


def _nearest_non_empty(labels: np.ndarray) -> tuple:
    """Per-partition index of the nearest non-Empty partition on each side.

    Returns ``(left, right)`` int arrays; -1 where no such partition
    exists.  Vectorized via prefix max / suffix min scans.
    """
    n = labels.shape[0]
    nonempty = labels != int(Label.EMPTY)
    idx = np.arange(n, dtype=np.int64)
    last = np.where(nonempty, idx, -1)
    left = np.empty(n, dtype=np.int64)
    left[0] = -1
    if n > 1:
        left[1:] = np.maximum.accumulate(last)[:-1]
    nxt = np.where(nonempty, idx, n)
    right = np.empty(n, dtype=np.int64)
    right[-1] = -1
    if n > 1:
        right[:-1] = np.minimum.accumulate(nxt[::-1])[::-1][1:]
        right[right == n] = -1
    return left, right


def filter_partitions(labels: np.ndarray) -> np.ndarray:
    """Section 4.3 filtering, applied simultaneously.

    A non-Empty partition keeps its label only when *both* of its nearest
    non-Empty neighbours carry the same label (Figure 5, Scenario 1).
    Partitions at either end of the non-Empty run (with a single neighbour)
    are never filtered — the paper notes that an incremental version would
    wrongly erode them.  A lone Abnormal (or lone Normal) partition is
    deemed significant and kept regardless of its neighbours.
    """
    labels = np.asarray(labels, dtype=np.int64)
    result = labels.copy()
    left, right = _nearest_non_empty(labels)
    eligible = (labels != int(Label.EMPTY)) & (left >= 0) & (right >= 0)
    if int((labels == int(Label.ABNORMAL)).sum()) == 1:
        eligible &= labels != int(Label.ABNORMAL)
    if int((labels == int(Label.NORMAL)).sum()) == 1:
        eligible &= labels != int(Label.NORMAL)
    left_label = labels[np.clip(left, 0, None)]
    right_label = labels[np.clip(right, 0, None)]
    disagree = (left_label != labels) | (right_label != labels)
    result[eligible & disagree] = int(Label.EMPTY)
    return result


def fill_gaps(
    labels: np.ndarray,
    delta: float,
    normal_mean_partition: Optional[int] = None,
) -> np.ndarray:
    """Section 4.4 gap filling with anomaly distance multiplier ``δ``.

    Every Empty partition takes the label of its closer non-Empty side,
    where the distance to an Abnormal side is multiplied by ``δ``; ties go
    Normal (consistent with δ > 1 favouring specific predicates).  When
    only Abnormal partitions remain, the partition holding the normal
    region's average value (``normal_mean_partition``) is force-labeled
    Normal first, so a predicate direction can be determined.

    Returns a fully non-Empty label array (unless no non-Empty partitions
    exist at all, in which case the input is returned unchanged).
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    if delta <= 0:
        raise ValueError("delta must be positive")

    has_abnormal = bool((labels == int(Label.ABNORMAL)).any())
    has_normal = bool((labels == int(Label.NORMAL)).any())
    if not has_abnormal and not has_normal:
        return labels
    if has_abnormal and not has_normal:
        if normal_mean_partition is None:
            raise ValueError(
                "only Abnormal partitions remain; normal_mean_partition required"
            )
        labels[int(normal_mean_partition)] = int(Label.NORMAL)

    left, right = _nearest_non_empty(labels)
    filled = labels.copy()
    empty = labels == int(Label.EMPTY)
    left_label = labels[np.clip(left, 0, None)]
    right_label = labels[np.clip(right, 0, None)]

    only_left = empty & (left >= 0) & (right < 0)
    filled[only_left] = left_label[only_left]
    only_right = empty & (left < 0) & (right >= 0)
    filled[only_right] = right_label[only_right]

    both = empty & (left >= 0) & (right >= 0)
    agree = both & (left_label == right_label)
    filled[agree] = left_label[agree]

    idx = np.arange(labels.shape[0], dtype=np.int64)
    dist_left = (idx - left).astype(np.float64)
    dist_right = (right - idx).astype(np.float64)
    left_is_abnormal = left_label == int(Label.ABNORMAL)
    dist_abnormal = np.where(left_is_abnormal, dist_left, dist_right)
    dist_normal = np.where(left_is_abnormal, dist_right, dist_left)
    abnormal_label = np.where(left_is_abnormal, left_label, right_label)
    normal_label = np.where(left_is_abnormal, right_label, left_label)
    chosen = np.where(dist_abnormal * delta < dist_normal, abnormal_label, normal_label)
    disagree = both & (left_label != right_label)
    filled[disagree] = chosen[disagree]
    return filled


def abnormal_blocks(labels: np.ndarray) -> list:
    """Contiguous runs of Abnormal partitions as ``(start, end)`` inclusive."""
    labels = np.asarray(labels, dtype=np.int64)
    abnormal = np.concatenate(
        [[False], labels == int(Label.ABNORMAL), [False]]
    ).astype(np.int8)
    edges = np.diff(abnormal)
    starts = np.nonzero(edges == 1)[0]
    ends = np.nonzero(edges == -1)[0] - 1
    return list(zip(starts.tolist(), ends.tolist()))
