"""Partition filtering and gap filling (Sections 4.3-4.4).

Both steps apply to numeric attributes only.  *Filtering* erases non-Empty
partitions whose label disagrees with either of their nearest non-Empty
neighbours — all decisions taken simultaneously on the original labels, so
partitions cannot cascade-filter each other (the paper's Figure 5 note).
*Gap filling* then assigns every Empty partition the label of the closer
non-Empty side, with the distance to the Abnormal side inflated by the
anomaly distance multiplier ``δ`` (δ > 1 yields more specific predicates).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.partition import Label

__all__ = ["filter_partitions", "fill_gaps"]


def _nearest_non_empty(labels: np.ndarray) -> tuple:
    """Per-partition index of the nearest non-Empty partition on each side.

    Returns ``(left, right)`` int arrays; -1 where no such partition exists.
    """
    n = labels.shape[0]
    left = np.full(n, -1, dtype=np.int64)
    last = -1
    for i in range(n):
        left[i] = last
        if labels[i] != int(Label.EMPTY):
            last = i
    right = np.full(n, -1, dtype=np.int64)
    nxt = -1
    for i in range(n - 1, -1, -1):
        right[i] = nxt
        if labels[i] != int(Label.EMPTY):
            nxt = i
    return left, right


def filter_partitions(labels: np.ndarray) -> np.ndarray:
    """Section 4.3 filtering, applied simultaneously.

    A non-Empty partition keeps its label only when *both* of its nearest
    non-Empty neighbours carry the same label (Figure 5, Scenario 1).
    Partitions at either end of the non-Empty run (with a single neighbour)
    are never filtered — the paper notes that an incremental version would
    wrongly erode them.  A lone Abnormal (or lone Normal) partition is
    deemed significant and kept regardless of its neighbours.
    """
    labels = np.asarray(labels, dtype=np.int64)
    result = labels.copy()
    left, right = _nearest_non_empty(labels)
    lone_abnormal = int((labels == int(Label.ABNORMAL)).sum()) == 1
    lone_normal = int((labels == int(Label.NORMAL)).sum()) == 1
    for i in range(labels.shape[0]):
        label = labels[i]
        if label == int(Label.EMPTY):
            continue
        if label == int(Label.ABNORMAL) and lone_abnormal:
            continue
        if label == int(Label.NORMAL) and lone_normal:
            continue
        li, ri = left[i], right[i]
        if li < 0 or ri < 0:
            # End of the non-Empty run: only one neighbour, never filtered.
            continue
        if labels[li] != label or labels[ri] != label:
            result[i] = int(Label.EMPTY)
    return result


def fill_gaps(
    labels: np.ndarray,
    delta: float,
    normal_mean_partition: Optional[int] = None,
) -> np.ndarray:
    """Section 4.4 gap filling with anomaly distance multiplier ``δ``.

    Every Empty partition takes the label of its closer non-Empty side,
    where the distance to an Abnormal side is multiplied by ``δ``; ties go
    Normal (consistent with δ > 1 favouring specific predicates).  When
    only Abnormal partitions remain, the partition holding the normal
    region's average value (``normal_mean_partition``) is force-labeled
    Normal first, so a predicate direction can be determined.

    Returns a fully non-Empty label array (unless no non-Empty partitions
    exist at all, in which case the input is returned unchanged).
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    if delta <= 0:
        raise ValueError("delta must be positive")

    has_abnormal = bool((labels == int(Label.ABNORMAL)).any())
    has_normal = bool((labels == int(Label.NORMAL)).any())
    if not has_abnormal and not has_normal:
        return labels
    if has_abnormal and not has_normal:
        if normal_mean_partition is None:
            raise ValueError(
                "only Abnormal partitions remain; normal_mean_partition required"
            )
        labels[int(normal_mean_partition)] = int(Label.NORMAL)

    left, right = _nearest_non_empty(labels)
    filled = labels.copy()
    for i in range(labels.shape[0]):
        if labels[i] != int(Label.EMPTY):
            continue
        li, ri = left[i], right[i]
        if li < 0 and ri < 0:
            continue
        if li < 0:
            filled[i] = labels[ri]
            continue
        if ri < 0:
            filled[i] = labels[li]
            continue
        left_label, right_label = labels[li], labels[ri]
        if left_label == right_label:
            filled[i] = left_label
            continue
        dist_left = float(i - li)
        dist_right = float(ri - i)
        if left_label == int(Label.ABNORMAL):
            dist_abnormal, dist_normal = dist_left, dist_right
            abnormal_label, normal_label = left_label, right_label
        else:
            dist_abnormal, dist_normal = dist_right, dist_left
            abnormal_label, normal_label = right_label, left_label
        if dist_abnormal * delta < dist_normal:
            filled[i] = abnormal_label
        else:
            filled[i] = normal_label
    return filled


def abnormal_blocks(labels: np.ndarray) -> list:
    """Contiguous runs of Abnormal partitions as ``(start, end)`` inclusive."""
    labels = np.asarray(labels, dtype=np.int64)
    blocks = []
    start = None
    for i, label in enumerate(labels):
        if label == int(Label.ABNORMAL):
            if start is None:
                start = i
        elif start is not None:
            blocks.append((start, i - 1))
            start = None
    if start is not None:
        blocks.append((start, labels.shape[0] - 1))
    return blocks
