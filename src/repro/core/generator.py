"""Algorithm 1: end-to-end predicate generation (Section 4).

For each numeric attribute: create a partition space (R partitions), label
partitions from the user's regions, filter noisy labels, fill the gaps with
anomaly distance multiplier δ, and extract a candidate predicate when the
filled space contains a single block of consecutive Abnormal partitions and
the normalized mean difference exceeds θ.  Categorical attributes skip the
filter/fill steps and emit ``Attr ∈ {...}`` from Abnormal partitions.

``GeneratorConfig`` exposes the paper's parameters (R, δ, θ) plus ablation
switches used by the Appendix D step-contribution study (Table 6).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.filtering import abnormal_blocks, fill_gaps, filter_partitions
from repro.core.partition import (
    CategoricalPartitionSpace,
    Label,
    NumericPartitionSpace,
)
from repro.core.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericPredicate,
    Predicate,
)
from repro.core.separation import normalize_values, region_means
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.obs import metrics, trace

__all__ = ["GeneratorConfig", "AttributeArtifacts", "PredicateGenerator"]

_PREDICATES_KEPT = metrics.REGISTRY.counter(
    "repro_generator_predicates_kept_total",
    "Candidate predicates extracted by Algorithm 1",
)
_PREDICATES_REJECTED = metrics.REGISTRY.counter(
    "repro_generator_predicates_rejected_total",
    "Attributes rejected during predicate generation",
)
_GENERATE_SECONDS = metrics.REGISTRY.histogram(
    "repro_generator_seconds",
    "Wall time of one generate_with_artifacts pass",
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable parameters of the predicate generation algorithm.

    Attributes
    ----------
    n_partitions:
        ``R``, the number of equi-width partitions for numeric attributes.
        The paper's experiments use 250 (Appendix D); Section 4.1 names
        1 000 as an upper default.
    delta:
        Anomaly distance multiplier ``δ`` for gap filling (default 10).
    theta:
        Normalized difference threshold ``θ`` gating extraction
        (default 0.2 for single causal models; the paper uses 0.05 when
        building models that will be merged).
    enable_filtering / enable_fill:
        Ablation switches for the Table 6 step-contribution study.
    min_valid_fraction:
        Degraded-telemetry gate: a numeric attribute is rejected when
        fewer than this fraction of its in-region samples are valid
        (non-NaN).  Clean datasets have a valid fraction of 1.0, so the
        gate is a no-op on the paper's original workloads.
    """

    n_partitions: int = 250
    delta: float = 10.0
    theta: float = 0.2
    enable_filtering: bool = True
    enable_fill: bool = True
    min_valid_fraction: float = 0.25

    def replace(self, **kwargs) -> "GeneratorConfig":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **kwargs)


@dataclass
class AttributeArtifacts:
    """Intermediate state of Algorithm 1 for one attribute.

    Kept for testing, visualisation, and causal-model confidence, which
    re-uses labeled partition spaces (Equation 3).
    """

    attr: str
    is_numeric: bool
    space: object
    labels_initial: np.ndarray
    labels_filtered: Optional[np.ndarray] = None
    labels_filled: Optional[np.ndarray] = None
    normalized_difference: Optional[float] = None
    predicate: Optional[Predicate] = None
    rejection: Optional[str] = None


class PredicateGenerator:
    """Generates a conjunction of explanatory predicates (Algorithm 1).

    Numeric attributes are labeled in one batched pass (all columns
    stacked into a single matrix, one offset-bincount per region) rather
    than attribute by attribute; the output is bitwise-identical to the
    serial path.  An optional :class:`repro.perf.cache.LabeledSpaceCache`
    shares labeled partition spaces (and region masks / normalized means)
    with confidence scoring, so explain-then-diagnose on the same anomaly
    labels each attribute only once.
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        cache: Optional[object] = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.cache = cache

    # ------------------------------------------------------------------
    def generate(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        attributes: Optional[Sequence[str]] = None,
    ) -> Conjunction:
        """Run Algorithm 1 over *attributes* (default: all) and conjoin."""
        artifacts = self.generate_with_artifacts(dataset, spec, attributes)
        return Conjunction(
            [a.predicate for a in artifacts.values() if a.predicate is not None]
        )

    def generate_with_artifacts(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        attributes: Optional[Sequence[str]] = None,
    ) -> Dict[str, AttributeArtifacts]:
        """Like :meth:`generate` but returns per-attribute artifacts."""
        if not trace.enabled():
            return self._generate_with_artifacts(dataset, spec, attributes)
        with trace.span(
            "generate_predicates",
            dataset=getattr(dataset, "name", None),
            attr_count=len(attributes) if attributes is not None
            else len(dataset.attributes),
            n_partitions=self.config.n_partitions,
        ) as sp:
            timings: Dict[str, float] = {}
            artifacts = self._generate_with_artifacts(
                dataset, spec, attributes, timings
            )
            for name in ("partition", "label", "filter", "fill", "extract"):
                if name in timings:
                    trace.stage(name, timings[name])
            kept = sum(1 for a in artifacts.values() if a.predicate is not None)
            sp.set(predicates_kept=kept, predicates_rejected=len(artifacts) - kept)
        return artifacts

    def _generate_with_artifacts(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        attributes: Optional[Sequence[str]] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> Dict[str, AttributeArtifacts]:
        t0 = time.perf_counter()
        start = t0
        spec.validate(dataset)
        cache = self.cache
        if cache is not None:
            abnormal, normal = cache.masks(dataset, spec)
        else:
            abnormal = spec.abnormal_mask(dataset)
            normal = spec.normal_mask(dataset)
        if timings is not None:
            now = time.perf_counter()
            timings["partition"] = now - start
            start = now
        names = list(attributes) if attributes is not None else dataset.attributes
        numeric_names = [a for a in names if dataset.is_numeric(a)]
        entries: Dict[str, object] = {}
        means_hint: Dict[str, Tuple[float, float]] = {}
        if cache is not None:
            entries = cache.entries(
                dataset, spec, numeric_names, self.config.n_partitions
            )
            means_hint = cache.peek_norm_means(dataset, spec, numeric_names)
            labeled = {
                attr: (entry.space, entry.labels_initial)
                for attr, entry in entries.items()
            }
        else:
            from repro.perf.batch import label_numeric_batch

            labeled = label_numeric_batch(
                dataset, numeric_names, abnormal, normal,
                self.config.n_partitions,
            )
        if timings is not None:
            timings["label"] = time.perf_counter() - start
        artifacts: Dict[str, AttributeArtifacts] = {}
        kept = rejected = 0
        for attr in names:
            if dataset.is_numeric(attr):
                space, labels = labeled[attr]
                artifacts[attr] = self._numeric_attribute(
                    dataset, spec, attr, abnormal, normal,
                    space, labels, entries.get(attr), timings,
                    means_hint.get(attr),
                )
            else:
                artifacts[attr] = self._categorical_attribute(
                    dataset, attr, abnormal, normal
                )
            if artifacts[attr].predicate is not None:
                kept += 1
            else:
                rejected += 1
        _PREDICATES_KEPT.inc(kept)
        _PREDICATES_REJECTED.inc(rejected)
        _GENERATE_SECONDS.observe(time.perf_counter() - t0)
        return artifacts

    # ------------------------------------------------------------------
    # Numeric attributes (all five steps)
    # ------------------------------------------------------------------
    def _numeric_attribute(
        self,
        dataset: Dataset,
        spec: RegionSpec,
        attr: str,
        abnormal: np.ndarray,
        normal: np.ndarray,
        space: NumericPartitionSpace,
        labels: np.ndarray,
        entry: Optional[object] = None,
        timings: Optional[Dict[str, float]] = None,
        means_hint: Optional[Tuple[float, float]] = None,
    ) -> AttributeArtifacts:
        values = dataset.column(attr)
        art = AttributeArtifacts(
            attr=attr, is_numeric=True, space=space, labels_initial=labels
        )

        nan = np.isnan(values)
        if nan.any():
            considered = abnormal | normal
            n_considered = int(considered.sum())
            n_valid = int((considered & ~nan).sum())
            if n_valid < self.config.min_valid_fraction * n_considered:
                art.rejection = (
                    f"degraded telemetry: only {n_valid}/{n_considered} "
                    "region samples valid"
                )
                return art

        start = time.perf_counter() if timings is not None else 0.0
        if not self.config.enable_filtering:
            filtered = labels
        elif entry is not None:
            filtered = entry.filtered_labels()
        else:
            filtered = filter_partitions(labels)
        art.labels_filtered = filtered
        if timings is not None:
            now = time.perf_counter()
            timings["filter"] = timings.get("filter", 0.0) + (now - start)
            start = now

        # When the cache entry already memoized its filtered regions
        # (seeded by explain_batch, or computed on a previous visit), a
        # non-None view proves both labels survive — skip both scans.
        both_present = (
            entry is not None
            and self.config.enable_filtering
            and entry.region_partitions(apply_filtering=True) is not None
        )

        if not both_present and not (
            filtered == int(Label.ABNORMAL)
        ).any():
            art.rejection = "no abnormal partitions after filtering"
            return art

        blocks = None
        if self.config.enable_fill:
            normal_mean_partition = None
            if not both_present and not (
                filtered == int(Label.NORMAL)
            ).any():
                normal_values = values[normal]
                if nan.any():
                    normal_values = normal_values[~np.isnan(normal_values)]
                if normal_values.size:
                    mean_normal = float(normal_values.mean())
                    normal_mean_partition = int(
                        space.partition_indices(np.asarray([mean_normal]))[0]
                    )
            if entry is not None and self.config.enable_filtering:
                # shares (and can be pre-seeded with) the cached fill —
                # entry.filtered_labels() is the `filtered` used above
                filled, blocks = entry.filled_blocks(
                    self.config.delta, normal_mean_partition
                )
            else:
                filled = fill_gaps(
                    filtered, self.config.delta, normal_mean_partition
                )
        else:
            filled = filtered
        art.labels_filled = filled
        if timings is not None:
            now = time.perf_counter()
            timings["fill"] = timings.get("fill", 0.0) + (now - start)
            start = now

        try:
            if means_hint is not None:
                mu_abnormal, mu_normal = means_hint
            elif self.cache is not None:
                mu_abnormal, mu_normal = self.cache.normalized_means(
                    dataset, spec, attr
                )
            else:
                normalized = normalize_values(values)
                mu_abnormal, mu_normal = region_means(
                    normalized, abnormal, normal
                )
            art.normalized_difference = abs(mu_abnormal - mu_normal)
            if not np.isfinite(art.normalized_difference):
                # a region with no valid samples yields a NaN mean: no evidence
                art.rejection = "degraded telemetry: region mean undefined"
                return art

            if blocks is None:
                blocks = abnormal_blocks(filled)
            if len(blocks) != 1:
                art.rejection = f"{len(blocks)} abnormal blocks (need exactly 1)"
                return art
            if art.normalized_difference <= self.config.theta:
                art.rejection = (
                    f"normalized difference {art.normalized_difference:.3f} "
                    f"<= theta {self.config.theta}"
                )
                return art

            lo, hi = blocks[0]
            if lo == 0 and hi == space.n_partitions - 1:
                art.rejection = "abnormal block spans the entire domain"
                return art
            art.predicate = self._block_to_predicate(space, lo, hi)
            return art
        finally:
            if timings is not None:
                timings["extract"] = timings.get("extract", 0.0) + (
                    time.perf_counter() - start
                )

    @staticmethod
    def _block_to_predicate(
        space: NumericPartitionSpace, start: int, end: int
    ) -> NumericPredicate:
        """Translate an Abnormal block into a simple numeric predicate.

        Blocks touching the left edge become ``Attr < ub``; blocks touching
        the right edge become ``Attr > lb``; interior blocks become ranges.
        """
        if start == 0:
            return NumericPredicate(space.attr, upper=space.upper_bound(end))
        if end == space.n_partitions - 1:
            return NumericPredicate(space.attr, lower=space.lower_bound(start))
        return NumericPredicate(
            space.attr,
            lower=space.lower_bound(start),
            upper=space.upper_bound(end),
        )

    # ------------------------------------------------------------------
    # Categorical attributes (label + extract only)
    # ------------------------------------------------------------------
    def _categorical_attribute(
        self,
        dataset: Dataset,
        attr: str,
        abnormal: np.ndarray,
        normal: np.ndarray,
    ) -> AttributeArtifacts:
        values = dataset.column(attr)
        space = CategoricalPartitionSpace(attr, values)
        labels = space.label(values, abnormal, normal)
        art = AttributeArtifacts(
            attr=attr, is_numeric=False, space=space, labels_initial=labels
        )
        abnormal_categories = [
            space.categories[i]
            for i in range(space.n_partitions)
            if labels[i] == int(Label.ABNORMAL)
        ]
        if not abnormal_categories:
            art.rejection = "no abnormal categories"
            return art
        art.predicate = CategoricalPredicate.of(attr, abnormal_categories)
        return art
