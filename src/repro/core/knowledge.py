"""Domain knowledge and secondary-symptom pruning (Section 5).

A domain rule ``Attr_i → Attr_j`` states that when predicates are extracted
on both attributes, the predicate on ``Attr_j`` is *likely* a secondary
symptom of the one on ``Attr_i``.  Because rules can be imperfect, the rule
only fires when the data corroborates the dependence: the independence
factor

    κ(Ai, Aj) = MI(Ai, Aj)² / (H(Ai) · H(Aj))

is compared to a threshold κt (default 0.15).  κ < κt means the attributes
look independent in this dataset — the rule does not apply and both
predicates stay; κ ≥ κt confirms the dependence and the effect predicate is
pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.predicates import Predicate
from repro.data.dataset import Dataset

__all__ = [
    "DomainRule",
    "MYSQL_LINUX_RULES",
    "entropy",
    "joint_entropy",
    "mutual_information",
    "independence_factor",
    "prune_secondary_symptoms",
]

DEFAULT_KAPPA_THRESHOLD = 0.15

#: Histogram bins γ for the joint distribution.  The paper does not state
#: its value; with the 100-600-row datasets of the evaluation, γ = 15 keeps
#: the finite-sample MI bias of *independent* attribute pairs well below
#: the κt = 0.15 threshold while strongly dependent pairs score ≈ 0.5+.
DEFAULT_BINS = 15


@dataclass(frozen=True)
class DomainRule:
    """``cause_attr → effect_attr``: effect is likely a secondary symptom.

    Rules are directional; ``a → b`` and ``b → a`` must not coexist
    (condition ii of Section 5).
    """

    cause_attr: str
    effect_attr: str

    def __post_init__(self) -> None:
        if self.cause_attr == self.effect_attr:
            raise ValueError("a rule cannot relate an attribute to itself")

    def __str__(self) -> str:
        return f"{self.cause_attr} → {self.effect_attr}"


def validate_rules(rules: Sequence[DomainRule]) -> None:
    """Raise when a pair of rules violates the no-inverse condition."""
    seen = {(r.cause_attr, r.effect_attr) for r in rules}
    for cause, effect in seen:
        if (effect, cause) in seen:
            raise ValueError(
                f"rules {cause} → {effect} and {effect} → {cause} cannot coexist"
            )


#: The four MySQL-on-Linux rules from Section 5, expressed over the metric
#: names emitted by :mod:`repro.engine.metrics`.
MYSQL_LINUX_RULES: List[DomainRule] = [
    DomainRule("mysql.cpu_usage", "os.cpu_usage"),
    DomainRule("os.allocated_pages", "os.free_pages"),
    DomainRule("os.swap_used_mb", "os.swap_free_mb"),
    DomainRule("os.cpu_usage", "os.cpu_idle"),
]


# ----------------------------------------------------------------------
# Entropy / mutual information over discretized attributes
# ----------------------------------------------------------------------
def _discretize(values: np.ndarray, is_numeric: bool, bins: int) -> np.ndarray:
    """Map values to integer bin indices (γ equi-width bins when numeric)."""
    if is_numeric:
        values = np.asarray(values, dtype=np.float64)
        lo = float(values.min())
        hi = float(values.max())
        if hi <= lo:
            return np.zeros(values.shape, dtype=np.int64)
        idx = np.floor((values - lo) / (hi - lo) * bins).astype(np.int64)
        return np.clip(idx, 0, bins - 1)
    categories = {c: i for i, c in enumerate(sorted({str(v) for v in values}))}
    return np.asarray([categories[str(v)] for v in values], dtype=np.int64)


def _entropy_from_probs(probs: np.ndarray) -> float:
    probs = probs[probs > 0]
    return float(-(probs * np.log2(probs)).sum())


def entropy(
    values: np.ndarray, is_numeric: bool = True, bins: int = DEFAULT_BINS
) -> float:
    """Shannon entropy (bits) of the discretized value distribution."""
    idx = _discretize(values, is_numeric, bins)
    counts = np.bincount(idx)
    return _entropy_from_probs(counts / counts.sum())


def joint_entropy(
    x: np.ndarray,
    y: np.ndarray,
    x_numeric: bool = True,
    y_numeric: bool = True,
    bins: int = DEFAULT_BINS,
) -> float:
    """Joint Shannon entropy from the 2-D histogram of discretized values."""
    xi = _discretize(x, x_numeric, bins)
    yi = _discretize(y, y_numeric, bins)
    n_y = int(yi.max()) + 1
    joint = np.bincount(xi * n_y + yi)
    return _entropy_from_probs(joint / joint.sum())


def mutual_information(
    x: np.ndarray,
    y: np.ndarray,
    x_numeric: bool = True,
    y_numeric: bool = True,
    bins: int = DEFAULT_BINS,
) -> float:
    """``MI(X, Y) = H(X) + H(Y) − H(X, Y)`` over discretized values."""
    hx = entropy(x, x_numeric, bins)
    hy = entropy(y, y_numeric, bins)
    hxy = joint_entropy(x, y, x_numeric, y_numeric, bins)
    return max(hx + hy - hxy, 0.0)


def independence_factor(
    x: np.ndarray,
    y: np.ndarray,
    x_numeric: bool = True,
    y_numeric: bool = True,
    bins: int = DEFAULT_BINS,
) -> float:
    """``κ = MI² / (H(X) · H(Y))`` — 0 when independent, → 1 when dependent.

    A constant attribute has zero entropy and carries no information about
    the other; κ is defined as 0 in that degenerate case.
    """
    hx = entropy(x, x_numeric, bins)
    hy = entropy(y, y_numeric, bins)
    if hx <= 0.0 or hy <= 0.0:
        return 0.0
    mi = mutual_information(x, y, x_numeric, y_numeric, bins)
    return float(mi * mi / (hx * hy))


# ----------------------------------------------------------------------
# Pruning
# ----------------------------------------------------------------------
def prune_secondary_symptoms(
    predicates: Sequence[Predicate],
    dataset: Dataset,
    rules: Sequence[DomainRule],
    kappa_threshold: float = DEFAULT_KAPPA_THRESHOLD,
    bins: int = DEFAULT_BINS,
) -> Tuple[List[Predicate], List[Predicate]]:
    """Apply domain rules, returning ``(kept, pruned)`` predicates.

    A rule ``i → j`` fires only when predicates exist on both attributes
    *and* the independence test fails (κ ≥ κt), confirming the dependence
    in the data at hand; then the predicate on ``j`` is pruned.
    """
    validate_rules(rules)
    by_attr: Dict[str, Predicate] = {p.attr: p for p in predicates}
    pruned_attrs = set()
    for rule in rules:
        if rule.cause_attr not in by_attr or rule.effect_attr not in by_attr:
            continue
        if rule.cause_attr not in dataset or rule.effect_attr not in dataset:
            continue
        kappa = independence_factor(
            dataset.column(rule.cause_attr),
            dataset.column(rule.effect_attr),
            dataset.is_numeric(rule.cause_attr),
            dataset.is_numeric(rule.effect_attr),
            bins,
        )
        if kappa >= kappa_threshold:
            pruned_attrs.add(rule.effect_attr)
    kept = [p for p in predicates if p.attr not in pruned_attrs]
    pruned = [p for p in predicates if p.attr in pruned_attrs]
    return kept, pruned
