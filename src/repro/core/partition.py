"""Partition spaces: equi-width discretization and labeling (Sections 4.1-4.2).

For a numeric attribute, DBSherlock discretizes the value range into ``R``
equi-width partitions; for a categorical attribute, one partition per
distinct value.  Each partition is then labeled:

* numeric — ``Abnormal`` when every tuple falling in it is abnormal,
  ``Normal`` when every tuple is normal, ``Empty`` otherwise (no tuples, or
  a mix of both regions);
* categorical — by majority: ``Abnormal`` when more abnormal than normal
  tuples fall in it, ``Normal`` for the converse, ``Empty`` on ties.

Tuples outside both regions are ignored (Section 4).

Degraded telemetry: NaN cells (dropped samples, dead probes) are treated
as *absent* — the value range is taken over the valid samples only, NaN
values map to partition index ``-1``, and labeling counts only valid
tuples.  An attribute with no valid samples (or a constant one) collapses
to a single neutral partition rather than producing NaN/inf bounds.  The
clean path is bitwise-unchanged: every NaN branch is gated on a NaN
actually being present.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = ["Label", "NumericPartitionSpace", "CategoricalPartitionSpace"]


class Label(enum.IntEnum):
    """Partition labels used throughout Algorithm 1."""

    EMPTY = 0
    NORMAL = 1
    ABNORMAL = 2


class NumericPartitionSpace:
    """``R`` equi-width partitions over a numeric attribute's observed range.

    Partition ``Pj`` covers ``[lb(Pj), ub(Pj))``; values equal to the global
    maximum are assigned to the last partition so every tuple belongs to
    exactly one partition.
    """

    def __init__(self, attr: str, values: np.ndarray, n_partitions: int) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be at least 1")
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot partition an empty attribute")
        self.attr = attr
        if np.isnan(values).any():
            valid = values[~np.isnan(values)]
            if valid.size:
                self.minimum = float(valid.min())
                self.maximum = float(valid.max())
            else:
                # no valid samples at all: a neutral single partition
                self.minimum = self.maximum = 0.0
        else:
            self.minimum = float(values.min())
            self.maximum = float(values.max())
        if self.maximum > self.minimum:
            self.n_partitions = int(n_partitions)
        else:
            # A constant attribute collapses to a single partition.
            self.n_partitions = 1
        self.width = (self.maximum - self.minimum) / self.n_partitions

    def lower_bound(self, index: int) -> float:
        """``lb(P_index)``."""
        self._check_index(index)
        return self.minimum + index * self.width

    def upper_bound(self, index: int) -> float:
        """``ub(P_index)``."""
        self._check_index(index)
        if index == self.n_partitions - 1:
            return self.maximum
        return self.minimum + (index + 1) * self.width

    def midpoint(self, index: int) -> float:
        """Representative value of a partition (its centre)."""
        self._check_index(index)
        if self.width == 0:
            return self.minimum
        return self.lower_bound(index) + self.width / 2.0

    def midpoints(self) -> np.ndarray:
        """Representative values of every partition, vectorized.

        Bitwise-identical to ``[midpoint(i) for i in range(n_partitions)]``
        (same association order: ``(minimum + i*width) + width/2``).
        """
        if self.width == 0:
            return np.full(self.n_partitions, self.minimum, dtype=np.float64)
        lowers = (
            self.minimum
            + np.arange(self.n_partitions, dtype=np.float64) * self.width
        )
        return lowers + self.width / 2.0

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_partitions:
            raise IndexError(f"partition index {index} out of range")

    def partition_indices(self, values: np.ndarray) -> np.ndarray:
        """Partition index of each value (max value maps to the last one).

        NaN values map to ``-1`` (no partition); callers that count
        tuples must ignore negative indices.
        """
        values = np.asarray(values, dtype=np.float64)
        nan_mask = np.isnan(values)
        has_nan = bool(nan_mask.any())
        if self.width == 0:
            idx = np.zeros(values.shape, dtype=np.int64)
        else:
            with np.errstate(invalid="ignore"):
                raw = np.floor((values - self.minimum) / self.width)
            if has_nan:
                raw = np.where(nan_mask, 0.0, raw)
            idx = np.clip(raw.astype(np.int64), 0, self.n_partitions - 1)
        if has_nan:
            idx[nan_mask] = -1
        return idx

    def label(
        self,
        values: np.ndarray,
        abnormal_mask: np.ndarray,
        normal_mask: np.ndarray,
    ) -> np.ndarray:
        """Label every partition from the region masks (Section 4.2).

        Returns an ``int`` array of :class:`Label` values, one per partition.
        NaN tuples (partition index ``-1``) are ignored on both sides.
        """
        idx = self.partition_indices(values)
        if (idx < 0).any():
            valid = idx >= 0
            abnormal_mask = abnormal_mask & valid
            normal_mask = normal_mask & valid
        counts_abnormal = np.bincount(
            idx[abnormal_mask], minlength=self.n_partitions
        )
        counts_normal = np.bincount(idx[normal_mask], minlength=self.n_partitions)
        labels = np.full(self.n_partitions, int(Label.EMPTY), dtype=np.int64)
        labels[(counts_abnormal > 0) & (counts_normal == 0)] = int(Label.ABNORMAL)
        labels[(counts_normal > 0) & (counts_abnormal == 0)] = int(Label.NORMAL)
        return labels

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, attr: str, n_partitions: int
    ) -> "NumericPartitionSpace":
        """Build the partition space over all rows of *dataset*."""
        return cls(attr, dataset.column(attr), n_partitions)

    @classmethod
    def from_stats(
        cls, attr: str, minimum: float, maximum: float, n_partitions: int
    ) -> "NumericPartitionSpace":
        """Build a space from precomputed min/max (the batched labeler).

        Applies exactly the constructor's rules (constant range collapses
        to one partition; ``width = (max - min) / n_partitions``) without
        re-scanning the value vector.
        """
        if n_partitions < 1:
            raise ValueError("n_partitions must be at least 1")
        space = cls.__new__(cls)
        space.attr = attr
        space.minimum = float(minimum)
        space.maximum = float(maximum)
        if not (np.isfinite(space.minimum) and np.isfinite(space.maximum)):
            # degenerate stats (e.g. an all-NaN column): neutral space
            space.minimum = space.maximum = 0.0
        if space.maximum > space.minimum:
            space.n_partitions = int(n_partitions)
        else:
            space.n_partitions = 1
        space.width = (space.maximum - space.minimum) / space.n_partitions
        return space

    def labeled_from_spec(
        self, dataset: Dataset, spec: RegionSpec
    ) -> np.ndarray:
        """Convenience: label using the spec's region masks on *dataset*."""
        return self.label(
            dataset.column(self.attr),
            spec.abnormal_mask(dataset),
            spec.normal_mask(dataset),
        )


class CategoricalPartitionSpace:
    """One partition per distinct category value (order is irrelevant)."""

    def __init__(self, attr: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=object)
        if values.size == 0:
            raise ValueError("cannot partition an empty attribute")
        self.attr = attr
        self.categories: List[str] = sorted({str(v) for v in values})
        # Sorted unicode array for vectorized searchsorted lookups; numpy's
        # codepoint ordering matches Python's str ordering.
        self._categories_arr = np.asarray(self.categories)

    @property
    def n_partitions(self) -> int:
        """Number of distinct categories."""
        return len(self.categories)

    def partition_indices(self, values: np.ndarray) -> np.ndarray:
        """Partition index of each value; unseen categories map to -1.

        Vectorized: the distinct input values (usually few) are located in
        the sorted category array via ``searchsorted``, then scattered
        back through ``np.unique``'s inverse mapping.
        """
        values = np.asarray(values, dtype=object)
        if values.size == 0:
            return np.zeros(0, dtype=np.int64)
        strings = values.astype(str)
        distinct, inverse = np.unique(strings, return_inverse=True)
        pos = np.searchsorted(self._categories_arr, distinct)
        pos = np.clip(pos, 0, self.n_partitions - 1)
        found = self._categories_arr[pos] == distinct
        mapped = np.where(found, pos, -1).astype(np.int64)
        return mapped[inverse.reshape(strings.shape)]

    def label(
        self,
        values: np.ndarray,
        abnormal_mask: np.ndarray,
        normal_mask: np.ndarray,
    ) -> np.ndarray:
        """Majority labeling for categorical partitions (Section 4.2)."""
        idx = self.partition_indices(values)
        labels = np.full(self.n_partitions, int(Label.EMPTY), dtype=np.int64)
        valid = idx >= 0
        counts_abnormal = np.bincount(
            idx[valid & abnormal_mask], minlength=self.n_partitions
        )
        counts_normal = np.bincount(
            idx[valid & normal_mask], minlength=self.n_partitions
        )
        labels[counts_abnormal > counts_normal] = int(Label.ABNORMAL)
        labels[counts_normal > counts_abnormal] = int(Label.NORMAL)
        return labels

    @classmethod
    def from_dataset(cls, dataset: Dataset, attr: str) -> "CategoricalPartitionSpace":
        """Build the partition space over all rows of *dataset*."""
        return cls(attr, dataset.column(attr))

    def labeled_from_spec(self, dataset: Dataset, spec: RegionSpec) -> np.ndarray:
        """Convenience: label using the spec's region masks on *dataset*."""
        return self.label(
            dataset.column(self.attr),
            spec.abnormal_mask(dataset),
            spec.normal_mask(dataset),
        )
