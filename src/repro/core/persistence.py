"""Persistence for causal models: the knowledge DBAs accumulate.

Causal models are the long-lived asset of DBSherlock — each one encodes a
confirmed diagnosis — so they must outlive the process.  Models and whole
stores serialize to a small explicit JSON schema (no pickle: the files are
meant to be inspected, diffed, and shared between DBAs, like dbseer's
saved models).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.causal import CausalModel, CausalModelStore
from repro.faults import fs as _fs
from repro.core.predicates import (
    CategoricalPredicate,
    NumericPredicate,
    Predicate,
)
from repro.schema.fingerprint import AttributeFingerprint

__all__ = [
    "predicate_to_dict",
    "predicate_from_dict",
    "model_to_dict",
    "model_from_dict",
    "save_store",
    "load_store",
]

# Version 2 added per-attribute fingerprints; version-1 files (no
# fingerprints) still load, their models just reconcile by name only.
SCHEMA_VERSION = 2
SUPPORTED_SCHEMAS = frozenset({1, 2})


def predicate_to_dict(predicate: Predicate) -> Dict:
    """JSON-safe representation of one predicate."""
    if isinstance(predicate, NumericPredicate):
        return {
            "kind": "numeric",
            "attr": predicate.attr,
            "lower": predicate.lower,
            "upper": predicate.upper,
        }
    if isinstance(predicate, CategoricalPredicate):
        return {
            "kind": "categorical",
            "attr": predicate.attr,
            "categories": sorted(predicate.categories),
        }
    raise TypeError(f"unknown predicate type: {type(predicate)!r}")


def predicate_from_dict(payload: Dict) -> Predicate:
    """Inverse of :func:`predicate_to_dict`."""
    kind = payload.get("kind")
    if kind == "numeric":
        return NumericPredicate(
            payload["attr"], lower=payload["lower"], upper=payload["upper"]
        )
    if kind == "categorical":
        return CategoricalPredicate.of(payload["attr"], payload["categories"])
    raise ValueError(f"unknown predicate kind: {kind!r}")


def model_to_dict(model: CausalModel) -> Dict:
    """JSON-safe representation of one causal model."""
    payload = {
        "cause": model.cause,
        "n_merged": model.n_merged,
        "predicates": [predicate_to_dict(p) for p in model.predicates],
    }
    if model.fingerprints:
        payload["fingerprints"] = {
            attr: fp.to_dict()
            for attr, fp in sorted(model.fingerprints.items())
        }
    return payload


def model_from_dict(payload: Dict) -> CausalModel:
    """Inverse of :func:`model_to_dict`."""
    return CausalModel(
        cause=payload["cause"],
        predicates=[predicate_from_dict(p) for p in payload["predicates"]],
        n_merged=int(payload.get("n_merged", 1)),
        fingerprints={
            attr: AttributeFingerprint.from_dict(fp)
            for attr, fp in payload.get("fingerprints", {}).items()
        },
    )


def save_store(store: CausalModelStore, path: Union[str, Path]) -> None:
    """Atomically write every model in *store* to a JSON file.

    Write-to-temp + fsync + rename (through the fault-injectable storage
    shim), so a crash or I/O error mid-save can never leave a torn model
    store — the previous file survives intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "models": [model_to_dict(m) for m in store],
    }
    fsio = _fs.get_fs()
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w") as fh:
            fsio.write(fh, json.dumps(payload, indent=2, sort_keys=True))
            fsio.fsync(fh)
        fsio.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def load_store(
    path: Union[str, Path], merge_on_add: bool = True
) -> CausalModelStore:
    """Load a store previously written by :func:`save_store`."""
    path = Path(path)
    payload = json.loads(_fs.get_fs().read_text(path))
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported causal-model schema {schema!r} "
            f"(expected one of {sorted(SUPPORTED_SCHEMAS)})"
        )
    store = CausalModelStore(merge_on_add=merge_on_add)
    for model_payload in payload.get("models", []):
        store.add(model_from_dict(model_payload))
    return store
