"""Predicate types: the vocabulary of DBSherlock explanations.

Section 3 of the paper restricts explanations to conjunctions of *simple*
predicates, one per attribute:

* numeric — ``Attr < x``, ``Attr > x``, or ``x < Attr < y`` (open bounds);
* categorical — ``Attr ∈ {c1, ..., cl}``.

Section 6.2 defines how two predicates over the same attribute merge when
combining causal models that share a cause: boundaries widen so the merged
predicate covers both, and numeric predicates with conflicting directions
are inconsistent (the attribute is dropped from the merged model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "NumericPredicate",
    "CategoricalPredicate",
    "Predicate",
    "Conjunction",
    "InconsistentPredicates",
]


class InconsistentPredicates(ValueError):
    """Raised when merging predicates with conflicting directions."""


@dataclass(frozen=True)
class NumericPredicate:
    """``lower < Attr < upper`` with either bound optionally open.

    ``lower is None`` encodes ``Attr < upper``; ``upper is None`` encodes
    ``Attr > lower``.  At least one bound must be present.
    """

    attr: str
    lower: Optional[float] = None
    upper: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ValueError(f"predicate on {self.attr!r} needs at least one bound")
        if (
            self.lower is not None
            and self.upper is not None
            and self.upper <= self.lower
        ):
            raise ValueError(
                f"predicate on {self.attr!r} has empty range "
                f"({self.lower}, {self.upper})"
            )

    @property
    def direction(self) -> str:
        """``'gt'``, ``'lt'``, or ``'range'``."""
        if self.lower is not None and self.upper is not None:
            return "range"
        return "gt" if self.lower is not None else "lt"

    def evaluate_values(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values satisfying the predicate."""
        values = np.asarray(values, dtype=np.float64)
        if self.lower is not None:
            mask = values > self.lower
            if self.upper is not None:
                mask &= values < self.upper
            return mask
        if self.upper is not None:
            return values < self.upper
        return np.ones(values.shape, dtype=bool)

    def evaluate(self, dataset: Dataset) -> np.ndarray:
        """Boolean mask of dataset rows satisfying the predicate."""
        return self.evaluate_values(dataset.column(self.attr))

    def merge(self, other: "NumericPredicate") -> "NumericPredicate":
        """Widen to cover both predicates (Section 6.2).

        ``A > 10`` merged with ``A > 15`` gives ``A > 10``; ``C < 20`` with
        ``C < 15`` gives ``C < 20``; two ranges give their convex hull.
        Conflicting directions (e.g. ``A > 10`` vs ``A < 30``) raise
        :class:`InconsistentPredicates`.
        """
        if other.attr != self.attr:
            raise ValueError("cannot merge predicates on different attributes")
        if self.direction != other.direction:
            raise InconsistentPredicates(
                f"{self.attr}: {self.direction} vs {other.direction}"
            )
        if self.direction == "gt":
            assert self.lower is not None and other.lower is not None
            return NumericPredicate(self.attr, lower=min(self.lower, other.lower))
        if self.direction == "lt":
            assert self.upper is not None and other.upper is not None
            return NumericPredicate(self.attr, upper=max(self.upper, other.upper))
        assert None not in (self.lower, self.upper, other.lower, other.upper)
        return NumericPredicate(
            self.attr,
            lower=min(self.lower, other.lower),  # type: ignore[type-var]
            upper=max(self.upper, other.upper),  # type: ignore[type-var]
        )

    def __str__(self) -> str:
        if self.direction == "gt":
            return f"{self.attr} > {self.lower:g}"
        if self.direction == "lt":
            return f"{self.attr} < {self.upper:g}"
        return f"{self.lower:g} < {self.attr} < {self.upper:g}"


@dataclass(frozen=True)
class CategoricalPredicate:
    """``Attr ∈ {c1, ..., cl}`` over a categorical attribute."""

    attr: str
    categories: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.categories:
            raise ValueError(f"predicate on {self.attr!r} has no categories")

    @classmethod
    def of(cls, attr: str, categories: Iterable[str]) -> "CategoricalPredicate":
        """Convenience constructor accepting any iterable of labels."""
        return cls(attr, frozenset(categories))

    def evaluate_values(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values inside the category set."""
        return np.isin(np.asarray(values, dtype=object), list(self.categories))

    def evaluate(self, dataset: Dataset) -> np.ndarray:
        """Boolean mask of dataset rows satisfying the predicate."""
        return self.evaluate_values(dataset.column(self.attr))

    def merge(self, other: "CategoricalPredicate") -> "CategoricalPredicate":
        """Union of both category sets, so the merge covers both models.

        The paper's Section 6.2 merge rule states the merged predicate must
        "include the boundaries (or categories) of both"; its worked example
        accordingly lists ``E ∈ {xx, yy, zz}`` in the merged model.  (One
        sentence of the example text says ``{xx, zz}``, which contradicts
        both the stated rule and the final model — we follow the rule.)
        """
        if other.attr != self.attr:
            raise ValueError("cannot merge predicates on different attributes")
        return CategoricalPredicate(self.attr, self.categories | other.categories)

    def __str__(self) -> str:
        cats = ", ".join(sorted(self.categories))
        return f"{self.attr} ∈ {{{cats}}}"


Predicate = Union[NumericPredicate, CategoricalPredicate]


class Conjunction:
    """An ordered conjunction of simple predicates (at most one per attribute)."""

    def __init__(self, predicates: Sequence[Predicate] = ()) -> None:
        self._predicates: List[Predicate] = []
        seen = set()
        for pred in predicates:
            if pred.attr in seen:
                raise ValueError(f"duplicate predicate attribute {pred.attr!r}")
            seen.add(pred.attr)
            self._predicates.append(pred)

    @property
    def predicates(self) -> List[Predicate]:
        """The member predicates, in insertion order."""
        return list(self._predicates)

    @property
    def attributes(self) -> List[str]:
        """Attributes constrained by this conjunction."""
        return [p.attr for p in self._predicates]

    def evaluate(self, dataset: Dataset) -> np.ndarray:
        """Rows satisfying *every* predicate (all-True when empty)."""
        mask = np.ones(dataset.n_rows, dtype=bool)
        for pred in self._predicates:
            if pred.attr in dataset:
                mask &= pred.evaluate(dataset)
            else:
                mask &= False
        return mask

    def __len__(self) -> int:
        return len(self._predicates)

    def __iter__(self):
        return iter(self._predicates)

    def __bool__(self) -> bool:
        return bool(self._predicates)

    def __str__(self) -> str:
        return " ∧ ".join(str(p) for p in self._predicates) or "(empty)"

    def __repr__(self) -> str:
        return f"Conjunction({self._predicates!r})"
