"""Separation power and attribute normalization (Equations 1 and 2).

The separation power of a predicate is the fraction of abnormal tuples it
covers minus the fraction of normal tuples it covers; DBSherlock searches
for predicates maximising it.  Normalization maps each numeric attribute to
[0, 1] so the ``|µA − µN| > θ`` gate (Section 4.5) is scale free.
"""

from __future__ import annotations

import warnings
from typing import Tuple

import numpy as np

from repro.core.predicates import Predicate
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = [
    "separation_power",
    "normalized_difference",
    "normalize_values",
    "region_means",
]


def separation_power(
    predicate: Predicate, dataset: Dataset, spec: RegionSpec
) -> float:
    """Equation 1: ``|Pred(TA)|/|TA| − |Pred(TN)|/|TN|`` over raw tuples."""
    abnormal = spec.abnormal_mask(dataset)
    normal = spec.normal_mask(dataset)
    n_abnormal = int(abnormal.sum())
    n_normal = int(normal.sum())
    if n_abnormal == 0 or n_normal == 0:
        raise ValueError("both regions must contain tuples")
    satisfied = predicate.evaluate(dataset)
    ratio_abnormal = float((satisfied & abnormal).sum()) / n_abnormal
    ratio_normal = float((satisfied & normal).sum()) / n_normal
    return ratio_abnormal - ratio_normal


def normalize_values(values: np.ndarray) -> np.ndarray:
    """Equation 2: map values to [0, 1]; constant vectors map to zeros.

    NaN cells (degraded telemetry) are ignored when computing the range
    and stay NaN in the output; downstream consumers either gate on them
    (Equation 4) or impute them (the detector's clustering stage).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    nan_mask = np.isnan(values)
    if nan_mask.any():
        valid = values[~nan_mask]
        if valid.size == 0:
            return values.copy()  # all-NaN stays all-NaN
        lo = float(valid.min())
        hi = float(valid.max())
        span = hi - lo
        if span <= 0:
            out = np.zeros_like(values)
            out[nan_mask] = np.nan
            return out
        return (values - lo) / span
    lo = float(values.min())
    hi = float(values.max())
    span = hi - lo
    if span <= 0:
        return np.zeros_like(values)
    return (values - lo) / span


def region_means(
    values: np.ndarray, abnormal: np.ndarray, normal: np.ndarray
) -> Tuple[float, float]:
    """Mean of *values* over the abnormal and normal row masks.

    NaN cells are excluded; a region with no valid samples yields a NaN
    mean, which callers treat as "no evidence" (the θ gate rejects it).
    """
    if not abnormal.any() or not normal.any():
        raise ValueError("both regions must contain tuples")
    values = np.asarray(values, dtype=np.float64)
    if np.isnan(values).any():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return (
                float(np.nanmean(values[abnormal])),
                float(np.nanmean(values[normal])),
            )
    return float(values[abnormal].mean()), float(values[normal].mean())


def normalized_difference(
    attr: str, dataset: Dataset, spec: RegionSpec
) -> float:
    """``d = |µA − µN|`` of the normalized attribute (Section 4.5 gate)."""
    if not dataset.is_numeric(attr):
        raise TypeError(f"attribute {attr!r} is categorical")
    normalized = normalize_values(dataset.column(attr))
    mu_abnormal, mu_normal = region_means(
        normalized, spec.abnormal_mask(dataset), spec.normal_mask(dataset)
    )
    return abs(mu_abnormal - mu_normal)
