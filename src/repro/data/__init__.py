"""Timestamp-aligned telemetry containers and preprocessing.

This subpackage implements the data model described in Section 2.1 of the
paper: every row is a 1-second snapshot ``(Timestamp, Attr1, ..., Attrk)``
where attributes mix numeric statistics (OS, DBMS, transaction aggregates)
and categorical metadata.
"""

from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.data.loader import load_dataset_csv, save_dataset_csv
from repro.data.preprocess import (
    AlignedLogBuilder,
    TransactionRecord,
    aggregate_transactions,
    align_logs,
)

__all__ = [
    "Dataset",
    "Region",
    "RegionSpec",
    "load_dataset_csv",
    "save_dataset_csv",
    "AlignedLogBuilder",
    "TransactionRecord",
    "aggregate_transactions",
    "align_logs",
]
