"""The ``Dataset`` container: a timestamp-aligned attribute matrix.

DBSherlock consumes rows of the form ``(Timestamp, Attr1, ..., Attrk)``
(Section 2.1 of the paper) where most attributes are numeric statistics and
a few are categorical.  ``Dataset`` stores numeric attributes as float64
columns and categorical attributes as object (string) columns, all aligned
on a shared 1-D timestamp vector.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["Dataset"]


class Dataset:
    """A timestamp-aligned table of telemetry attributes.

    Parameters
    ----------
    timestamps:
        1-D array of sample times (seconds).  Must be strictly increasing.
    numeric:
        Mapping of attribute name to a 1-D float array, one value per
        timestamp.
    categorical:
        Mapping of attribute name to a 1-D array of category labels
        (strings), one value per timestamp.
    name:
        Optional human-readable label (e.g. ``"tpcc/cpu_saturation/45s"``).
    """

    def __init__(
        self,
        timestamps: Sequence[float],
        numeric: Optional[Mapping[str, Sequence[float]]] = None,
        categorical: Optional[Mapping[str, Sequence[str]]] = None,
        name: str = "",
    ) -> None:
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        if self.timestamps.ndim != 1:
            raise ValueError("timestamps must be one-dimensional")
        if self.timestamps.size > 1 and not np.all(np.diff(self.timestamps) > 0):
            raise ValueError("timestamps must be strictly increasing")
        self.name = name

        self._numeric: Dict[str, np.ndarray] = {}
        self._categorical: Dict[str, np.ndarray] = {}
        for attr, values in (numeric or {}).items():
            self._add_numeric(attr, values)
        for attr, values in (categorical or {}).items():
            self._add_categorical(attr, values)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _check_length(self, attr: str, values: np.ndarray) -> None:
        if values.shape != self.timestamps.shape:
            raise ValueError(
                f"attribute {attr!r} has {values.shape[0] if values.ndim else 0} "
                f"values but the dataset has {self.timestamps.shape[0]} rows"
            )

    def _add_numeric(self, attr: str, values: Sequence[float]) -> None:
        if attr in self._numeric or attr in self._categorical:
            raise ValueError(f"duplicate attribute name: {attr!r}")
        arr = np.asarray(values, dtype=np.float64)
        self._check_length(attr, arr)
        self._numeric[attr] = arr

    def _add_categorical(self, attr: str, values: Sequence[str]) -> None:
        if attr in self._numeric or attr in self._categorical:
            raise ValueError(f"duplicate attribute name: {attr!r}")
        arr = np.asarray(values, dtype=object)
        self._check_length(attr, arr)
        self._categorical[attr] = arr

    @classmethod
    def from_rows(
        cls,
        timestamps: Sequence[float],
        rows: Sequence[Mapping[str, object]],
        name: str = "",
    ) -> "Dataset":
        """Build a dataset from per-row dictionaries.

        Attribute types are inferred from the first row: ``str`` values
        become categorical attributes, everything else numeric.
        """
        if len(rows) != len(timestamps):
            raise ValueError("rows and timestamps must have equal length")
        if not rows:
            return cls(timestamps, name=name)
        numeric: Dict[str, List[float]] = {}
        categorical: Dict[str, List[str]] = {}
        first = rows[0]
        for attr, value in first.items():
            if isinstance(value, str):
                categorical[attr] = []
            else:
                numeric[attr] = []
        for row in rows:
            if set(row) != set(first):
                raise ValueError("all rows must share the same attribute set")
            for attr in numeric:
                numeric[attr].append(float(row[attr]))  # type: ignore[arg-type]
            for attr in categorical:
                categorical[attr].append(str(row[attr]))
        return cls(timestamps, numeric=numeric, categorical=categorical, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of aligned samples."""
        return int(self.timestamps.shape[0])

    @property
    def numeric_attributes(self) -> List[str]:
        """Names of numeric attributes, in insertion order."""
        return list(self._numeric)

    @property
    def categorical_attributes(self) -> List[str]:
        """Names of categorical attributes, in insertion order."""
        return list(self._categorical)

    @property
    def attributes(self) -> List[str]:
        """All attribute names (numeric first, then categorical)."""
        return self.numeric_attributes + self.categorical_attributes

    def is_numeric(self, attr: str) -> bool:
        """True when *attr* is a numeric attribute of this dataset."""
        if attr in self._numeric:
            return True
        if attr in self._categorical:
            return False
        raise KeyError(attr)

    def column(self, attr: str) -> np.ndarray:
        """Return the value vector for *attr* (float64 or object array)."""
        if attr in self._numeric:
            return self._numeric[attr]
        if attr in self._categorical:
            return self._categorical[attr]
        raise KeyError(attr)

    def __contains__(self, attr: object) -> bool:
        return attr in self._numeric or attr in self._categorical

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, rows={self.n_rows}, "
            f"numeric={len(self._numeric)}, categorical={len(self._categorical)})"
        )

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray, name: str = "") -> "Dataset":
        """Return a new dataset containing rows where *mask* is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.timestamps.shape:
            raise ValueError("mask must have one entry per row")
        return Dataset(
            self.timestamps[mask],
            numeric={a: v[mask] for a, v in self._numeric.items()},
            categorical={a: v[mask] for a, v in self._categorical.items()},
            name=name or self.name,
        )

    def rename_attributes(self, mapping: Mapping[str, str]) -> "Dataset":
        """Return a copy with attributes renamed per ``{old: new}``.

        Column order and dtypes are preserved; unknown keys are ignored.
        A rename that collides with a *kept* attribute keeps the displaced
        column under ``"<name>~orig"`` rather than dropping data.
        """
        targets = set(mapping.values())

        def new_name(attr: str) -> str:
            if attr in mapping:
                return mapping[attr]
            return f"{attr}~orig" if attr in targets else attr

        numeric = {new_name(a): v for a, v in self._numeric.items()}
        categorical = {new_name(a): v for a, v in self._categorical.items()}
        if len(numeric) + len(categorical) != len(self._numeric) + len(
            self._categorical
        ):
            raise ValueError("rename collapses two attributes onto one name")
        return Dataset(
            self.timestamps,
            numeric=numeric,
            categorical=categorical,
            name=self.name,
        )

    def drop_attributes(self, attrs: Iterable[str]) -> "Dataset":
        """Return a copy without the named attributes."""
        drop = set(attrs)
        return Dataset(
            self.timestamps,
            numeric={a: v for a, v in self._numeric.items() if a not in drop},
            categorical={a: v for a, v in self._categorical.items() if a not in drop},
            name=self.name,
        )

    def time_mask(self, start: float, end: float) -> np.ndarray:
        """Boolean mask of rows whose timestamp lies in ``[start, end]``."""
        return (self.timestamps >= start) & (self.timestamps <= end)

    def valid_mask(self, attr: str) -> np.ndarray:
        """Boolean mask of rows where *attr* has a valid (non-NaN) value.

        Categorical attributes are always fully valid (missing samples are
        represented by carried-forward labels, never NaN).
        """
        values = self.column(attr)
        if not self.is_numeric(attr):
            return np.ones(self.n_rows, dtype=bool)
        return ~np.isnan(values)

    def n_valid(self, attr: str) -> int:
        """Number of rows where *attr* has a valid (non-NaN) value."""
        return int(self.valid_mask(attr).sum())

    def normalized(self, attr: str) -> np.ndarray:
        """Normalize a numeric attribute to [0, 1] (Equation 2 of the paper).

        An attribute with zero range normalizes to all-zeros, matching the
        convention that constant attributes carry no separation power.
        NaN cells (degraded telemetry) are excluded from the range and
        stay NaN in the output.
        """
        values = self.column(attr)
        if not self.is_numeric(attr):
            raise TypeError(f"attribute {attr!r} is categorical")
        if np.isnan(values).any():
            from repro.core.separation import normalize_values

            return normalize_values(values)
        lo = float(np.min(values)) if values.size else 0.0
        hi = float(np.max(values)) if values.size else 0.0
        span = hi - lo
        if span <= 0:
            return np.zeros_like(values)
        return (values - lo) / span
