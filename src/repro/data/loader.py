"""CSV persistence for datasets, in a dbseer-like layout.

The open-source dbseer toolkit stores each run as a CSV with a header row
of attribute names, a ``timestamp`` column first, and one row per second.
Categorical columns are round-tripped via a ``#types`` comment line so the
loader restores them as categorical rather than failing to parse floats.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["save_dataset_csv", "load_dataset_csv"]

_TIMESTAMP_COLUMN = "timestamp"
_TYPES_PREFIX = "#types,"


def save_dataset_csv(dataset: Dataset, path: Union[str, Path]) -> None:
    """Write *dataset* to *path* as CSV with a ``#types`` metadata line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    numeric = dataset.numeric_attributes
    categorical = dataset.categorical_attributes
    header = [_TIMESTAMP_COLUMN] + numeric + categorical
    types = ["numeric"] + ["numeric"] * len(numeric) + ["categorical"] * len(categorical)
    with path.open("w", newline="") as fh:
        fh.write(_TYPES_PREFIX + ",".join(types) + "\n")
        writer = csv.writer(fh)
        writer.writerow(header)
        columns = [dataset.timestamps] + [dataset.column(a) for a in numeric + categorical]
        for row in zip(*columns):
            writer.writerow(
                [f"{v:.10g}" if isinstance(v, float) else v for v in row]
            )


def load_dataset_csv(path: Union[str, Path], name: str = "") -> Dataset:
    """Load a dataset previously written by :func:`save_dataset_csv`.

    Files without a ``#types`` line are accepted: columns whose values all
    parse as floats become numeric, the rest categorical.
    """
    path = Path(path)
    with path.open("r", newline="") as fh:
        first = fh.readline()
        declared_types: List[str] = []
        if first.startswith(_TYPES_PREFIX):
            declared_types = first[len(_TYPES_PREFIX):].strip().split(",")
            header_line = fh.readline()
        else:
            header_line = first
        header = next(csv.reader([header_line]))
        rows = list(csv.reader(fh))

    if not header or header[0] != _TIMESTAMP_COLUMN:
        raise ValueError(f"{path}: first column must be {_TIMESTAMP_COLUMN!r}")
    if declared_types and len(declared_types) != len(header):
        raise ValueError(f"{path}: #types line does not match the header")

    raw: Dict[str, List[str]] = {h: [] for h in header}
    for row in rows:
        if not row:
            continue
        if len(row) != len(header):
            raise ValueError(f"{path}: row width {len(row)} != header {len(header)}")
        for attr, value in zip(header, row):
            raw[attr].append(value)

    timestamps = np.asarray([float(v) for v in raw[_TIMESTAMP_COLUMN]])
    numeric: Dict[str, np.ndarray] = {}
    categorical: Dict[str, np.ndarray] = {}
    for i, attr in enumerate(header[1:], start=1):
        values = raw[attr]
        if declared_types:
            is_numeric = declared_types[i] == "numeric"
        else:
            is_numeric = _all_floats(values)
        if is_numeric:
            numeric[attr] = np.asarray([float(v) for v in values])
        else:
            categorical[attr] = np.asarray(values, dtype=object)
    return Dataset(
        timestamps,
        numeric=numeric,
        categorical=categorical,
        name=name or path.stem,
    )


def _all_floats(values: List[str]) -> bool:
    for value in values:
        try:
            float(value)
        except ValueError:
            return False
    return True
