"""Log preprocessing: timestamp alignment and transaction aggregation.

Mirrors the DBSeer preprocessing step the paper relies on (Section 2.1):
raw, unaligned log streams (per-transaction latency records, OS snapshots,
DBMS counters) are summarised at fixed 1-second intervals and joined on the
interval start timestamp into one row per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "TransactionRecord",
    "aggregate_transactions",
    "align_logs",
    "AlignedLogBuilder",
    "GapReport",
    "find_gaps",
    "regularize_dataset",
]


@dataclass(frozen=True)
class TransactionRecord:
    """One completed transaction from the timestamped query log.

    Attributes
    ----------
    start_time:
        Wall-clock second (float) the transaction started.
    latency_ms:
        End-to-end latency in milliseconds.
    txn_type:
        Workload transaction type (e.g. ``"NewOrder"``).
    """

    start_time: float
    latency_ms: float
    txn_type: str = "generic"


def aggregate_transactions(
    records: Sequence[TransactionRecord],
    start: float,
    end: float,
    interval: float = 1.0,
    quantiles: Sequence[float] = (0.99,),
    txn_types: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Aggregate per-transaction records into per-interval statistics.

    Returns ``(timestamps, columns)`` where columns include average and
    quantile latencies plus per-type and total counts for every interval in
    ``[start, end)``.  Intervals without transactions report zero counts
    and carry the previous interval's latency (0 for the first), matching
    DBSeer's gap handling.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    n_bins = max(int(math.ceil((end - start) / interval)), 1)
    timestamps = start + interval * np.arange(n_bins)

    if txn_types is None:
        txn_types = sorted({r.txn_type for r in records}) or ["generic"]

    bucket_latencies: List[List[float]] = [[] for _ in range(n_bins)]
    type_counts = {t: np.zeros(n_bins) for t in txn_types}
    for record in records:
        idx = int((record.start_time - start) // interval)
        if 0 <= idx < n_bins:
            bucket_latencies[idx].append(record.latency_ms)
            if record.txn_type in type_counts:
                type_counts[record.txn_type][idx] += 1

    avg_latency = np.zeros(n_bins)
    quantile_cols = {q: np.zeros(n_bins) for q in quantiles}
    total = np.zeros(n_bins)
    prev_avg = 0.0
    prev_q = {q: 0.0 for q in quantiles}
    for i, latencies in enumerate(bucket_latencies):
        total[i] = len(latencies)
        if latencies:
            arr = np.asarray(latencies)
            prev_avg = float(arr.mean())
            for q in quantiles:
                prev_q[q] = float(np.quantile(arr, q))
        avg_latency[i] = prev_avg
        for q in quantiles:
            quantile_cols[q][i] = prev_q[q]

    columns: Dict[str, np.ndarray] = {
        "txn_avg_latency_ms": avg_latency,
        "txn_count_total": total,
    }
    for q in quantiles:
        columns[f"txn_p{int(q * 100)}_latency_ms"] = quantile_cols[q]
    for t in txn_types:
        columns[f"txn_count_{t}"] = type_counts[t]
    return timestamps, columns


def align_logs(
    timestamps: np.ndarray,
    sources: Mapping[str, Tuple[np.ndarray, Mapping[str, np.ndarray]]],
    interval: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Align multiple sampled log sources onto a shared timestamp grid.

    ``sources`` maps a source name (used to prefix attributes) to a tuple of
    its own sample timestamps and its columns.  Each target timestamp takes
    the most recent source sample at or before ``t + interval`` (i.e. the
    value observed during the interval); leading gaps take the first sample.
    """
    aligned: Dict[str, np.ndarray] = {}
    for source_name, (src_ts, columns) in sources.items():
        src_ts = np.asarray(src_ts, dtype=np.float64)
        if src_ts.size == 0:
            raise ValueError(f"log source {source_name!r} is empty")
        order = np.argsort(src_ts)
        src_ts = src_ts[order]
        # index of the sample observed within each interval
        idx = np.searchsorted(src_ts, timestamps + interval, side="right") - 1
        idx = np.clip(idx, 0, src_ts.size - 1)
        for attr, values in columns.items():
            values = np.asarray(values)
            aligned[f"{source_name}.{attr}"] = values[order][idx]
    return aligned


@dataclass(frozen=True)
class GapReport:
    """Summary of the repairs :func:`regularize_dataset` performed.

    Attributes
    ----------
    n_expected:
        Rows the regular grid should contain.
    n_observed:
        Rows the raw dataset actually delivered (after snapping).
    n_filled:
        Missing rows repaired by forward fill.
    n_nan:
        Missing rows left as NaN (gap longer than ``max_ffill``).
    gaps:
        ``(start, end)`` timestamp pairs of every missing stretch.
    """

    n_expected: int
    n_observed: int
    n_filled: int
    n_nan: int
    gaps: Tuple[Tuple[float, float], ...]

    @property
    def n_missing(self) -> int:
        """Total missing rows (filled + NaN)."""
        return self.n_filled + self.n_nan


def find_gaps(
    timestamps: np.ndarray,
    interval: float = 1.0,
    tolerance: float = 0.5,
) -> List[Tuple[float, float]]:
    """Locate stretches of missing samples in a nominally regular series.

    A gap is reported as ``(start, end)`` — the first and last *missing*
    grid times — whenever consecutive observed timestamps are more than
    ``interval * (1 + tolerance)`` apart.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    timestamps = np.asarray(timestamps, dtype=np.float64)
    gaps: List[Tuple[float, float]] = []
    if timestamps.size < 2:
        return gaps
    deltas = np.diff(timestamps)
    for i in np.flatnonzero(deltas > interval * (1.0 + tolerance)):
        n_missing = int(round(deltas[i] / interval)) - 1
        if n_missing < 1:
            continue
        first = timestamps[i] + interval
        gaps.append((float(first), float(first + (n_missing - 1) * interval)))
    return gaps


def regularize_dataset(
    dataset: Dataset,
    interval: float = 1.0,
    max_ffill: int = 5,
) -> Tuple[Dataset, GapReport]:
    """Re-grid a gappy dataset onto a regular timestamp grid.

    Observed rows are snapped to the nearest grid point (within half an
    interval).  Missing rows are forward-filled from the last observed row
    for runs of at most ``max_ffill``; longer runs become NaN for numeric
    attributes (categorical attributes always carry forward, since they
    have no NaN representation).  Returns the repaired dataset and a
    :class:`GapReport` describing what was done.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if max_ffill < 0:
        raise ValueError("max_ffill must be non-negative")
    ts = dataset.timestamps
    if ts.size == 0:
        return dataset, GapReport(0, 0, 0, 0, ())

    n_grid = int(round((float(ts[-1]) - float(ts[0])) / interval)) + 1
    grid = float(ts[0]) + interval * np.arange(n_grid)

    # nearest observed row per grid point, accepted within interval/2
    pos = np.searchsorted(ts, grid)
    left = np.clip(pos - 1, 0, ts.size - 1)
    right = np.clip(pos, 0, ts.size - 1)
    take_right = np.abs(ts[right] - grid) < np.abs(ts[left] - grid)
    nearest = np.where(take_right, right, left)
    observed = np.abs(ts[nearest] - grid) <= interval / 2.0

    # source row per grid point: the observed row, else the most recent
    # observed one (cummax of the observed rows' own indices)
    src = np.maximum.accumulate(np.where(observed, nearest, -1))
    run = np.arange(n_grid) - np.maximum.accumulate(
        np.where(observed, np.arange(n_grid), -1)
    )
    fillable = observed | ((src >= 0) & (run <= max_ffill))
    safe_src = np.clip(src, 0, ts.size - 1)

    numeric = {}
    for attr in dataset.numeric_attributes:
        col = dataset.column(attr)[safe_src]
        col = np.where(fillable, col, np.nan)
        numeric[attr] = col
    categorical = {}
    for attr in dataset.categorical_attributes:
        categorical[attr] = dataset.column(attr)[safe_src].copy()

    missing = ~observed
    n_filled = int((missing & fillable).sum())
    n_nan = int((missing & ~fillable).sum())
    gap_bounds: List[Tuple[float, float]] = []
    if missing.any():
        padded = np.concatenate(([False], missing, [False]))
        edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
        for s, e in zip(edges[0::2], edges[1::2] - 1):
            gap_bounds.append((float(grid[s]), float(grid[e])))
    report = GapReport(
        n_expected=n_grid,
        n_observed=int(observed.sum()),
        n_filled=n_filled,
        n_nan=n_nan,
        gaps=tuple(gap_bounds),
    )
    repaired = Dataset(
        grid, numeric=numeric, categorical=categorical, name=dataset.name
    )
    return repaired, report


class AlignedLogBuilder:
    """Incrementally assemble an aligned ``Dataset`` from raw log streams.

    Typical use::

        builder = AlignedLogBuilder(start=0.0, end=180.0)
        builder.add_transactions(records)
        builder.add_sampled("os", os_timestamps, os_columns)
        builder.add_sampled("mysql", db_timestamps, db_columns)
        dataset = builder.build(name="tpcc-run-1")
    """

    def __init__(self, start: float, end: float, interval: float = 1.0) -> None:
        if end <= start:
            raise ValueError("end must exceed start")
        self.start = float(start)
        self.end = float(end)
        self.interval = float(interval)
        n_bins = max(int(math.ceil((end - start) / interval)), 1)
        self.timestamps = self.start + self.interval * np.arange(n_bins)
        self._numeric: Dict[str, np.ndarray] = {}
        self._categorical: Dict[str, np.ndarray] = {}
        self._sources: Dict[str, Tuple[np.ndarray, Dict[str, np.ndarray]]] = {}

    def add_transactions(
        self,
        records: Sequence[TransactionRecord],
        txn_types: Optional[Sequence[str]] = None,
    ) -> None:
        """Attach transaction-aggregate columns computed from *records*."""
        _, columns = aggregate_transactions(
            records,
            self.start,
            self.end,
            interval=self.interval,
            txn_types=txn_types,
        )
        self._numeric.update(columns)

    def add_sampled(
        self,
        source_name: str,
        sample_times: Sequence[float],
        columns: Mapping[str, Sequence[float]],
    ) -> None:
        """Register a sampled numeric log source to be aligned on build."""
        self._sources[source_name] = (
            np.asarray(sample_times, dtype=np.float64),
            {a: np.asarray(v, dtype=np.float64) for a, v in columns.items()},
        )

    def add_constant_categorical(self, attr: str, value: str) -> None:
        """Attach an invariant categorical attribute (e.g. a config value)."""
        self._categorical[attr] = np.asarray(
            [value] * self.timestamps.size, dtype=object
        )

    def add_categorical(self, attr: str, values: Sequence[str]) -> None:
        """Attach a per-interval categorical attribute."""
        arr = np.asarray(values, dtype=object)
        if arr.shape != self.timestamps.shape:
            raise ValueError(f"categorical {attr!r} must have one value per interval")
        self._categorical[attr] = arr

    def build(self, name: str = "") -> Dataset:
        """Align all registered sources and return the dataset."""
        numeric = dict(self._numeric)
        numeric.update(align_logs(self.timestamps, self._sources, self.interval))
        return Dataset(
            self.timestamps,
            numeric=numeric,
            categorical=self._categorical,
            name=name,
        )
