"""Log preprocessing: timestamp alignment and transaction aggregation.

Mirrors the DBSeer preprocessing step the paper relies on (Section 2.1):
raw, unaligned log streams (per-transaction latency records, OS snapshots,
DBMS counters) are summarised at fixed 1-second intervals and joined on the
interval start timestamp into one row per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "TransactionRecord",
    "aggregate_transactions",
    "align_logs",
    "AlignedLogBuilder",
]


@dataclass(frozen=True)
class TransactionRecord:
    """One completed transaction from the timestamped query log.

    Attributes
    ----------
    start_time:
        Wall-clock second (float) the transaction started.
    latency_ms:
        End-to-end latency in milliseconds.
    txn_type:
        Workload transaction type (e.g. ``"NewOrder"``).
    """

    start_time: float
    latency_ms: float
    txn_type: str = "generic"


def aggregate_transactions(
    records: Sequence[TransactionRecord],
    start: float,
    end: float,
    interval: float = 1.0,
    quantiles: Sequence[float] = (0.99,),
    txn_types: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Aggregate per-transaction records into per-interval statistics.

    Returns ``(timestamps, columns)`` where columns include average and
    quantile latencies plus per-type and total counts for every interval in
    ``[start, end)``.  Intervals without transactions report zero counts
    and carry the previous interval's latency (0 for the first), matching
    DBSeer's gap handling.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    n_bins = max(int(math.ceil((end - start) / interval)), 1)
    timestamps = start + interval * np.arange(n_bins)

    if txn_types is None:
        txn_types = sorted({r.txn_type for r in records}) or ["generic"]

    bucket_latencies: List[List[float]] = [[] for _ in range(n_bins)]
    type_counts = {t: np.zeros(n_bins) for t in txn_types}
    for record in records:
        idx = int((record.start_time - start) // interval)
        if 0 <= idx < n_bins:
            bucket_latencies[idx].append(record.latency_ms)
            if record.txn_type in type_counts:
                type_counts[record.txn_type][idx] += 1

    avg_latency = np.zeros(n_bins)
    quantile_cols = {q: np.zeros(n_bins) for q in quantiles}
    total = np.zeros(n_bins)
    prev_avg = 0.0
    prev_q = {q: 0.0 for q in quantiles}
    for i, latencies in enumerate(bucket_latencies):
        total[i] = len(latencies)
        if latencies:
            arr = np.asarray(latencies)
            prev_avg = float(arr.mean())
            for q in quantiles:
                prev_q[q] = float(np.quantile(arr, q))
        avg_latency[i] = prev_avg
        for q in quantiles:
            quantile_cols[q][i] = prev_q[q]

    columns: Dict[str, np.ndarray] = {
        "txn_avg_latency_ms": avg_latency,
        "txn_count_total": total,
    }
    for q in quantiles:
        columns[f"txn_p{int(q * 100)}_latency_ms"] = quantile_cols[q]
    for t in txn_types:
        columns[f"txn_count_{t}"] = type_counts[t]
    return timestamps, columns


def align_logs(
    timestamps: np.ndarray,
    sources: Mapping[str, Tuple[np.ndarray, Mapping[str, np.ndarray]]],
    interval: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Align multiple sampled log sources onto a shared timestamp grid.

    ``sources`` maps a source name (used to prefix attributes) to a tuple of
    its own sample timestamps and its columns.  Each target timestamp takes
    the most recent source sample at or before ``t + interval`` (i.e. the
    value observed during the interval); leading gaps take the first sample.
    """
    aligned: Dict[str, np.ndarray] = {}
    for source_name, (src_ts, columns) in sources.items():
        src_ts = np.asarray(src_ts, dtype=np.float64)
        if src_ts.size == 0:
            raise ValueError(f"log source {source_name!r} is empty")
        order = np.argsort(src_ts)
        src_ts = src_ts[order]
        # index of the sample observed within each interval
        idx = np.searchsorted(src_ts, timestamps + interval, side="right") - 1
        idx = np.clip(idx, 0, src_ts.size - 1)
        for attr, values in columns.items():
            values = np.asarray(values)
            aligned[f"{source_name}.{attr}"] = values[order][idx]
    return aligned


class AlignedLogBuilder:
    """Incrementally assemble an aligned ``Dataset`` from raw log streams.

    Typical use::

        builder = AlignedLogBuilder(start=0.0, end=180.0)
        builder.add_transactions(records)
        builder.add_sampled("os", os_timestamps, os_columns)
        builder.add_sampled("mysql", db_timestamps, db_columns)
        dataset = builder.build(name="tpcc-run-1")
    """

    def __init__(self, start: float, end: float, interval: float = 1.0) -> None:
        if end <= start:
            raise ValueError("end must exceed start")
        self.start = float(start)
        self.end = float(end)
        self.interval = float(interval)
        n_bins = max(int(math.ceil((end - start) / interval)), 1)
        self.timestamps = self.start + self.interval * np.arange(n_bins)
        self._numeric: Dict[str, np.ndarray] = {}
        self._categorical: Dict[str, np.ndarray] = {}
        self._sources: Dict[str, Tuple[np.ndarray, Dict[str, np.ndarray]]] = {}

    def add_transactions(
        self,
        records: Sequence[TransactionRecord],
        txn_types: Optional[Sequence[str]] = None,
    ) -> None:
        """Attach transaction-aggregate columns computed from *records*."""
        _, columns = aggregate_transactions(
            records,
            self.start,
            self.end,
            interval=self.interval,
            txn_types=txn_types,
        )
        self._numeric.update(columns)

    def add_sampled(
        self,
        source_name: str,
        sample_times: Sequence[float],
        columns: Mapping[str, Sequence[float]],
    ) -> None:
        """Register a sampled numeric log source to be aligned on build."""
        self._sources[source_name] = (
            np.asarray(sample_times, dtype=np.float64),
            {a: np.asarray(v, dtype=np.float64) for a, v in columns.items()},
        )

    def add_constant_categorical(self, attr: str, value: str) -> None:
        """Attach an invariant categorical attribute (e.g. a config value)."""
        self._categorical[attr] = np.asarray(
            [value] * self.timestamps.size, dtype=object
        )

    def add_categorical(self, attr: str, values: Sequence[str]) -> None:
        """Attach a per-interval categorical attribute."""
        arr = np.asarray(values, dtype=object)
        if arr.shape != self.timestamps.shape:
            raise ValueError(f"categorical {attr!r} must have one value per interval")
        self._categorical[attr] = arr

    def build(self, name: str = "") -> Dataset:
        """Align all registered sources and return the dataset."""
        numeric = dict(self._numeric)
        numeric.update(align_logs(self.timestamps, self._sources, self.interval))
        return Dataset(
            self.timestamps,
            numeric=numeric,
            categorical=self._categorical,
            name=name,
        )
