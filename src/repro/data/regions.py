"""Abnormal / normal region specifications.

The user of DBSherlock marks one or more *abnormal* time ranges on a
performance plot and, optionally, explicit *normal* ranges (Section 2.2).
When no normal ranges are given, everything outside the abnormal ranges is
implicitly normal; when normal ranges are given, rows in neither region are
ignored by the algorithm (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["Region", "RegionSpec"]


@dataclass(frozen=True)
class Region:
    """A closed time interval ``[start, end]`` in dataset time units."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"region end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start

    def contains(self, timestamps: np.ndarray) -> np.ndarray:
        """Boolean mask of timestamps inside the interval."""
        return (timestamps >= self.start) & (timestamps <= self.end)

    def intersects(self, other: "Region") -> bool:
        """True when the two closed intervals share at least one point."""
        return self.start <= other.end and other.start <= self.end

    def widened(self, fraction: float) -> "Region":
        """Return the interval widened (or shrunk, if negative) on both ends.

        ``widened(0.1)`` extends each boundary outward by 10 % of the
        duration; ``widened(-0.1)`` pulls each boundary inward.  Used by the
        Appendix C robustness study.
        """
        pad = self.duration * fraction
        start, end = self.start - pad, self.end + pad
        if end < start:
            mid = (self.start + self.end) / 2.0
            start = end = mid
        return Region(start, end)


@dataclass
class RegionSpec:
    """The abnormal/normal marking the user hands to DBSherlock.

    Parameters
    ----------
    abnormal:
        Time intervals the user deems anomalous.
    normal:
        Optional explicit normal intervals.  ``None`` means "everything
        else is normal"; a list means rows outside both region kinds are
        ignored.
    """

    abnormal: List[Region] = field(default_factory=list)
    normal: Optional[List[Region]] = None

    @classmethod
    def from_bounds(
        cls,
        abnormal: Sequence[Tuple[float, float]],
        normal: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> "RegionSpec":
        """Build a spec from ``(start, end)`` tuples."""
        return cls(
            abnormal=[Region(s, e) for s, e in abnormal],
            normal=None if normal is None else [Region(s, e) for s, e in normal],
        )

    def abnormal_mask(self, dataset: Dataset) -> np.ndarray:
        """Rows of *dataset* inside any abnormal interval."""
        mask = np.zeros(dataset.n_rows, dtype=bool)
        for region in self.abnormal:
            mask |= region.contains(dataset.timestamps)
        return mask

    def normal_mask(self, dataset: Dataset) -> np.ndarray:
        """Rows of *dataset* treated as normal.

        With explicit normal intervals, this is their union minus any
        overlap with abnormal intervals; otherwise it is the complement of
        the abnormal mask.
        """
        abnormal = self.abnormal_mask(dataset)
        if self.normal is None:
            return ~abnormal
        mask = np.zeros(dataset.n_rows, dtype=bool)
        for region in self.normal:
            mask |= region.contains(dataset.timestamps)
        return mask & ~abnormal

    def validate(self, dataset: Dataset) -> None:
        """Raise ``ValueError`` on empty, out-of-bounds, or overlapping regions.

        Checks, in order: every abnormal interval must intersect the
        dataset's time span; explicit normal intervals must not overlap
        any abnormal interval; and both effective region masks must be
        non-empty.
        """
        if dataset.n_rows:
            lo = float(dataset.timestamps[0])
            hi = float(dataset.timestamps[-1])
            span = Region(lo, hi)
            for region in self.abnormal:
                if not region.intersects(span):
                    raise ValueError(
                        f"abnormal region [{region.start}, {region.end}] lies "
                        f"outside the dataset time span [{lo}, {hi}]"
                    )
        if self.normal is not None:
            for normal in self.normal:
                for abnormal in self.abnormal:
                    if normal.intersects(abnormal):
                        raise ValueError(
                            f"normal region [{normal.start}, {normal.end}] "
                            f"overlaps abnormal region "
                            f"[{abnormal.start}, {abnormal.end}]"
                        )
        if not self.abnormal_mask(dataset).any():
            raise ValueError("abnormal region matches no rows")
        if not self.normal_mask(dataset).any():
            raise ValueError("normal region matches no rows")

    def clamped(self, dataset: Dataset) -> "RegionSpec":
        """Clamp every interval to the dataset's time span.

        Intervals partially outside the span are trimmed to it; intervals
        wholly outside are dropped.  Use before :meth:`validate` when the
        spec was authored against a different (e.g. skewed or truncated)
        timeline than the telemetry actually delivered.
        """
        if dataset.n_rows == 0:
            return RegionSpec(abnormal=list(self.abnormal), normal=self.normal)
        lo = float(dataset.timestamps[0])
        hi = float(dataset.timestamps[-1])
        span = Region(lo, hi)

        def clamp(regions: List[Region]) -> List[Region]:
            return [
                Region(max(r.start, lo), min(r.end, hi))
                for r in regions
                if r.intersects(span)
            ]

        return RegionSpec(
            abnormal=clamp(self.abnormal),
            normal=None if self.normal is None else clamp(self.normal),
        )

    def perturbed(self, fraction: float) -> "RegionSpec":
        """Widen/shrink every abnormal interval by *fraction* (Appendix C)."""
        return RegionSpec(
            abnormal=[r.widened(fraction) for r in self.abnormal],
            normal=self.normal,
        )

    def sliced(self, length: float, rng: np.random.Generator) -> "RegionSpec":
        """Replace each abnormal interval with a random sub-slice.

        Models the Appendix C "two seconds of the original abnormal region"
        experiment: diagnosing rare anomalies from a sliver of the window.
        """
        slices = []
        for region in self.abnormal:
            usable = max(region.duration - length, 0.0)
            offset = float(rng.uniform(0.0, usable)) if usable > 0 else 0.0
            start = region.start + offset
            slices.append(Region(start, min(start + length, region.end)))
        return RegionSpec(abnormal=slices, normal=self.normal)
