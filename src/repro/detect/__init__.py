"""Alternative anomaly detectors — the paper's Section 9 future work.

    "Allowing users to choose from additional outlier detection
    algorithms [...] will make an interesting future work."

Every detector shares the Section 7 pipeline's front end (normalization +
potential-power attribute selection) and the ``DetectionResult`` output,
so they are drop-in replacements for the DBSCAN strategy inside
:class:`repro.core.anomaly.AnomalyDetector`-based workflows.

For *online* detection over a live telemetry feed, use
:class:`repro.stream.StreamingDetector` (re-exported here): it produces
the same ``DetectionResult`` per tick from a ring-buffer window with
incremental potential power instead of re-running a batch pass.
"""

from repro.detect.strategies import (
    BaseDetector,
    DbscanDetector,
    EnsembleDetector,
    RobustZScoreDetector,
    ThroughputDipDetector,
)
from repro.stream import StreamingDetector

__all__ = [
    "BaseDetector",
    "DbscanDetector",
    "RobustZScoreDetector",
    "ThroughputDipDetector",
    "EnsembleDetector",
    "StreamingDetector",
]
