"""Pluggable anomaly-detection strategies.

All strategies consume a :class:`~repro.data.dataset.Dataset`, select
informative attributes by potential power (Equation 4), and return a
:class:`~repro.core.anomaly.DetectionResult` so callers can swap them
freely:

* :class:`DbscanDetector` — the paper's Section 7 algorithm (delegates to
  :class:`~repro.core.anomaly.AnomalyDetector`).
* :class:`RobustZScoreDetector` — flags seconds whose mean normalized
  deviation from the per-attribute median exceeds ``k`` MADs; the classic
  robust-statistics approach PerfAugur builds on.
* :class:`ThroughputDipDetector` — a domain-specific heuristic watching a
  single indicator (latency up or throughput down beyond a relative
  threshold); cheap, interpretable, blind to anything else.
* :class:`EnsembleDetector` — majority vote of member strategies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.anomaly import (
    AnomalyDetector,
    DetectionResult,
    mask_to_regions,
)
from repro.core.separation import normalize_values
from repro.data.dataset import Dataset

__all__ = [
    "BaseDetector",
    "DbscanDetector",
    "RobustZScoreDetector",
    "ThroughputDipDetector",
    "EnsembleDetector",
]


class BaseDetector:
    """Shared smoothing/selection plumbing for detection strategies."""

    def __init__(
        self,
        min_region_s: float = 5.0,
        gap_fill_s: float = 3.0,
    ) -> None:
        # reuse the Section 7 temporal smoothing via a helper instance
        self._smoother = AnomalyDetector(
            min_region_s=min_region_s, gap_fill_s=gap_fill_s
        )

    def detect(self, dataset: Dataset) -> DetectionResult:
        """Run the strategy; subclasses implement :meth:`_score_mask`."""
        mask, selected, eps = self._score_mask(dataset)
        mask = self._smoother._smooth_mask(mask, dataset.timestamps)
        return DetectionResult(
            mask=mask,
            regions=mask_to_regions(dataset.timestamps, mask),
            selected_attributes=selected,
            eps=eps,
        )

    def _score_mask(self, dataset: Dataset):
        raise NotImplementedError


class DbscanDetector(BaseDetector):
    """The paper's Section 7 algorithm behind the strategy interface."""

    def __init__(self, **kwargs) -> None:
        super().__init__(
            min_region_s=kwargs.pop("min_region_s", 5.0),
            gap_fill_s=kwargs.pop("gap_fill_s", 3.0),
        )
        self._inner = AnomalyDetector(**kwargs)

    def detect(self, dataset: Dataset) -> DetectionResult:
        return self._inner.detect(dataset)

    def _score_mask(self, dataset: Dataset):  # pragma: no cover - unused
        raise NotImplementedError


class RobustZScoreDetector(BaseDetector):
    """Median/MAD outlier scoring across high-potential-power attributes."""

    def __init__(
        self,
        z_threshold: float = 5.0,
        pp_threshold: float = 0.3,
        window: int = 20,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.z_threshold = z_threshold
        self.pp_threshold = pp_threshold
        self.window = window

    def _score_mask(self, dataset: Dataset):
        selector = AnomalyDetector(
            window=self.window, pp_threshold=self.pp_threshold
        )
        selected = selector.select_attributes(dataset)
        n = dataset.n_rows
        if not selected or n == 0:
            return np.zeros(n, dtype=bool), [], 0.0
        scores = np.zeros(n)
        for attr in selected:
            values = normalize_values(dataset.column(attr))
            median = float(np.median(values))
            mad = float(np.median(np.abs(values - median)))
            mad = max(mad, 1e-6)
            scores += np.abs(values - median) / mad
        scores /= len(selected)
        return scores > self.z_threshold, selected, float(self.z_threshold)


class ThroughputDipDetector(BaseDetector):
    """Single-indicator heuristic: latency spikes or throughput dips.

    Flags seconds where the indicator deviates from its median by more
    than ``relative_threshold`` of the median — the check an on-call
    engineer's first dashboard alert encodes.
    """

    def __init__(
        self,
        latency_attr: str = "txn.avg_latency_ms",
        throughput_attr: str = "txn.throughput_tps",
        relative_threshold: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.latency_attr = latency_attr
        self.throughput_attr = throughput_attr
        self.relative_threshold = relative_threshold

    def _score_mask(self, dataset: Dataset):
        n = dataset.n_rows
        mask = np.zeros(n, dtype=bool)
        selected: List[str] = []
        if self.latency_attr in dataset:
            latency = np.asarray(dataset.column(self.latency_attr), float)
            median = max(float(np.median(latency)), 1e-9)
            mask |= latency > median * (1.0 + self.relative_threshold)
            selected.append(self.latency_attr)
        if self.throughput_attr in dataset:
            tps = np.asarray(dataset.column(self.throughput_attr), float)
            median = max(float(np.median(tps)), 1e-9)
            mask |= tps < median * (1.0 - self.relative_threshold)
            selected.append(self.throughput_attr)
        return mask, selected, self.relative_threshold


class EnsembleDetector(BaseDetector):
    """Majority vote across member strategies' row masks."""

    def __init__(
        self,
        members: Optional[Sequence[BaseDetector]] = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.members: List[BaseDetector] = list(
            members
            if members is not None
            else [
                DbscanDetector(),
                RobustZScoreDetector(),
                ThroughputDipDetector(),
            ]
        )
        if not self.members:
            raise ValueError("ensemble needs at least one member")

    def _score_mask(self, dataset: Dataset):
        n = dataset.n_rows
        votes = np.zeros(n, dtype=np.int64)
        selected: List[str] = []
        for member in self.members:
            result = member.detect(dataset)
            votes += result.mask
            for attr in result.selected_attributes:
                if attr not in selected:
                    selected.append(attr)
        mask = votes * 2 > len(self.members)
        return mask, selected, float(len(self.members))
