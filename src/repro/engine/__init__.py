"""OLTP server simulator: the substrate replacing the paper's testbed.

The paper collected telemetry from MySQL 5.6 + Linux on two Azure A3 VMs.
Offline we cannot run that stack, so this package provides an analytical
discrete-time simulator: each 1-second tick, a closed-loop client pool
offers transactions, resource models (CPU, disk, buffer pool, network,
locks) translate the demand into utilisations and latencies, and a metric
catalogue emits ~190 aligned OS/DBMS/transaction attributes — the same
interface DBSherlock consumes from DBSeer.
"""

from repro.engine.resources import ServerConfig, mm1_latency_factor
from repro.engine.locks import LockModel
from repro.engine.server import DatabaseServer, TickModifiers, TickState
from repro.engine.metrics import MetricCatalog
from repro.engine.collector import TelemetryCollector, simulate_telemetry

__all__ = [
    "ServerConfig",
    "mm1_latency_factor",
    "LockModel",
    "DatabaseServer",
    "TickModifiers",
    "TickState",
    "MetricCatalog",
    "TelemetryCollector",
    "simulate_telemetry",
]
