"""Telemetry collection: run the simulator and assemble a ``Dataset``.

Plays the role of DBSeer's collectors + preprocessing: per-second tick
states are turned into noisy metric rows and aligned into a single
timestamped attribute table, with the scheduled anomaly windows recorded
as the ground-truth region spec.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.engine.metrics import MetricCatalog
from repro.engine.server import DatabaseServer, TickModifiers
from repro.engine.resources import ServerConfig
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # avoid the anomalies ↔ engine import cycle at runtime
    from repro.anomalies.base import ScheduledAnomaly
    from repro.faults.plan import FaultPlan

__all__ = ["TelemetryCollector", "simulate_telemetry", "fleet_batches"]


class TelemetryCollector:
    """Drives a :class:`DatabaseServer` and records telemetry rows."""

    def __init__(
        self,
        workload: WorkloadSpec,
        config: Optional[ServerConfig] = None,
        noise_scale: float = 1.0,
    ) -> None:
        self.workload = workload
        self.server = DatabaseServer(workload, config)
        self.catalog = MetricCatalog(workload.type_names, noise_scale)

    def stream(
        self,
        duration_s: float,
        anomalies: Sequence["ScheduledAnomaly"] = (),
        seed: Optional[int] = None,
        warmup_s: float = 5.0,
        faults: Optional["FaultPlan"] = None,
    ) -> Iterator[Tuple[float, Dict[str, float], Dict[str, str]]]:
        """Yield ``(t, numeric_row, categorical_row)`` one tick at a time.

        The online feed for :class:`repro.stream.StreamingDetector`'s
        ring buffer; :meth:`run` is this generator drained into a
        :class:`Dataset`, so streaming and batch consumers observe the
        identical row sequence for identical seeds.

        An optional :class:`~repro.faults.FaultPlan` wraps the tick
        stream to model degraded collection (dropped/duplicated ticks,
        NaN cells, crashes, ...); the underlying simulation is
        unaffected, only delivery is.
        """
        ticks = self._raw_stream(duration_s, anomalies, seed, warmup_s)
        if faults is not None:
            ticks = faults.wrap(ticks)
        return ticks

    def _raw_stream(
        self,
        duration_s: float,
        anomalies: Sequence["ScheduledAnomaly"],
        seed: Optional[int],
        warmup_s: float,
    ) -> Iterator[Tuple[float, Dict[str, float], Dict[str, str]]]:
        rng = np.random.default_rng(seed)
        self.server.warm_up(warmup_s, rng)
        for second in range(int(duration_s)):
            t = float(second)
            modifiers = TickModifiers()
            for anomaly in anomalies:
                modifiers = modifiers.combine(anomaly.modifiers(t, rng))
            state = self.server.tick(t, modifiers, rng)
            yield (
                t,
                self.catalog.emit_numeric(state, rng),
                self.catalog.emit_categorical(state),
            )

    def run(
        self,
        duration_s: float,
        anomalies: Sequence["ScheduledAnomaly"] = (),
        seed: Optional[int] = None,
        warmup_s: float = 5.0,
        name: str = "",
        faults: Optional["FaultPlan"] = None,
    ) -> Tuple[Dataset, RegionSpec]:
        """Simulate ``duration_s`` seconds and return (dataset, ground truth).

        A short warm-up runs before ``t = 0`` so the server starts from its
        steady state (dirty-page backlog, latency fixed point) rather than
        cold-start transients that would look like an anomaly at the origin.

        With a ``faults`` plan, the clean dataset is corrupted through the
        plan's table path and the ground-truth spec is mapped through any
        time-warping injectors, so region marks stay aligned with the
        delivered (possibly skewed) timeline.
        """
        timestamps: List[float] = []
        numeric: Dict[str, List[float]] = {
            n: [] for n in self.catalog.numeric_names
        }
        categorical: Dict[str, List[str]] = {
            n: [] for n in self.catalog.categorical_names
        }
        for t, row, cats in self._raw_stream(
            duration_s, anomalies, seed, warmup_s
        ):
            timestamps.append(t)
            for attr, value in row.items():
                numeric[attr].append(value)
            for attr, value in cats.items():
                categorical[attr].append(value)

        from repro.anomalies.base import ground_truth_spec

        dataset = Dataset(
            timestamps,
            numeric=numeric,
            categorical=categorical,
            name=name or self.workload.name,
        )
        spec = ground_truth_spec(list(anomalies))
        if faults is not None:
            dataset = faults.apply(dataset)
            spec = faults.transform_spec(spec)
        return dataset, spec


def simulate_telemetry(
    workload: WorkloadSpec,
    duration_s: float,
    anomalies: Sequence["ScheduledAnomaly"] = (),
    seed: Optional[int] = None,
    config: Optional[ServerConfig] = None,
    noise_scale: float = 1.0,
    name: str = "",
    faults: Optional["FaultPlan"] = None,
) -> Tuple[Dataset, RegionSpec]:
    """One-shot convenience wrapper around :class:`TelemetryCollector`."""
    collector = TelemetryCollector(workload, config, noise_scale)
    return collector.run(
        duration_s, anomalies, seed=seed, name=name, faults=faults
    )


def fleet_batches(
    workload: WorkloadSpec,
    n_tenants: int,
    duration_s: float,
    anomalies: Sequence["ScheduledAnomaly"] = (),
    seed: Optional[int] = None,
    config: Optional[ServerConfig] = None,
    noise_scale: float = 1.0,
    anomalous_tenants: Optional[Sequence[int]] = None,
) -> Tuple[List[str], Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Simulate *n_tenants* independent servers as fleet tick batches.

    Returns ``(attributes, rounds)`` where *rounds* yields one
    ``(times, values, active)`` batch per simulated second, the shape
    :meth:`repro.fleet.FleetDetector.tick` ingests.  Each tenant runs
    its own :class:`DatabaseServer` with a seed spawned from one
    ``np.random.SeedSequence(seed)``, so tenants decorrelate but the
    whole fleet replays deterministically.  *anomalous_tenants* limits
    the scheduled anomalies to a subset (default: every tenant).

    This is the high-fidelity source for fleet smoke tests; the 10k
    benchmark uses :class:`repro.fleet.sim.FleetSimSource`, which trades
    the server model for whole-fleet numpy draws.
    """
    if n_tenants < 1:
        raise ValueError("n_tenants must be at least 1")
    children = np.random.SeedSequence(seed).spawn(n_tenants)
    anomalous = (
        set(range(n_tenants))
        if anomalous_tenants is None
        else set(int(t) for t in anomalous_tenants)
    )
    collectors = [
        TelemetryCollector(workload, config, noise_scale)
        for _ in range(n_tenants)
    ]
    attributes = list(collectors[0].catalog.numeric_names)
    streams = [
        c.stream(
            duration_s,
            anomalies if t in anomalous else (),
            seed=int(children[t].generate_state(1)[0]),
        )
        for t, c in enumerate(collectors)
    ]

    def rounds() -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        n_attrs = len(attributes)
        while True:
            times = np.zeros(n_tenants)
            values = np.zeros((n_tenants, n_attrs))
            active = np.zeros(n_tenants, dtype=bool)
            for t, stream in enumerate(streams):
                try:
                    tick_t, row, _cats = next(stream)
                except StopIteration:
                    continue
                times[t] = tick_t
                values[t] = [row[a] for a in attributes]
                active[t] = True
            if not active.any():
                return
            yield times, values, active

    return attributes, rounds()
