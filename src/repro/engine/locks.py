"""Row-lock contention model.

MySQL records only aggregate lock statistics (total row-lock wait time,
wait counts) — the very property that motivates DBSherlock's design
(Section 1).  Two effects are modelled:

* a birthday-style conflict probability — the chance a transaction touches
  a row some concurrent peer has locked, growing with in-flight lock
  footprint and shrinking with the size of the *hot* key space; and
* hot-row serialisation — when traffic funnels into a handful of rows
  (TPC-C's district ``D_NEXT_O_ID`` update), each hot row behaves like a
  tiny M/M/1 server whose service time is the lock holding time, and waits
  explode once its utilisation nears 1.

The Lock Contention anomaly (Table 1) redirects all NewOrder traffic to a
single warehouse/district, i.e. shrinks ``hot_fraction`` by orders of
magnitude, which drives the serialisation term — exactly the signature the
paper describes (soaring lock wait time while CPU stays moderate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LockModel"]

#: Lockable hot keys per unit of scale factor (one TPC-C warehouse exposes
#: on the order of a thousand frequently-locked rows: district rows, stock
#: rows of popular items, customer rows).
KEYS_PER_SCALE = 1000.0

#: Utilisation cap for the hot-row queueing term (keeps waits finite).
LOCK_RHO_CAP = 0.97


@dataclass
class LockModel:
    """Aggregate row-lock behaviour for one tick.

    Parameters
    ----------
    scale_factor:
        Workload scale (drives the size of the lockable key space).
    hot_fraction:
        Fraction of the key space receiving the write traffic
        (1.0 = uniform access; tiny values model a single hot district).
    """

    scale_factor: float
    hot_fraction: float = 1.0

    @property
    def hot_keys(self) -> float:
        """Number of keys absorbing the lock traffic."""
        return max(self.scale_factor * KEYS_PER_SCALE * self.hot_fraction, 1.0)

    def conflict_probability(self, concurrency: float, lock_rows: float) -> float:
        """Probability a transaction hits an already-locked row."""
        footprint = max(concurrency - 1.0, 0.0) * max(lock_rows, 0.0)
        return 1.0 - math.exp(-footprint / self.hot_keys)

    def hot_row_utilisation(
        self, tps: float, lock_rows: float, holding_time_ms: float
    ) -> float:
        """Mean utilisation of a hot row treated as a serial resource."""
        demand_ms = max(tps, 0.0) * max(lock_rows, 0.0) * max(holding_time_ms, 0.0)
        return demand_ms / (1000.0 * self.hot_keys)

    def wait_time_ms(
        self,
        tps: float,
        concurrency: float,
        lock_rows: float,
        holding_time_ms: float,
    ) -> float:
        """Expected per-transaction lock wait in milliseconds.

        Combines the birthday conflict term (a conflicting transaction
        waits on average half the peer's holding time) with the hot-row
        M/M/1 queueing term that dominates under skewed access.
        """
        p = self.conflict_probability(concurrency, lock_rows)
        birthday_wait = p * 0.5 * holding_time_ms
        rho = min(
            self.hot_row_utilisation(tps, lock_rows, holding_time_ms),
            LOCK_RHO_CAP,
        )
        queueing_wait = holding_time_ms * rho / (1.0 - rho)
        return birthday_wait + queueing_wait

    def waits_per_second(self, tps: float, p_conflict: float) -> float:
        """Number of lock-wait events per second."""
        return max(tps, 0.0) * p_conflict
