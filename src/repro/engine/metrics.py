"""Metric catalogue: TickState → ~190 aligned telemetry attributes.

Models the statistics DBSeer collects at 1-second intervals (Section 2.1):
Linux ``/proc`` resource counters, MySQL global status variables, and
transaction aggregates.  Real servers expose many near-duplicate counters
(per-core splits, handler counters tracking row reads, sectors tracking
bytes); we reproduce that redundancy deliberately — it is what makes the
diagnosis problem high-dimensional — and add per-metric observation noise.

Every metric is a small function of the ground-truth :class:`TickState`;
the catalogue is data-driven so tests can enumerate and audit it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.server import TickState

__all__ = ["MetricDef", "MetricCatalog"]


@dataclass(frozen=True)
class MetricDef:
    """One emitted telemetry attribute.

    Attributes
    ----------
    name:
        Emitted attribute name (``source.counter`` convention).
    fn:
        Maps the tick state to the metric's true value.
    noise:
        Relative (multiplicative) Gaussian noise applied on emission.
    jitter:
        Absolute additive Gaussian noise (keeps near-zero metrics from
        being perfectly constant, like real counters).
    non_negative:
        Clamp emitted values at zero (true for almost all counters).
    """

    name: str
    fn: Callable[[TickState], float]
    noise: float = 0.03
    jitter: float = 0.0
    non_negative: bool = True


def _core_split(state: TickState, core: int, n_cores: int = 4) -> float:
    """Utilisation share of one core; the scheduler spreads load unevenly."""
    base = state.cpu_util
    tilt = 1.0 + 0.12 * np.cos(core + state.time * 0.37)
    return min(base * tilt, 1.0)


def _txn_count(state: TickState, txn_type: str) -> float:
    return state.txn_counts.get(txn_type, 0.0)


def build_catalog(txn_types: Sequence[str]) -> List[MetricDef]:
    """All metric definitions for a workload's transaction types."""
    defs: List[MetricDef] = []

    def add(name: str, fn: Callable[[TickState], float], **kwargs) -> None:
        defs.append(MetricDef(name, fn, **kwargs))

    # ------------------------------------------------------------------
    # OS: CPU (aggregate + per-core user/system/idle/iowait)
    # ------------------------------------------------------------------
    add("os.cpu_usage", lambda s: 100.0 * s.cpu_util)
    add("os.cpu_idle", lambda s: 100.0 * (1.0 - s.cpu_util))
    add("os.cpu_user", lambda s: 100.0 * s.cpu_util * 0.78)
    add("os.cpu_system", lambda s: 100.0 * s.cpu_util * 0.22)
    add("os.cpu_iowait", lambda s: 100.0 * s.cpu_iowait_frac, jitter=0.2)
    add("os.run_queue", lambda s: s.run_queue, jitter=0.1)
    add("os.load_avg_1m", lambda s: s.run_queue + s.disk_queue * 0.3)
    for core in range(4):
        add(
            f"os.cpu{core}_user",
            lambda s, c=core: 100.0 * _core_split(s, c) * 0.78,
        )
        add(
            f"os.cpu{core}_system",
            lambda s, c=core: 100.0 * _core_split(s, c) * 0.22,
        )
        add(
            f"os.cpu{core}_idle",
            lambda s, c=core: 100.0 * (1.0 - _core_split(s, c)),
        )
        add(
            f"os.cpu{core}_iowait",
            lambda s, c=core: 100.0 * s.cpu_iowait_frac * (0.9 + 0.05 * c),
            jitter=0.2,
        )

    # ------------------------------------------------------------------
    # OS: scheduler / memory / VM
    # ------------------------------------------------------------------
    add("os.context_switches", lambda s: s.completed_tps * 9.0 + 2200.0)
    add("os.interrupts", lambda s: s.completed_tps * 4.0 + 1500.0)
    add("os.forks", lambda s: 3.0, jitter=1.0)
    add("os.procs_running", lambda s: 1.0 + s.run_queue, jitter=0.3)
    add("os.procs_blocked", lambda s: s.disk_queue * 0.4, jitter=0.2)
    add("os.page_faults_minor", lambda s: s.completed_tps * 12.0 + 800.0)
    add("os.page_faults_major", lambda s: s.page_faults, jitter=0.5)
    add("os.allocated_pages", lambda s: s.mem_used_mb * 64.0)
    add("os.free_pages", lambda s: (7000.0 - s.mem_used_mb) * 64.0)
    add("os.cached_pages", lambda s: (7000.0 - s.mem_used_mb) * 40.0)
    add("os.mem_used_mb", lambda s: s.mem_used_mb)
    add("os.mem_free_mb", lambda s: 7000.0 - s.mem_used_mb)
    add("os.swap_used_mb", lambda s: s.swap_used_mb, jitter=0.05)
    add("os.swap_free_mb", lambda s: 4096.0 - s.swap_used_mb)
    add("os.swap_in_pages", lambda s: s.swap_used_mb * 1.5, jitter=0.2)
    add("os.swap_out_pages", lambda s: s.swap_used_mb * 1.8, jitter=0.2)

    # ------------------------------------------------------------------
    # OS: disk
    # ------------------------------------------------------------------
    add("os.disk_read_ops", lambda s: s.disk_read_ops, jitter=0.5)
    add("os.disk_write_ops", lambda s: s.disk_write_ops, jitter=0.5)
    add("os.disk_read_mb", lambda s: s.disk_read_mb, jitter=0.02)
    add("os.disk_write_mb", lambda s: s.disk_write_mb, jitter=0.02)
    add("os.disk_sectors_read", lambda s: s.disk_read_mb * 2048.0)
    add("os.disk_sectors_written", lambda s: s.disk_write_mb * 2048.0)
    add("os.disk_utilization", lambda s: 100.0 * s.disk_util)
    add("os.disk_queue_depth", lambda s: s.disk_queue, jitter=0.1)
    add("os.disk_read_latency_ms", lambda s: s.io_latency_ms, jitter=0.02)
    add("os.disk_write_latency_ms", lambda s: s.io_latency_ms * 1.2, jitter=0.02)

    # ------------------------------------------------------------------
    # OS: network
    # ------------------------------------------------------------------
    add("os.network_send_mb", lambda s: s.net_send_mb, jitter=0.01)
    add("os.network_recv_mb", lambda s: s.net_recv_mb, jitter=0.01)
    add("os.network_send_packets", lambda s: s.net_send_mb * 900.0 + s.completed_tps)
    add("os.network_recv_packets", lambda s: s.net_recv_mb * 1100.0 + s.completed_tps)
    add("os.network_utilization", lambda s: 100.0 * s.net_util)
    add(
        "os.tcp_retransmits",
        lambda s: 0.5 + s.net_util * 8.0 + s.net_delay_ms * 0.05,
        jitter=0.5,
    )
    add("os.tcp_connections", lambda s: float(s.terminals) + 12.0, noise=0.01)
    add("os.ping_rtt_ms", lambda s: 0.4 + s.net_delay_ms, jitter=0.05)

    # ------------------------------------------------------------------
    # MySQL: statement counters
    # ------------------------------------------------------------------
    add("mysql.questions", lambda s: s.completed_tps * 5.2)
    add("mysql.com_select", lambda s: s.completed_tps * 2.6 + s.scan_rows / 5e4)
    add("mysql.com_insert", lambda s: s.rows_inserted / 2.5)
    add("mysql.com_update", lambda s: s.rows_updated / 2.0)
    add("mysql.com_delete", lambda s: s.rows_deleted / 1.5)
    add("mysql.com_commit", lambda s: s.completed_tps)
    add("mysql.com_rollback", lambda s: s.completed_tps * 0.004, jitter=0.2)
    add("mysql.slow_queries", lambda s: s.scan_rows / 2e5, jitter=0.05)
    add("mysql.select_full_join", lambda s: s.scan_rows / 1e5, jitter=0.05)
    add("mysql.select_scan", lambda s: 2.0 + s.scan_rows / 5e4, jitter=0.3)
    add("mysql.sort_rows", lambda s: s.completed_tps * 6.0 + s.scan_rows * 0.01)
    add("mysql.sort_scan", lambda s: s.completed_tps * 0.08, jitter=0.2)

    # ------------------------------------------------------------------
    # MySQL: threads / connections
    # ------------------------------------------------------------------
    add("mysql.threads_running", lambda s: 1.0 + s.concurrency, jitter=0.3)
    add("mysql.threads_connected", lambda s: float(s.terminals) + 2.0, noise=0.01)
    add("mysql.threads_created", lambda s: 0.1, jitter=0.1)
    add("mysql.connections", lambda s: float(s.terminals) + 4.0, noise=0.01)
    add("mysql.aborted_clients", lambda s: s.net_delay_ms * 0.01, jitter=0.1)
    add("mysql.aborted_connects", lambda s: 0.05, jitter=0.05)

    # ------------------------------------------------------------------
    # MySQL: InnoDB buffer pool
    # ------------------------------------------------------------------
    add("mysql.innodb_buffer_pool_read_requests", lambda s: s.logical_reads)
    add("mysql.innodb_buffer_pool_reads", lambda s: s.physical_reads, jitter=0.5)
    add(
        "mysql.innodb_buffer_pool_write_requests",
        lambda s: s.rows_inserted + s.rows_updated + s.rows_deleted,
    )
    add("mysql.innodb_buffer_pool_pages_dirty", lambda s: s.dirty_pages)
    add("mysql.innodb_buffer_pool_pages_free", lambda s: s.free_pages)
    add(
        "mysql.innodb_buffer_pool_pages_data",
        lambda s: 48000.0 - s.free_pages,
    )
    add("mysql.innodb_buffer_pool_pages_flushed", lambda s: s.pages_flushed)
    add("mysql.innodb_buffer_pool_hit_rate", lambda s: 100.0 * s.buffer_hit_rate,
        noise=0.002)

    # ------------------------------------------------------------------
    # MySQL: InnoDB row locks
    # ------------------------------------------------------------------
    add(
        "mysql.innodb_row_lock_time_ms",
        lambda s: s.lock_wait_ms_per_txn * s.completed_tps,
        jitter=0.5,
    )
    add("mysql.innodb_row_lock_waits", lambda s: s.lock_waits, jitter=0.3)
    add(
        "mysql.innodb_row_lock_current_waits",
        lambda s: s.lock_current_waits,
        jitter=0.2,
    )
    add(
        "mysql.innodb_row_lock_time_avg_ms",
        lambda s: s.lock_wait_ms_per_txn,
        jitter=0.05,
    )
    add("mysql.innodb_deadlocks", lambda s: s.lock_waits * 0.002, jitter=0.02)
    add("mysql.table_locks_waited", lambda s: s.lock_waits * 0.05, jitter=0.1)
    add("mysql.table_locks_immediate", lambda s: s.completed_tps * 4.0)

    # ------------------------------------------------------------------
    # MySQL: InnoDB I/O and redo log
    # ------------------------------------------------------------------
    add("mysql.innodb_data_reads", lambda s: s.physical_reads + 3.0)
    add("mysql.innodb_data_writes", lambda s: s.disk_write_ops * 0.8)
    add("mysql.innodb_data_read_mb", lambda s: s.disk_read_mb * 0.95)
    add("mysql.innodb_data_written_mb", lambda s: s.disk_write_mb * 0.9)
    add("mysql.innodb_os_log_fsyncs", lambda s: s.completed_tps / 5.0 + 1.0)
    add("mysql.innodb_log_write_requests", lambda s: s.log_writes)
    add("mysql.innodb_log_writes", lambda s: s.log_writes * 0.4 + 2.0)
    add("mysql.innodb_log_waits", lambda s: max(s.log_writes - 8000.0, 0.0) * 0.01,
        jitter=0.05)
    add("mysql.innodb_pages_created", lambda s: s.rows_inserted / 20.0)
    add("mysql.innodb_pages_written", lambda s: s.pages_flushed)

    # ------------------------------------------------------------------
    # MySQL: handler counters (row access paths)
    # ------------------------------------------------------------------
    add(
        "mysql.handler_read_rnd_next",
        lambda s: s.scan_rows + s.logical_reads * 0.05,
    )
    add("mysql.handler_read_key", lambda s: s.logical_reads * 0.7)
    add("mysql.handler_read_next", lambda s: s.logical_reads * 0.25)
    add("mysql.handler_read_first", lambda s: s.completed_tps * 0.3, jitter=0.2)
    add("mysql.handler_write", lambda s: s.rows_inserted)
    add("mysql.handler_update", lambda s: s.rows_updated)
    add("mysql.handler_delete", lambda s: s.rows_deleted)
    add("mysql.handler_commit", lambda s: s.completed_tps)

    # ------------------------------------------------------------------
    # MySQL: misc server state
    # ------------------------------------------------------------------
    add("mysql.created_tmp_tables", lambda s: s.completed_tps * 0.12 +
        s.scan_rows / 2e5, jitter=0.3)
    add("mysql.created_tmp_disk_tables", lambda s: s.scan_rows / 1e6, jitter=0.05)
    add("mysql.open_tables", lambda s: 220.0, noise=0.005)
    add("mysql.opened_tables", lambda s: 0.2 + s.pages_flushed / 4000.0, jitter=0.2)
    add("mysql.bytes_sent_mb", lambda s: s.net_send_mb * 0.92)
    add("mysql.bytes_received_mb", lambda s: s.net_recv_mb * 0.92)
    add("mysql.cpu_usage", lambda s: 100.0 * s.db_cpu_cores / 4.0)
    add("mysql.mem_rss_mb", lambda s: 1550.0 + s.dirty_pages / 400.0, noise=0.005)
    add("mysql.io_read_mb", lambda s: s.disk_read_mb * 0.9)
    add("mysql.io_write_mb", lambda s: s.disk_write_mb * 0.85)
    add("mysql.uptime_ratio", lambda s: 1.0, noise=0.0)

    # ------------------------------------------------------------------
    # Transaction aggregates (DBSeer preprocessing output)
    # ------------------------------------------------------------------
    add("txn.avg_latency_ms", lambda s: s.avg_latency_ms, noise=0.05)
    add("txn.p95_latency_ms", lambda s: s.p95_latency_ms, noise=0.08)
    add("txn.p99_latency_ms", lambda s: s.p99_latency_ms, noise=0.10)
    add("txn.throughput_tps", lambda s: s.completed_tps, noise=0.02)
    add("txn.count_total", lambda s: s.completed_tps, noise=0.0)
    add("txn.client_wait_ms", lambda s: s.client_wait_ms, noise=0.05)
    for txn_type in txn_types:
        add(
            f"txn.count_{txn_type}",
            lambda s, t=txn_type: _txn_count(s, t),
            noise=0.0,
        )
        add(
            f"txn.avg_latency_{txn_type}_ms",
            # zlib.crc32, not hash(): the per-type latency multiplier must
            # be identical across interpreter processes (PYTHONHASHSEED
            # randomizes str.__hash__), or simulated runs diverge between
            # a training process and a diagnosing one.
            lambda s, t=txn_type: s.avg_latency_ms
            * (0.8 + 0.4 * (zlib.crc32(t.encode()) % 5) / 5.0),
            noise=0.08,
        )
    return defs


class MetricCatalog:
    """Emits telemetry rows (numeric + categorical) from tick states."""

    def __init__(
        self,
        txn_types: Sequence[str],
        noise_scale: float = 1.0,
    ) -> None:
        self.definitions = build_catalog(txn_types)
        self.noise_scale = float(noise_scale)
        names = [d.name for d in self.definitions]
        if len(names) != len(set(names)):
            raise ValueError("duplicate metric names in catalogue")

    @property
    def numeric_names(self) -> List[str]:
        """Names of all numeric metrics, in catalogue order."""
        return [d.name for d in self.definitions]

    @property
    def categorical_names(self) -> List[str]:
        """Names of the emitted categorical attributes."""
        return [
            "workload.dominant_txn",
            "mysql.version",
            "os.io_scheduler",
            "mysql.adaptive_flushing",
        ]

    def emit_numeric(
        self, state: TickState, rng: np.random.Generator
    ) -> Dict[str, float]:
        """One noisy numeric telemetry row for *state*."""
        row: Dict[str, float] = {}
        for definition in self.definitions:
            true_value = float(definition.fn(state))
            value = true_value
            if definition.noise > 0:
                value *= 1.0 + rng.normal(0.0, definition.noise * self.noise_scale)
            if definition.jitter > 0:
                value += rng.normal(0.0, definition.jitter * self.noise_scale)
            if definition.non_negative and value < 0:
                value = 0.0
            row[definition.name] = value
        return row

    def emit_categorical(self, state: TickState) -> Dict[str, str]:
        """The categorical attributes for *state*.

        Three are invariants (never valid explanations — the paper's
        limitation (ii)); the dominant transaction type varies with mix.
        """
        return {
            "workload.dominant_txn": state.dominant_txn or "none",
            "mysql.version": "5.6.20",
            "os.io_scheduler": "deadline",
            "mysql.adaptive_flushing": "off",
        }
