"""Hardware resource models and queueing helpers.

The server is modelled after the paper's Microsoft Azure A3 instances:
4 cores at 2.1 GHz, 7 GB RAM, network-attached storage, and a ~100 Mbit
virtual NIC.  Service times inflate with utilisation through an M/M/1-style
``1/(1-ρ)`` factor, capped so the closed-loop fixed point stays stable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerConfig", "mm1_latency_factor"]

#: Utilisation cap applied before the queueing factor, keeping the
#: latency finite when demand exceeds capacity.
RHO_CAP = 0.97


def mm1_latency_factor(utilisation: float, cap: float = RHO_CAP) -> float:
    """Queueing inflation factor ``1 / (1 − ρ)`` with ρ capped.

    A resource at 50 % utilisation doubles its service time; near
    saturation the factor approaches ``1/(1-cap)`` ≈ 33×.
    """
    rho = min(max(utilisation, 0.0), cap)
    return 1.0 / (1.0 - rho)


@dataclass(frozen=True)
class ServerConfig:
    """Capacities of the simulated database host.

    Attributes
    ----------
    n_cores:
        Physical CPU cores (Azure A3: 4).
    disk_iops:
        Sustainable random I/O operations per second.
    disk_io_ms:
        Unloaded service time of one random I/O, in milliseconds.
    disk_bandwidth_mb:
        Sequential bandwidth in MB/s (used by backup/restore streams).
    net_bandwidth_mb:
        NIC bandwidth in MB/s.
    ram_mb:
        Physical memory (Azure A3: 7 GB).
    buffer_pool_pages:
        InnoDB buffer pool size in 16 KB pages.
    page_size_kb:
        Database page size.
    rows_per_page:
        Average rows per data page (sizes dirty-page generation).
    flush_capacity_pages:
        Pages per second the background flusher can write before
        competing with foreground I/O.
    base_overhead_ms:
        Fixed per-transaction overhead (parse, optimizer, commit path).
    """

    n_cores: int = 4
    disk_iops: float = 2500.0
    disk_io_ms: float = 0.35
    disk_bandwidth_mb: float = 120.0
    net_bandwidth_mb: float = 40.0
    ram_mb: float = 7000.0
    buffer_pool_pages: int = 48_000
    page_size_kb: float = 16.0
    rows_per_page: float = 20.0
    flush_capacity_pages: float = 2400.0
    base_overhead_ms: float = 0.30

    @property
    def cpu_capacity_ms(self) -> float:
        """Total CPU milliseconds available per wall-clock second."""
        return self.n_cores * 1000.0

    @property
    def buffer_pool_mb(self) -> float:
        """Buffer pool size in megabytes."""
        return self.buffer_pool_pages * self.page_size_kb / 1024.0

    def working_set_pages(self, scale_factor: float) -> float:
        """Hot working-set size for a workload scale.

        Calibrated so scale 500 (the paper's 50 GB TPC-C) slightly
        overflows the pool, giving a realistic ~1-2 % miss rate.
        """
        return scale_factor * 110.0

    def base_miss_rate(self, scale_factor: float) -> float:
        """Buffer-pool miss probability for the steady-state working set."""
        pressure = self.working_set_pages(scale_factor) / self.buffer_pool_pages
        if pressure <= 1.0:
            return 0.002
        return min(0.002 + 0.015 * (pressure - 1.0), 0.25)
