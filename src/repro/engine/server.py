"""The discrete-time database server simulation.

Each 1-second tick solves a small fixed point: the closed-loop terminal
pool offers transactions at a rate that depends on latency, while latency
depends on the utilisation the offered rate induces on CPU, disk, network,
and locks.  Anomaly injectors perturb the tick through
:class:`TickModifiers` (extra competing load, network delay, flush storms,
hot-key redirection, ...), and the resulting :class:`TickState` is the
ground truth from which :mod:`repro.engine.metrics` emits telemetry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

import numpy as np

from repro.engine.locks import LockModel
from repro.engine.resources import ServerConfig, mm1_latency_factor
from repro.workload.client import TerminalPool
from repro.workload.spec import WorkloadSpec

__all__ = ["TickModifiers", "TickState", "DatabaseServer"]


@dataclass(frozen=True)
class TickModifiers:
    """Perturbations anomaly injectors apply to one tick.

    Additive fields default to 0, multiplicative fields to 1; modifiers
    from several simultaneous injectors combine through :meth:`combine`
    (sums and products respectively), which is what makes compound
    anomalies (Section 8.7) possible.
    """

    # workload shape
    tps_multiplier: float = 1.0
    added_terminals: int = 0
    # competing external processes (stress-ng style)
    external_cpu_cores: float = 0.0
    external_disk_ops: float = 0.0
    external_net_mb: float = 0.0
    external_mem_mb: float = 0.0
    # rogue query stream (poorly written JOIN)
    scan_rows_per_s: float = 0.0
    scan_cpu_cores: float = 0.0
    # physical design / bulk loads
    write_amplification: float = 1.0
    bulk_insert_rows: float = 0.0
    # backup stream (mysqldump)
    dump_read_mb: float = 0.0
    dump_net_mb: float = 0.0
    # flush storm (mysqladmin flush-logs / refresh)
    flush_pages: float = 0.0
    # network path
    network_delay_ms: float = 0.0
    # lock hot spot (None = workload default)
    hot_fraction_override: Optional[float] = None
    # cache pollution (large scans evicting hot pages)
    buffer_miss_boost: float = 0.0

    def combine(self, other: "TickModifiers") -> "TickModifiers":
        """Merge two modifier sets (used for compound anomalies)."""
        hot = self.hot_fraction_override
        if other.hot_fraction_override is not None:
            hot = (
                other.hot_fraction_override
                if hot is None
                else min(hot, other.hot_fraction_override)
            )
        return TickModifiers(
            tps_multiplier=self.tps_multiplier * other.tps_multiplier,
            added_terminals=self.added_terminals + other.added_terminals,
            external_cpu_cores=self.external_cpu_cores + other.external_cpu_cores,
            external_disk_ops=self.external_disk_ops + other.external_disk_ops,
            external_net_mb=self.external_net_mb + other.external_net_mb,
            external_mem_mb=self.external_mem_mb + other.external_mem_mb,
            scan_rows_per_s=self.scan_rows_per_s + other.scan_rows_per_s,
            scan_cpu_cores=self.scan_cpu_cores + other.scan_cpu_cores,
            write_amplification=self.write_amplification
            * other.write_amplification,
            bulk_insert_rows=self.bulk_insert_rows + other.bulk_insert_rows,
            dump_read_mb=self.dump_read_mb + other.dump_read_mb,
            dump_net_mb=self.dump_net_mb + other.dump_net_mb,
            flush_pages=self.flush_pages + other.flush_pages,
            network_delay_ms=self.network_delay_ms + other.network_delay_ms,
            hot_fraction_override=hot,
            buffer_miss_boost=self.buffer_miss_boost + other.buffer_miss_boost,
        )


IDENTITY_MODIFIERS = TickModifiers()


@dataclass
class TickState:
    """Ground-truth server state for one simulated second."""

    time: float = 0.0
    # workload
    offered_tps: float = 0.0
    completed_tps: float = 0.0
    txn_counts: Dict[str, float] = field(default_factory=dict)
    avg_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    concurrency: float = 0.0
    terminals: int = 0
    client_wait_ms: float = 0.0
    # cpu
    db_cpu_cores: float = 0.0
    external_cpu_cores: float = 0.0
    cpu_util: float = 0.0
    cpu_iowait_frac: float = 0.0
    run_queue: float = 0.0
    # disk
    disk_read_ops: float = 0.0
    disk_write_ops: float = 0.0
    disk_read_mb: float = 0.0
    disk_write_mb: float = 0.0
    disk_util: float = 0.0
    disk_queue: float = 0.0
    io_latency_ms: float = 0.0
    # buffer pool
    buffer_hit_rate: float = 1.0
    logical_reads: float = 0.0
    physical_reads: float = 0.0
    dirty_pages: float = 0.0
    pages_flushed: float = 0.0
    free_pages: float = 0.0
    # memory
    mem_used_mb: float = 0.0
    swap_used_mb: float = 0.0
    page_faults: float = 0.0
    # network
    net_send_mb: float = 0.0
    net_recv_mb: float = 0.0
    net_util: float = 0.0
    net_delay_ms: float = 0.0
    # locks
    lock_wait_ms_per_txn: float = 0.0
    lock_waits: float = 0.0
    lock_current_waits: float = 0.0
    # DML row counters
    rows_read: float = 0.0
    rows_inserted: float = 0.0
    rows_updated: float = 0.0
    rows_deleted: float = 0.0
    log_writes: float = 0.0
    scan_rows: float = 0.0
    # misc derived
    dominant_txn: str = ""


class DatabaseServer:
    """A simulated MySQL-like server under a closed-loop OLTP workload.

    Parameters
    ----------
    workload:
        The transaction mix and scale (see :mod:`repro.workload`).
    config:
        Host capacities (defaults model an Azure A3 instance).
    """

    #: fixed-point iterations per tick; the map is a contraction in
    #: practice, and eight rounds settle latency to well under 1 %.
    FIXED_POINT_ROUNDS = 8

    def __init__(
        self,
        workload: WorkloadSpec,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.workload = workload
        self.config = config or ServerConfig()
        self._dirty_backlog = 500.0  # pages
        self._prev_latency_ms = 5.0

    # ------------------------------------------------------------------
    def warm_up(
        self,
        seconds: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Run ``seconds`` unmodified ticks before ``t = 0``.

        Settles the dirty-page backlog and the latency fixed point so a
        collection (batch or streaming) starts from steady state rather
        than cold-start transients that would read as an anomaly at the
        origin.
        """
        rng = rng or np.random.default_rng()
        for i in range(int(seconds)):
            self.tick(-float(seconds) + i, TickModifiers(), rng)

    # ------------------------------------------------------------------
    def tick(
        self,
        time: float,
        modifiers: TickModifiers = IDENTITY_MODIFIERS,
        rng: Optional[np.random.Generator] = None,
    ) -> TickState:
        """Advance the simulation by one second and return its state."""
        rng = rng or np.random.default_rng()
        workload = self.workload
        config = self.config

        pool = TerminalPool(
            n_terminals=workload.n_terminals + modifiers.added_terminals,
            think_time_s=workload.think_time_s,
            target_rate=workload.base_tps * modifiers.tps_multiplier,
        )

        # workload-shape constants for this tick
        cpu_ms_per_txn = workload.mix_average("cpu_ms")
        logical_per_txn = workload.mix_average("logical_reads")
        write_rows_per_txn = workload.mix_average("write_rows")
        lock_rows_per_txn = workload.mix_average("lock_rows")
        net_out_per_txn = workload.mix_average("net_out_bytes") / 1e6
        net_in_per_txn = workload.mix_average("net_in_bytes") / 1e6

        hot_fraction = (
            modifiers.hot_fraction_override
            if modifiers.hot_fraction_override is not None
            else workload.hot_fraction
        )
        lock_model = LockModel(workload.scale_factor, hot_fraction)

        miss_rate = config.base_miss_rate(workload.scale_factor)
        miss_rate = min(miss_rate + modifiers.buffer_miss_boost, 0.6)

        latency_ms = self._prev_latency_ms
        state = TickState(time=time)
        for _ in range(self.FIXED_POINT_ROUNDS):
            offered = pool.offered_tps(latency_ms / 1000.0)

            # --- CPU -----------------------------------------------------
            db_cpu_cores = offered * cpu_ms_per_txn / 1000.0
            db_cpu_cores += modifiers.scan_cpu_cores
            total_cpu = (
                db_cpu_cores + modifiers.external_cpu_cores + 0.10  # OS noise
            )
            cpu_util = total_cpu / config.n_cores
            cpu_factor = mm1_latency_factor(cpu_util)

            # --- Buffer pool / disk reads --------------------------------
            physical_reads = offered * logical_per_txn * miss_rate
            dump_read_ops = modifiers.dump_read_mb * 1024.0 / 64.0  # 64 KB ops
            disk_read_ops = physical_reads + dump_read_ops

            # --- Writes: dirty pages, log, flushing ----------------------
            effective_write_rows = (
                offered * write_rows_per_txn * modifiers.write_amplification
                + modifiers.bulk_insert_rows
            )
            dirty_generated = effective_write_rows / config.rows_per_page
            flush_demand = (
                min(
                    self._dirty_backlog + dirty_generated,
                    config.flush_capacity_pages,
                )
                + modifiers.flush_pages
            )
            log_writes = offered * max(write_rows_per_txn, 0.05)
            log_fsyncs = offered / 5.0  # group commit
            disk_write_ops = (
                flush_demand * 0.5  # flusher coalesces pages into larger I/Os
                + log_fsyncs
                + modifiers.bulk_insert_rows / config.rows_per_page
            )

            disk_ops = disk_read_ops + disk_write_ops + modifiers.external_disk_ops
            disk_util = disk_ops / config.disk_iops
            disk_factor = mm1_latency_factor(disk_util)
            io_ms_per_txn = (
                logical_per_txn * miss_rate * config.disk_io_ms * disk_factor
            )
            # log flush on commit also rides the disk
            io_ms_per_txn += 0.2 * config.disk_io_ms * disk_factor

            # --- Network --------------------------------------------------
            net_send = offered * net_out_per_txn + modifiers.dump_net_mb
            net_recv = offered * net_in_per_txn
            net_total = net_send + net_recv + modifiers.external_net_mb
            net_util = net_total / config.net_bandwidth_mb
            net_factor = mm1_latency_factor(net_util)
            transfer_ms = (net_out_per_txn + net_in_per_txn) * 1000.0 / max(
                config.net_bandwidth_mb, 1e-9
            )
            net_ms_per_txn = (
                modifiers.network_delay_ms + transfer_ms * net_factor
            )

            # --- Locks ----------------------------------------------------
            concurrency = offered * latency_ms / 1000.0
            holding_ms = (
                config.base_overhead_ms
                + cpu_ms_per_txn * cpu_factor
                + io_ms_per_txn
            )
            lock_wait_ms = lock_model.wait_time_ms(
                offered, concurrency, lock_rows_per_txn, holding_ms
            )

            new_latency = (
                config.base_overhead_ms
                + cpu_ms_per_txn * cpu_factor
                + io_ms_per_txn
                + net_ms_per_txn
                + lock_wait_ms
            )
            # damp the iteration for stability
            latency_ms = 0.5 * latency_ms + 0.5 * new_latency

        # ------------------------------------------------------------------
        # Commit the fixed point into the tick state.
        # ------------------------------------------------------------------
        offered = pool.offered_tps(latency_ms / 1000.0)
        completed = offered  # closed loop: completions match submissions
        p_conflict = lock_model.conflict_probability(
            offered * latency_ms / 1000.0, lock_rows_per_txn
        )

        self._dirty_backlog = max(
            self._dirty_backlog + dirty_generated - flush_demand, 0.0
        )
        self._prev_latency_ms = latency_ms

        weights = workload.weights
        counts = rng.multinomial(
            max(int(round(completed)), 0), weights
        ).astype(float)
        txn_counts = dict(zip(workload.type_names, counts))
        dominant = workload.type_names[int(np.argmax(counts))] if counts.size else ""

        insert_rows = updated_rows = deleted_rows = 0.0
        for txn_type, count in zip(workload.types, counts):
            rows = count * txn_type.write_rows
            insert_rows += rows * txn_type.insert_fraction
            deleted_rows += rows * txn_type.delete_fraction
            updated_rows += rows * max(
                1.0 - txn_type.insert_fraction - txn_type.delete_fraction, 0.0
            )
        insert_rows += modifiers.bulk_insert_rows

        db_mem = config.buffer_pool_mb + 800.0  # pool + server overhead
        mem_used = min(
            db_mem + 600.0 + modifiers.external_mem_mb, config.ram_mb
        )
        swap_used = max(
            db_mem + 600.0 + modifiers.external_mem_mb - config.ram_mb, 0.0
        )

        state.time = time
        state.offered_tps = offered
        state.completed_tps = completed
        state.txn_counts = txn_counts
        state.avg_latency_ms = latency_ms
        state.p95_latency_ms = latency_ms * 1.9
        state.p99_latency_ms = latency_ms * 2.8
        state.concurrency = offered * latency_ms / 1000.0
        state.terminals = pool.n_terminals
        state.client_wait_ms = latency_ms + modifiers.network_delay_ms
        state.db_cpu_cores = db_cpu_cores
        state.external_cpu_cores = modifiers.external_cpu_cores
        state.cpu_util = min(cpu_util, 1.0)
        state.cpu_iowait_frac = min(disk_util * 0.25, 0.6)
        state.run_queue = max(total_cpu - config.n_cores, 0.0) + min(
            total_cpu, config.n_cores
        )
        state.disk_read_ops = disk_read_ops + modifiers.external_disk_ops * 0.5
        state.disk_write_ops = disk_write_ops + modifiers.external_disk_ops * 0.5
        state.disk_read_mb = (
            physical_reads * config.page_size_kb / 1024.0 + modifiers.dump_read_mb
        )
        state.disk_write_mb = (
            disk_write_ops * config.page_size_kb / 1024.0
        )
        state.disk_util = min(disk_util, 1.0)
        state.disk_queue = disk_util * 4.0 / max(1.0 - min(disk_util, 0.97), 0.03)
        state.io_latency_ms = config.disk_io_ms * disk_factor
        state.buffer_hit_rate = 1.0 - miss_rate
        state.logical_reads = offered * logical_per_txn + modifiers.scan_rows_per_s
        state.physical_reads = physical_reads
        state.dirty_pages = self._dirty_backlog
        state.pages_flushed = flush_demand
        state.free_pages = max(
            config.buffer_pool_pages
            - config.working_set_pages(workload.scale_factor),
            config.buffer_pool_pages * 0.02,
        )
        state.mem_used_mb = mem_used
        state.swap_used_mb = swap_used
        state.page_faults = physical_reads + swap_used * 2.0
        state.net_send_mb = net_send
        state.net_recv_mb = net_recv
        state.net_util = min(net_util, 1.0)
        state.net_delay_ms = modifiers.network_delay_ms
        state.lock_wait_ms_per_txn = lock_wait_ms
        state.lock_waits = lock_model.waits_per_second(offered, p_conflict)
        state.lock_current_waits = state.lock_waits * latency_ms / 1000.0
        state.rows_read = state.logical_reads
        state.rows_inserted = insert_rows
        state.rows_updated = updated_rows
        state.rows_deleted = deleted_rows
        state.log_writes = log_writes + modifiers.bulk_insert_rows
        state.scan_rows = modifiers.scan_rows_per_s
        state.dominant_txn = dominant
        return state
