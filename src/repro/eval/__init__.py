"""Evaluation harness: dataset suites, accuracy metrics, experiment protocols."""

from repro.eval.metrics import (
    MeanScores,
    PredicateScores,
    score_predicates_mean,
    margin_of_confidence,
    score_predicates,
    topk_contains,
)
from repro.eval.harness import (
    AnomalyDataset,
    build_suite,
    simulate_run,
    evaluate_single_models,
    build_merged_models,
)
from repro.eval.chaos import FaultProfile, PROFILES, run_chaos_suite

__all__ = [
    "FaultProfile",
    "PROFILES",
    "run_chaos_suite",
    "PredicateScores",
    "MeanScores",
    "score_predicates_mean",
    "score_predicates",
    "margin_of_confidence",
    "topk_contains",
    "AnomalyDataset",
    "simulate_run",
    "build_suite",
    "evaluate_single_models",
    "build_merged_models",
]
