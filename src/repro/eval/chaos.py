"""Chaos evaluation: diagnosis accuracy under degraded telemetry.

The paper's protocols assume clean, gap-free telemetry.  Real collection
is not: samples drop, probes die and flat-line, cells arrive as NaN,
clocks skew, and collector upgrades rename or drop whole attributes.
This harness replays the anomaly scenario suite under graded *fault
profiles* — composable :mod:`repro.faults` plans applied to the test
datasets only (causal models are always built from clean training runs,
as an operator's model library would be) — and reports how correct-cause
confidence margins and top-1 accuracy degrade.  Ranking always goes
through a :class:`~repro.schema.reconcile.SchemaReconciler`: a no-op on
unchanged schemas, and the recovery mechanism under the ``drift``
profile's :class:`~repro.faults.SchemaDrift`.

The headline robustness claim (asserted by ``benchmarks/bench_chaos.py``):
under the *moderate* profile every scenario completes end-to-end with no
exceptions, and the mean confidence margin degrades by a bounded amount.
"""

from __future__ import annotations

import traceback
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.eval.harness import (
    AnomalyDataset,
    build_model,
    build_suite,
    rank_models,
    SINGLE_MODEL_THETA,
)
from repro.eval.metrics import margin_of_confidence, topk_contains
from repro.faults import (
    ClockSkew,
    DropTicks,
    DuplicateTicks,
    FaultInjector,
    FaultPlan,
    FlakyIO,
    FSFault,
    FullDisk,
    NaNValues,
    ReadCorruption,
    SchemaDrift,
    SlowFsync,
    SpikeCorruption,
    StuckAtCounter,
    TornRename,
)
from repro.schema.reconcile import SchemaReconciler

__all__ = [
    "FaultProfile",
    "PROFILES",
    "FleetFaultProfile",
    "FLEET_PROFILES",
    "StorageFaultProfile",
    "STORAGE_PROFILES",
    "run_chaos_suite",
]


@dataclass(frozen=True)
class FaultProfile:
    """A named, graded bundle of collection faults.

    Rates are per-tick (drop/duplicate) or per-cell (nan/spike)
    probabilities; ``stuck_attrs`` counts randomly chosen attributes
    frozen at their onset value.  :meth:`plan` compiles the profile into
    a deterministic :class:`~repro.faults.FaultPlan` for a given seed.
    """

    name: str
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    nan_rate: float = 0.0
    stuck_attrs: int = 0
    spike_rate: float = 0.0
    clock_offset_s: float = 0.0
    clock_drift: float = 0.0
    #: schema drift (collector upgrade): per-attribute rename/drop
    #: probabilities and junk columns appended.
    rename_rate: float = 0.0
    schema_drop_rate: float = 0.0
    add_junk: int = 0

    def plan(self, seed: int) -> FaultPlan:
        """Compile into a seeded fault plan (identical plan per seed)."""
        injectors: List[FaultInjector] = []
        if self.clock_offset_s or self.clock_drift:
            injectors.append(
                ClockSkew(offset_s=self.clock_offset_s, drift=self.clock_drift)
            )
        if self.drop_rate:
            injectors.append(DropTicks(self.drop_rate))
        if self.duplicate_rate:
            injectors.append(DuplicateTicks(self.duplicate_rate))
        if self.nan_rate:
            injectors.append(NaNValues(self.nan_rate))
        if self.spike_rate:
            injectors.append(SpikeCorruption(self.spike_rate))
        for _ in range(self.stuck_attrs):
            injectors.append(StuckAtCounter())
        if self.rename_rate or self.schema_drop_rate or self.add_junk:
            # last, so the drifted names are what every earlier fault's
            # survivors get published under
            injectors.append(
                SchemaDrift(
                    rename_rate=self.rename_rate,
                    drop_rate=self.schema_drop_rate,
                    add_junk=self.add_junk,
                )
            )
        return FaultPlan(injectors, seed=seed)


#: The graded profile ladder.  ``moderate`` is the acceptance profile:
#: 5 % dropped ticks, 2 % NaN cells, one stuck-at attribute.
PROFILES: Dict[str, FaultProfile] = {
    "clean": FaultProfile(name="clean"),
    "light": FaultProfile(name="light", drop_rate=0.01, nan_rate=0.005),
    "moderate": FaultProfile(
        name="moderate", drop_rate=0.05, nan_rate=0.02, stuck_attrs=1
    ),
    "heavy": FaultProfile(
        name="heavy",
        drop_rate=0.15,
        duplicate_rate=0.05,
        nan_rate=0.08,
        stuck_attrs=3,
        spike_rate=0.01,
        clock_offset_s=2.0,
        clock_drift=0.001,
    ),
    # collector upgrade: ~a third of the numeric attributes renamed, a
    # few dropped, junk columns appended — recovered by schema
    # reconciliation, not by the telemetry repair path.
    "drift": FaultProfile(
        name="drift", rename_rate=0.35, schema_drop_rate=0.02, add_junk=3
    ),
}


@dataclass(frozen=True)
class FleetFaultProfile:
    """A tenant-targeted fault bundle for fleet chaos runs.

    Unlike :class:`FaultProfile`, which corrupts *telemetry*, this
    profile picks hostile *tenants*: a deterministic
    ``tenant_fraction`` slice of the fleet is partitioned into lanes
    that raise mid-detection (:class:`~repro.faults.LaneExceptionFault`),
    tenants whose diagnoses hang past the scheduler's deadlines
    (:class:`~repro.faults.DiagnosisHang`), and tenants whose durable
    state rots on disk between shutdown and recovery
    (:class:`~repro.faults.CorruptTenantState`).  Everything outside the
    slice must be bitwise-unaffected — that blast-radius bound is what
    ``benchmarks/bench_fleet_chaos.py`` asserts.
    """

    name: str
    #: fraction of the fleet that is faulted at all.
    tenant_fraction: float = 0.2
    #: share of the faulted slice whose detection lane raises; the
    #: remainder (minus the corrupt tenants) hangs in diagnosis.
    lane_share: float = 0.5
    #: how long a hanging tenant's explain sleeps, seconds.
    hang_s: float = 0.3
    #: tenants whose on-disk state is corrupted before recovery.
    corrupt_tenants: int = 1
    #: corruption flavour — see ``CorruptTenantState.MODES``.
    corrupt_mode: str = "checkpoint"

    def assign(self, tenants: Sequence[str], seed: int) -> Dict[str, List[str]]:
        """Deterministically partition ``tenants`` into fault roles.

        Returns ``{"lane": [...], "hang": [...], "corrupt": [...],
        "clean": [...]}`` — disjoint, covering every tenant, and
        identical for identical ``(tenants, seed)``.  Corrupt tenants
        are drawn from the faulted slice first so the total blast
        radius never exceeds ``tenant_fraction``.
        """
        names = list(tenants)
        n_fault = int(round(len(names) * self.tenant_fraction))
        n_fault = max(0, min(len(names), n_fault))
        rng = np.random.default_rng(seed)
        picked = sorted(
            rng.choice(len(names), size=n_fault, replace=False).tolist()
        )
        faulted = [names[i] for i in picked]
        n_corrupt = min(self.corrupt_tenants, len(faulted))
        corrupt = faulted[:n_corrupt]
        rest = faulted[n_corrupt:]
        n_lane = int(round(len(rest) * self.lane_share))
        lane = rest[:n_lane]
        hang = rest[n_lane:]
        faulted_set = set(faulted)
        clean = [n for n in names if n not in faulted_set]
        return {"lane": lane, "hang": hang, "corrupt": corrupt, "clean": clean}


#: Fleet chaos ladder.  ``storm`` is the acceptance profile: 20 % of
#: tenants faulted, split between raising lanes and hanging diagnoses,
#: with one durably corrupted tenant.
FLEET_PROFILES: Dict[str, FleetFaultProfile] = {
    "calm": FleetFaultProfile(
        name="calm", tenant_fraction=0.05, corrupt_tenants=0
    ),
    "storm": FleetFaultProfile(name="storm", tenant_fraction=0.2),
    "monsoon": FleetFaultProfile(
        name="monsoon", tenant_fraction=0.4, corrupt_tenants=2, hang_s=0.5
    ),
}


@dataclass(frozen=True)
class StorageFaultProfile:
    """A tenant-targeted *disk* fault bundle for storage chaos runs.

    Where :class:`FleetFaultProfile` corrupts computation (lanes,
    diagnoses), this profile makes the filesystem misbehave underneath
    a slice of the fleet: full disks (ENOSPC), flaky transient EIO,
    torn atomic renames, and read corruption, built from the
    :mod:`repro.faults.fs` injectors.  Fault path filters target each
    victim tenant's ``ticks.wal`` and ``checkpoint.json`` specifically
    — never ``health.log`` — so the health journal keeps recording the
    degraded/re-promoted transitions the storage faults cause (the
    invariant ``benchmarks/bench_storage_chaos.py`` asserts).
    """

    name: str
    #: fraction of the fleet whose disk misbehaves at all.
    tenant_fraction: float = 0.25
    #: tenants whose disk fills (ENOSPC) after a few good writes.
    full_disk_tenants: int = 1
    #: tenants whose next checkpoint replace tears.
    torn_rename_tenants: int = 1
    #: tenants whose reads come back rotted.
    read_corrupt_tenants: int = 1
    #: per-op transient-EIO rate for the remaining faulted tenants.
    flaky_rate: float = 0.05
    #: fsync latency injection for flaky tenants (0 disables).
    slow_fsync_s: float = 0.0
    #: writes a full-disk tenant gets before the disk fills.
    full_disk_after_writes: int = 24

    def assign(self, tenants: Sequence[str], seed: int) -> Dict[str, List[str]]:
        """Deterministically partition ``tenants`` into disk-fault roles.

        Returns ``{"full_disk": [...], "torn": [...], "read_corrupt":
        [...], "flaky": [...], "clean": [...]}`` — disjoint, covering
        every tenant, identical for identical ``(tenants, seed)``.
        """
        names = list(tenants)
        n_fault = int(round(len(names) * self.tenant_fraction))
        n_fault = max(0, min(len(names), n_fault))
        rng = np.random.default_rng(seed)
        picked = sorted(
            rng.choice(len(names), size=n_fault, replace=False).tolist()
        )
        faulted = [names[i] for i in picked]
        roles: Dict[str, List[str]] = {
            "full_disk": [],
            "torn": [],
            "read_corrupt": [],
            "flaky": [],
        }
        quota = [
            ("full_disk", self.full_disk_tenants),
            ("torn", self.torn_rename_tenants),
            ("read_corrupt", self.read_corrupt_tenants),
        ]
        rest = list(faulted)
        for role, count in quota:
            take = min(count, len(rest))
            roles[role] = rest[:take]
            rest = rest[take:]
        roles["flaky"] = rest
        faulted_set = set(faulted)
        roles["clean"] = [n for n in names if n not in faulted_set]
        return roles

    def build(
        self,
        root_dir,
        roles: Mapping[str, Sequence[str]],
        seed: int,
    ) -> List[FSFault]:
        """Instantiate the storage faults for an assigned role partition.

        ``root_dir`` is the fleet's durability root; each fault's path
        filter lists the victim tenant's WAL directory and checkpoint
        paths (current + previous generation + temp), leaving the
        health journal untouched.
        """
        from pathlib import Path

        root = Path(root_dir)

        def targets(tenant: str) -> List[str]:
            return [
                str(root / tenant / "ticks.wal"),
                str(root / tenant / "checkpoint.json"),
            ]

        faults: List[FSFault] = []
        for tenant in roles.get("full_disk", ()):
            faults.append(
                FullDisk(
                    path_filter=targets(tenant),
                    after_writes=self.full_disk_after_writes,
                )
            )
        for i, tenant in enumerate(roles.get("torn", ())):
            faults.append(
                TornRename(path_filter=targets(tenant), nth=3 + i)
            )
        for i, tenant in enumerate(roles.get("read_corrupt", ())):
            faults.append(
                ReadCorruption(
                    mode="bitflip" if i % 2 == 0 else "truncate",
                    rate=1.0,
                    seed=seed * 31 + i,
                    path_filter=targets(tenant),
                )
            )
        for i, tenant in enumerate(roles.get("flaky", ())):
            if self.flaky_rate:
                faults.append(
                    FlakyIO(
                        rate=self.flaky_rate,
                        seed=seed * 97 + i,
                        path_filter=targets(tenant),
                    )
                )
            if self.slow_fsync_s:
                faults.append(
                    SlowFsync(
                        self.slow_fsync_s, path_filter=targets(tenant)
                    )
                )
        return faults


#: Storage chaos ladder.  ``thrash`` is the acceptance profile: a
#: quarter of the fleet on misbehaving disks — one filling up, one
#: tearing renames, one rotting reads, the rest flaky — all healable.
STORAGE_PROFILES: Dict[str, StorageFaultProfile] = {
    "scratch": StorageFaultProfile(
        name="scratch",
        tenant_fraction=0.1,
        torn_rename_tenants=0,
        read_corrupt_tenants=0,
        flaky_rate=0.02,
    ),
    "thrash": StorageFaultProfile(name="thrash"),
    "grind": StorageFaultProfile(
        name="grind",
        tenant_fraction=0.5,
        full_disk_tenants=2,
        torn_rename_tenants=2,
        read_corrupt_tenants=2,
        flaky_rate=0.1,
        slow_fsync_s=0.001,
    ),
}


@dataclass
class _ScenarioOutcome:
    """Per (profile, cause) result."""

    margin: Optional[float] = None
    top1: Optional[bool] = None
    error: Optional[str] = None


def run_chaos_suite(
    workload: str = "tpcc",
    durations: Sequence[int] = (40, 60),
    anomaly_keys: Optional[Sequence[str]] = None,
    seed: int = 0,
    normal_s: int = 90,
    profiles: Optional[Dict[str, FaultProfile]] = None,
    theta: float = SINGLE_MODEL_THETA,
    jobs: Optional[int] = None,
) -> dict:
    """Replay the scenario suite under every fault profile.

    Per cause, the first-duration run trains a (clean) causal model and
    the second-duration run is the test anomaly; each profile corrupts
    the test dataset (and maps its region spec through any time-warping
    injectors) before the full ranking pipeline runs.  Exceptions are
    caught per scenario and recorded — a robust pipeline reports zero.

    Returns a JSON-able report with per-profile mean margin, top-1
    accuracy, error counts, and deltas against the clean profile.
    """
    if len(durations) < 2:
        raise ValueError("need a train duration and a test duration")
    profiles = dict(profiles) if profiles is not None else dict(PROFILES)
    suite = build_suite(
        workload=workload,
        durations=list(durations)[:2],
        anomaly_keys=anomaly_keys,
        seed=seed,
        normal_s=normal_s,
        jobs=jobs,
    )
    causes = list(suite)
    models = [build_model(suite[c][0], theta=theta) for c in causes]
    # one reconciler for the whole sweep: on clean schemas every model
    # attribute exact-matches, so the ranking is identical to the
    # unreconciled path; under the drift profile it maps renamed
    # attributes back via the persisted fingerprints
    reconciler = SchemaReconciler()

    outcomes: Dict[str, Dict[str, _ScenarioOutcome]] = {}
    for p_idx, (p_name, profile) in enumerate(profiles.items()):
        per_cause: Dict[str, _ScenarioOutcome] = {}
        for c_idx, cause in enumerate(causes):
            test: AnomalyDataset = suite[cause][1]
            outcome = _ScenarioOutcome()
            try:
                plan = profile.plan(seed=seed * 1009 + p_idx * 101 + c_idx)
                dataset = plan.apply(test.dataset)
                spec = plan.transform_spec(test.spec)
                scores = rank_models(
                    models, dataset, spec, reconciler=reconciler
                )
                outcome.margin = float(margin_of_confidence(scores, cause))
                outcome.top1 = bool(topk_contains(scores, cause, 1))
            except Exception:
                outcome.error = traceback.format_exc(limit=3)
            per_cause[cause] = outcome
        outcomes[p_name] = per_cause

    report: dict = {
        "workload": workload,
        "causes": causes,
        "train_duration_s": int(durations[0]),
        "test_duration_s": int(durations[1]),
        "normal_s": int(normal_s),
        "theta": float(theta),
        "seed": int(seed),
        "profiles": {},
    }
    clean_margin: Optional[float] = None
    clean_top1: Optional[float] = None
    for p_name, per_cause in outcomes.items():
        ok = [o for o in per_cause.values() if o.error is None]
        margins = [o.margin for o in ok if o.margin is not None]
        top1s = [o.top1 for o in ok if o.top1 is not None]
        mean_margin = float(np.mean(margins)) if margins else 0.0
        top1_accuracy = float(np.mean(top1s)) if top1s else 0.0
        entry = {
            "profile": asdict(profiles[p_name]),
            "mean_margin": round(mean_margin, 4),
            "top1_accuracy": round(top1_accuracy, 4),
            "errors": sum(1 for o in per_cause.values() if o.error is not None),
            "error_details": {
                cause: o.error
                for cause, o in per_cause.items()
                if o.error is not None
            },
            "per_cause": {
                cause: {
                    "margin": None if o.margin is None else round(o.margin, 4),
                    "top1": o.top1,
                }
                for cause, o in per_cause.items()
            },
        }
        if p_name == "clean":
            clean_margin = mean_margin
            clean_top1 = top1_accuracy
        if clean_margin is not None:
            entry["margin_delta_vs_clean"] = round(
                mean_margin - clean_margin, 4
            )
            entry["top1_delta_vs_clean"] = round(
                top1_accuracy - clean_top1, 4
            )
        report["profiles"][p_name] = entry
    return report
