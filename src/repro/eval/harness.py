"""Experiment harness: the paper's dataset-generation and evaluation protocols.

The paper builds, for each of the 10 anomaly classes, 11 datasets — two
minutes of normal TPC-C activity plus one anomaly whose duration (or start
time) sweeps 30..80 s in 5 s steps (Section 8.2).  Causal models are then
evaluated by two protocols:

* **single models** (Section 8.3): build one model per dataset with θ=0.2
  and score it on every other dataset, measuring whether the correct
  cause achieves the highest confidence and by what margin;
* **merged models** (Section 8.5): repeatedly split each class's datasets
  into train/test, merge the training models (θ=0.05), and measure top-k
  correct-cause ratios on the held-out datasets.

Benches scale the trial counts down from the paper's (110 datasets,
50 random splits) so the whole suite runs in minutes; every bench header
states the original scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.anomalies.base import ScheduledAnomaly
from repro.anomalies.library import ANOMALY_CAUSES, make_anomaly
from repro.core.causal import CausalModel
from repro.core.generator import GeneratorConfig, PredicateGenerator
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec
from repro.engine.collector import simulate_telemetry
from repro.eval.metrics import margin_of_confidence, topk_contains
from repro.obs import trace
from repro.perf.cache import LabeledSpaceCache
from repro.perf.parallel import parallel_map
from repro.workload.spec import WorkloadSpec
from repro.workload.tpcc import tpcc_workload
from repro.workload.tpce import tpce_workload

__all__ = [
    "AnomalyDataset",
    "simulate_run",
    "build_suite",
    "evaluate_single_models",
    "build_merged_models",
    "rank_models",
    "replay_rows",
    "DEFAULT_DURATIONS",
]

#: The paper sweeps anomaly durations 30..80 s in 5 s steps (11 datasets).
DEFAULT_DURATIONS: Tuple[int, ...] = tuple(range(30, 85, 5))

#: Normal activity per dataset (the paper: two minutes).
DEFAULT_NORMAL_S = 120

SINGLE_MODEL_THETA = 0.2
MERGED_MODEL_THETA = 0.05


@dataclass
class AnomalyDataset:
    """One simulated run: telemetry, ground-truth regions, and the cause."""

    dataset: Dataset
    spec: RegionSpec
    cause: str
    anomaly_key: str
    duration_s: int
    seed: int


def _workload_for(name: str) -> WorkloadSpec:
    if name == "tpcc":
        return tpcc_workload()
    if name == "tpce":
        return tpce_workload()
    raise ValueError(f"unknown workload {name!r} (expected 'tpcc' or 'tpce')")


def simulate_run(
    anomaly_key: str,
    duration_s: int = 50,
    workload: str = "tpcc",
    seed: Optional[int] = None,
    normal_s: int = DEFAULT_NORMAL_S,
    start_s: Optional[int] = None,
    noise_scale: float = 1.0,
    intensity: Optional[float] = None,
    **anomaly_kwargs,
) -> Tuple[Dataset, RegionSpec, str]:
    """Simulate one run with a single anomaly; returns (dataset, spec, cause).

    The anomaly window is centred in the run unless ``start_s`` is given.
    ``normal_s`` seconds of normal activity surround the window, matching
    the paper's two-minutes-of-normal-plus-anomaly layout.

    Real incidents of the same root cause differ in severity — a workload
    spike is never exactly 5x twice.  Unless ``intensity`` is pinned, each
    run draws one from U(0.7, 1.4); this run-to-run variation is what makes
    merging causal models worthwhile (Section 8.5).
    """
    if intensity is None:
        intensity_rng = np.random.default_rng(
            None if seed is None else seed + 990_001
        )
        intensity = float(intensity_rng.uniform(0.7, 1.4))
    injector = make_anomaly(anomaly_key, intensity=intensity, **anomaly_kwargs)
    total = normal_s + duration_s
    if start_s is None:
        start_s = normal_s // 2
    start_s = int(min(max(start_s, 0), total - duration_s))
    scheduled = ScheduledAnomaly(injector, float(start_s), float(start_s + duration_s))
    dataset, spec = simulate_telemetry(
        _workload_for(workload),
        duration_s=total,
        anomalies=[scheduled],
        seed=seed,
        noise_scale=noise_scale,
        name=f"{workload}/{anomaly_key}/{duration_s}s",
    )
    return dataset, spec, injector.cause


def _simulate_suite_task(task: tuple) -> AnomalyDataset:
    """One suite run (top-level so :func:`parallel_map` can pickle it)."""
    key, duration, run_seed, workload, normal_s, noise_scale = task
    dataset, spec, cause = simulate_run(
        key,
        duration_s=duration,
        workload=workload,
        seed=run_seed,
        normal_s=normal_s,
        noise_scale=noise_scale,
    )
    return AnomalyDataset(
        dataset=dataset,
        spec=spec,
        cause=cause,
        anomaly_key=key,
        duration_s=duration,
        seed=run_seed,
    )


def build_suite(
    workload: str = "tpcc",
    durations: Sequence[int] = DEFAULT_DURATIONS,
    anomaly_keys: Optional[Sequence[str]] = None,
    seed: int = 0,
    normal_s: int = DEFAULT_NORMAL_S,
    noise_scale: float = 1.0,
    jobs: Optional[int] = None,
) -> Dict[str, List[AnomalyDataset]]:
    """The paper's dataset suite: per anomaly class, one run per duration.

    Returns a mapping ``cause → [AnomalyDataset, ...]``.  With the default
    durations and all 10 classes this is the paper's 110-dataset corpus.

    Runs simulate independently: per-run seeds are assigned serially up
    front, then the simulations fan out over ``jobs`` processes (default
    ``REPRO_JOBS``, serial fallback) with identical results either way.
    """
    keys = list(anomaly_keys) if anomaly_keys is not None else list(ANOMALY_CAUSES)
    durations = [int(d) for d in durations]
    tasks = []
    run_seed = seed
    for key in keys:
        for duration in durations:
            run_seed += 1
            tasks.append(
                (key, duration, run_seed, workload, normal_s, noise_scale)
            )
    all_runs = parallel_map(_simulate_suite_task, tasks, jobs=jobs)
    suite: Dict[str, List[AnomalyDataset]] = {}
    for i, key in enumerate(keys):
        runs = all_runs[i * len(durations) : (i + 1) * len(durations)]
        suite[runs[0].cause] = runs
    return suite


def replay_rows(dataset: Dataset):
    """Yield ``(t, numeric_row, categorical_row)`` ticks from a dataset.

    Replays an already-simulated run through the streaming interface —
    the equivalence tests and ``benchmarks/bench_online_detect.py`` feed
    these rows to :class:`repro.stream.StreamingDetector` and compare
    every shared window against the batch detector on the identical
    contents.
    """
    numeric = dataset.numeric_attributes
    categorical = dataset.categorical_attributes
    num_cols = {a: dataset.column(a) for a in numeric}
    cat_cols = {a: dataset.column(a) for a in categorical}
    for i, t in enumerate(dataset.timestamps):
        yield (
            float(t),
            {a: float(num_cols[a][i]) for a in numeric},
            {a: cat_cols[a][i] for a in categorical},
        )


# ----------------------------------------------------------------------
# Causal-model protocols
# ----------------------------------------------------------------------
def build_model(
    run: AnomalyDataset, theta: float, config: Optional[GeneratorConfig] = None
) -> CausalModel:
    """Construct a causal model from one diagnosed dataset.

    The predicate attributes are fingerprinted from the training data,
    so the model can be reconciled against drifted test schemas.
    """
    from repro.schema.fingerprint import fingerprint_attributes

    config = (config or GeneratorConfig()).replace(theta=theta)
    generator = PredicateGenerator(config)
    conjunction = generator.generate(run.dataset, run.spec)
    return CausalModel(
        cause=run.cause,
        predicates=conjunction.predicates,
        fingerprints=fingerprint_attributes(
            run.dataset, [p.attr for p in conjunction.predicates]
        ),
    )


def rank_models(
    models: Sequence[CausalModel],
    dataset: Dataset,
    spec: RegionSpec,
    n_partitions: int = 250,
    cache: Optional[LabeledSpaceCache] = None,
    reconciler: Optional[object] = None,
    coverage_floor: float = 0.5,
) -> List[Tuple[str, float]]:
    """Confidence of every model on one anomaly, highest first.

    With no *cache*, a per-call :class:`LabeledSpaceCache` still shares
    each attribute's labeled partition space across the K models; passing
    a long-lived cache additionally amortizes repeated rankings of the
    same dataset (the evaluation protocols rank every test dataset many
    times).  Passing a
    :class:`~repro.schema.reconcile.SchemaReconciler` matches drifted
    attribute names back to the model vocabulary first (models below
    ``coverage_floor`` coverage abstain at confidence 0.0).
    """
    from repro.core.explain import _observe_rank

    if cache is None:
        cache = LabeledSpaceCache()
    with trace.span(
        "rank", models=len(models), drifted=reconciler is not None
    ):
        if reconciler is not None:
            from repro.schema.reconcile import rank_with_reconciliation

            result = rank_with_reconciliation(
                models,
                dataset,
                spec,
                reconciler,
                n_partitions=n_partitions,
                cache=cache,
                coverage_floor=coverage_floor,
            )
            _observe_rank(result.scores, result.report, result.abstained)
            return result.scores
        scored = [
            (m.cause, m.confidence(dataset, spec, n_partitions, cache=cache))
            for m in models
        ]
        scored.sort(key=lambda item: item[1], reverse=True)
        _observe_rank(scored, None, [])
        return scored


def _build_model_task(task: tuple) -> CausalModel:
    """One model build (top-level so :func:`parallel_map` can pickle it)."""
    run, theta, config = task
    return build_model(run, theta, config)


def build_merged_models(
    suite: Dict[str, List[AnomalyDataset]],
    train_indices: Dict[str, Sequence[int]],
    theta: float = MERGED_MODEL_THETA,
    config: Optional[GeneratorConfig] = None,
    jobs: Optional[int] = None,
) -> List[CausalModel]:
    """One merged model per cause from the given training datasets.

    Per-dataset models build independently (fanned out over ``jobs``
    processes); the merge itself stays sequential in training order, so
    the result is identical to the serial path.
    """
    causes = list(suite)
    tasks = [
        (suite[cause][index], theta, config)
        for cause in causes
        for index in train_indices[cause]
    ]
    built = parallel_map(_build_model_task, tasks, jobs=jobs)
    models: List[CausalModel] = []
    position = 0
    for cause in causes:
        merged: Optional[CausalModel] = None
        for _ in train_indices[cause]:
            model = built[position]
            position += 1
            merged = model if merged is None else merged.merge(model)
        if merged is not None:
            models.append(merged)
    return models


@dataclass
class SingleModelResult:
    """Per-cause outcome of the Section 8.3 single-model protocol."""

    cause: str
    mean_margin: float
    mean_f1: float
    top1_accuracy: float


def evaluate_single_models(
    suite: Dict[str, List[AnomalyDataset]],
    theta: float = SINGLE_MODEL_THETA,
    config: Optional[GeneratorConfig] = None,
    max_models_per_cause: Optional[int] = None,
    jobs: Optional[int] = None,
) -> List[SingleModelResult]:
    """Section 8.3: single-dataset models evaluated on all other datasets.

    For every dataset, a model is constructed and scored against all other
    datasets' models on each remaining dataset of its own cause; we record
    the margin of the correct model over the best incorrect one, the
    correct model's mean per-predicate F1, and whether it ranked first.

    Model building fans out over ``jobs`` processes; the scoring sweep
    shares one :class:`LabeledSpaceCache`, so each test dataset's
    attributes are labeled once for the whole cross-product rather than
    once per ranking.
    """
    from repro.eval.metrics import score_predicates_mean

    # one representative model per (cause, dataset index)
    causes = list(suite)
    runs_used_by_cause = {
        cause: (
            suite[cause][:max_models_per_cause]
            if max_models_per_cause
            else suite[cause]
        )
        for cause in causes
    }
    tasks = [
        (run, theta, config)
        for cause in causes
        for run in runs_used_by_cause[cause]
    ]
    built = parallel_map(_build_model_task, tasks, jobs=jobs)
    models_by_cause: Dict[str, List[CausalModel]] = {}
    position = 0
    for cause in causes:
        count = len(runs_used_by_cause[cause])
        models_by_cause[cause] = built[position : position + count]
        position += count

    cache = LabeledSpaceCache()
    results: List[SingleModelResult] = []
    for cause, runs in suite.items():
        margins: List[float] = []
        f1s: List[float] = []
        top1: List[bool] = []
        n_models = len(models_by_cause[cause])
        for model_idx in range(n_models):
            correct_model = models_by_cause[cause][model_idx]
            # competitors: one model per other cause (same index, wrapping)
            competitors = [correct_model]
            for other_cause, other_models in models_by_cause.items():
                if other_cause == cause:
                    continue
                competitors.append(other_models[model_idx % len(other_models)])
            for test_idx, test_run in enumerate(suite[cause]):
                if test_idx == model_idx:
                    continue  # never score a model on its training dataset
                scores = rank_models(
                    competitors, test_run.dataset, test_run.spec, cache=cache
                )
                margins.append(margin_of_confidence(scores, cause))
                top1.append(topk_contains(scores, cause, 1))
                f1s.append(
                    score_predicates_mean(
                        correct_model.predicates,
                        test_run.dataset,
                        test_run.spec,
                    ).f1
                )
        results.append(
            SingleModelResult(
                cause=cause,
                mean_margin=float(np.mean(margins)) if margins else 0.0,
                mean_f1=float(np.mean(f1s)) if f1s else 0.0,
                top1_accuracy=float(np.mean(top1)) if top1 else 0.0,
            )
        )
    return results
