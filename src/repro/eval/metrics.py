"""Accuracy metrics for explanations.

The paper evaluates predicates by precision / recall / F1 over tuples
(Figure 9): a tuple is *predicted abnormal* when it satisfies the whole
explanation conjunction, and *actually abnormal* when it lies inside the
ground-truth anomaly window.  Causal-model experiments report the margin
of confidence (correct model vs best incorrect, Figures 7/8a/11) and
top-k correct-cause ratios (Figures 8b/8c, Tables 2/4/5/7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.predicates import Conjunction
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = [
    "PredicateScores",
    "MeanScores",
    "score_predicates",
    "score_predicates_mean",
    "margin_of_confidence",
    "topk_contains",
    "mean",
]


@dataclass(frozen=True)
class PredicateScores:
    """Tuple-level precision / recall / F1 of an explanation."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Balanced F-score (the paper's headline accuracy measure)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


@dataclass(frozen=True)
class MeanScores:
    """Per-predicate scores averaged across an explanation's predicates."""

    precision: float
    recall: float
    f1: float


def score_predicates(
    conjunction: Conjunction, dataset: Dataset, truth: RegionSpec
) -> PredicateScores:
    """Precision/recall of *conjunction* against the ground-truth regions.

    An empty conjunction predicts nothing abnormal (precision and recall 0
    rather than a vacuous all-rows match).
    """
    actual = truth.abnormal_mask(dataset)
    if not conjunction:
        return PredicateScores(precision=0.0, recall=0.0)
    predicted = conjunction.evaluate(dataset)
    true_positive = float((predicted & actual).sum())
    n_predicted = float(predicted.sum())
    n_actual = float(actual.sum())
    precision = true_positive / n_predicted if n_predicted else 0.0
    recall = true_positive / n_actual if n_actual else 0.0
    return PredicateScores(precision=precision, recall=recall)


def score_predicates_mean(
    predicates, dataset: Dataset, truth: RegionSpec
) -> PredicateScores:
    """Mean per-predicate precision/recall against the ground truth.

    Figure 9's caption reads "Average precision, recall and F1-measure of
    predicates": each predicate is scored individually as a one-clause
    classifier and the scores are averaged.  This is far more robust than
    scoring the full conjunction — with dozens of noisy per-second
    predicates, the AND of all clauses misses almost every row even when
    each clause is individually accurate.
    """
    if not predicates:
        return MeanScores(precision=0.0, recall=0.0, f1=0.0)
    actual = truth.abnormal_mask(dataset)
    n_actual = float(actual.sum())
    scores = []
    for predicate in predicates:
        if predicate.attr in dataset:
            predicted = predicate.evaluate(dataset)
        else:
            predicted = np.zeros(dataset.n_rows, dtype=bool)
        tp = float((predicted & actual).sum())
        n_predicted = float(predicted.sum())
        scores.append(
            PredicateScores(
                precision=tp / n_predicted if n_predicted else 0.0,
                recall=tp / n_actual if n_actual else 0.0,
            )
        )
    return MeanScores(
        precision=float(np.mean([s.precision for s in scores])),
        recall=float(np.mean([s.recall for s in scores])),
        f1=float(np.mean([s.f1 for s in scores])),
    )


def margin_of_confidence(
    scores: Sequence[Tuple[str, float]], correct_cause: str
) -> float:
    """Correct model's confidence minus the best incorrect model's.

    Positive when the correct cause ranks first; the paper reports the
    average margin across datasets (Figures 7, 8a, 11b).
    """
    correct = None
    best_incorrect = None
    for cause, confidence in scores:
        if cause == correct_cause:
            correct = confidence
        elif best_incorrect is None or confidence > best_incorrect:
            best_incorrect = confidence
    if correct is None:
        raise ValueError(f"correct cause {correct_cause!r} not among scores")
    if best_incorrect is None:
        return correct
    return correct - best_incorrect


def topk_contains(
    scores: Sequence[Tuple[str, float]], correct_cause: str, k: int
) -> bool:
    """True when the correct cause appears among the top-k scores."""
    ranked = sorted(scores, key=lambda item: item[1], reverse=True)
    return correct_cause in [cause for cause, _ in ranked[:k]]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 for an empty sequence."""
    return float(np.mean(values)) if len(values) else 0.0
