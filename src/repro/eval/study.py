"""Simulated user study (Section 8.8, Table 3).

The paper's study put 10 multiple-choice questions (one correct cause,
three random distractors) to 20 human participants in three competence
cohorts, showing each a latency plot plus DBSherlock's predicates.  Humans
are unavailable offline, so we model a participant as a *noisy reader of
the predicate evidence*: for every answer option, the participant
perceives how well that cause's canonical signature matches the shown
predicates (the causal-model confidence on the question's dataset) plus
Gaussian reading noise whose magnitude falls with competence.  A
zero-competence participant perceives pure noise, reproducing the 2.5/10
random baseline; higher cohorts approach the evidence-optimal answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.causal import CausalModel
from repro.data.dataset import Dataset
from repro.data.regions import RegionSpec

__all__ = ["Cohort", "StudyQuestion", "UserStudy", "COHORTS"]


@dataclass(frozen=True)
class Cohort:
    """One experience level from Table 3.

    ``noise`` is the std-dev of the perception noise added to the (0..1)
    evidence scores; 0 = evidence-optimal reader, large = random guesser.
    """

    name: str
    n_participants: int
    noise: float


#: The paper's three cohorts.  Noise levels are calibrated so the cohorts
#: land near the paper's 7.5 / 7.8 / 7.8 correct answers out of 10.
COHORTS: List[Cohort] = [
    Cohort("Preliminary DB Knowledge", 20, 0.24),
    Cohort("DB Usage Experience", 15, 0.20),
    Cohort("DB Research or DBA Experience", 13, 0.19),
]


@dataclass
class StudyQuestion:
    """One multiple-choice question: an anomaly plus four candidate causes."""

    dataset: Dataset
    spec: RegionSpec
    correct_cause: str
    options: List[str]

    def __post_init__(self) -> None:
        if self.correct_cause not in self.options:
            raise ValueError("options must include the correct cause")
        if len(set(self.options)) != len(self.options):
            raise ValueError("options must be distinct")


class UserStudy:
    """Run the simulated questionnaire against a set of causal models."""

    def __init__(
        self,
        models: Dict[str, CausalModel],
        questions: Sequence[StudyQuestion],
    ) -> None:
        if not questions:
            raise ValueError("the study needs at least one question")
        self.models = dict(models)
        self.questions = list(questions)
        self._evidence_cache: List[Dict[str, float]] = [
            self._evidence(q) for q in self.questions
        ]

    def _evidence(self, question: StudyQuestion) -> Dict[str, float]:
        """Objective per-option evidence: model confidence on the dataset.

        Options without a known model read as zero evidence — mirroring a
        participant for whom the predicates ring no bells for that cause.
        """
        scores: Dict[str, float] = {}
        for option in question.options:
            model = self.models.get(option)
            scores[option] = (
                model.confidence(question.dataset, question.spec)
                if model is not None
                else 0.0
            )
        return scores

    def simulate_participant(
        self, noise: float, rng: np.random.Generator
    ) -> int:
        """Number of correct answers (out of ``len(questions)``)."""
        correct = 0
        for question, evidence in zip(self.questions, self._evidence_cache):
            perceived = {
                option: evidence[option] + rng.normal(0.0, max(noise, 1e-9))
                for option in question.options
            }
            answer = max(perceived, key=perceived.get)
            if answer == question.correct_cause:
                correct += 1
        return correct

    def run_cohort(
        self, cohort: Cohort, seed: Optional[int] = None
    ) -> Tuple[float, List[int]]:
        """Average correct answers for a cohort; returns (mean, raw scores)."""
        rng = np.random.default_rng(seed)
        scores = [
            self.simulate_participant(cohort.noise, rng)
            for _ in range(cohort.n_participants)
        ]
        return float(np.mean(scores)), scores

    def random_baseline(self) -> float:
        """Expected correct answers with no predicates (uniform guessing)."""
        return sum(1.0 / len(q.options) for q in self.questions)
