"""Deterministic fault injection for chaos-testing the diagnosis pipeline.

Real DBSeer-style collectors do not emit the clean, perfectly aligned
1-second telemetry table the paper assumes (Section 3): ticks get dropped
or delivered twice, attribute values go missing or NaN, counters stick,
clocks skew, schemas drift, and the collector process itself dies.  This
package reproduces those failure modes as *seeded, composable* injectors
so robustness can be measured instead of asserted:

``plan``       :class:`FaultPlan` — an ordered, seeded composition of
               injectors applicable to a whole :class:`~repro.data.dataset.Dataset`
               or wrapped around a live ``(t, numeric, categorical)``
               tick stream;
``injectors``  the fault taxonomy — :class:`DropTicks`,
               :class:`DuplicateTicks`, :class:`NaNValues`,
               :class:`StuckAtCounter`, :class:`SpikeCorruption`,
               :class:`ClockSkew`, :class:`SchemaDrift`,
               :class:`CollectorCrash` (raises :class:`CollectorFault`),
               plus the fleet in-process faults —
               :class:`LaneExceptionFault` (a detection lane that
               raises, exercising the bulkhead),
               :class:`DiagnosisHang` (a tenant whose explains pin a
               diagnosis worker, exercising the deadline tiers and the
               circuit breaker), and :class:`CorruptTenantState`
               (durable state rotting on disk, exercising partial
               recovery);
``fs``         the storage-fault shim — :class:`~repro.faults.fs.StorageShim`
               routing every persistence path's write/fsync/rename/read,
               with :class:`~repro.faults.fs.FullDisk` (ENOSPC),
               :class:`~repro.faults.fs.FlakyIO` (transient EIO),
               :class:`~repro.faults.fs.TornRename`,
               :class:`~repro.faults.fs.SlowFsync`, and
               :class:`~repro.faults.fs.ReadCorruption` (bit flips /
               truncated JSON) making the *filesystem itself* misbehave.

Every injector is a no-op at rate 0 and fully determined by the plan's
seed: applying the same plan to the same input twice yields bitwise
identical output (property-tested in ``tests/test_faults.py``).
"""

from repro.faults.injectors import (
    ClockSkew,
    CollectorCrash,
    CollectorFault,
    CorruptTenantState,
    DiagnosisHang,
    DropTicks,
    DuplicateTicks,
    FaultInjector,
    LaneExceptionFault,
    NaNValues,
    SchemaDrift,
    SpikeCorruption,
    StuckAtCounter,
)
from repro.faults.fs import (
    FlakyIO,
    FSFault,
    FullDisk,
    ReadCorruption,
    SlowFsync,
    StorageShim,
    TornRename,
    get_fs,
    scoped_fs,
    set_fs,
)
from repro.faults.plan import FaultPlan, TelemetryTable

__all__ = [
    "ClockSkew",
    "CollectorCrash",
    "CollectorFault",
    "CorruptTenantState",
    "DiagnosisHang",
    "DropTicks",
    "DuplicateTicks",
    "FSFault",
    "FaultInjector",
    "FaultPlan",
    "FlakyIO",
    "FullDisk",
    "LaneExceptionFault",
    "NaNValues",
    "ReadCorruption",
    "SchemaDrift",
    "SlowFsync",
    "SpikeCorruption",
    "StorageShim",
    "StuckAtCounter",
    "TelemetryTable",
    "TornRename",
    "get_fs",
    "scoped_fs",
    "set_fs",
]
