"""Fault-injecting filesystem shim: the storage layer as a failure domain.

Every durable artifact in the reproduction — the write-ahead tick log,
checkpoint generations, the tenant health journal, the alias table, the
causal-model store — routes its ``write``/``fsync``/``rename``/``read``
primitives through one :class:`StorageShim`.  With no faults installed
the shim is a direct passthrough to the ``os`` primitives (bit-for-bit
the pre-shim behavior, asserted by ``bench_storage_chaos.py``); with
faults installed the *filesystem itself* misbehaves the way LogDB
(PAPERS.md) documents real storage layers do:

* :class:`FullDisk` — ``ENOSPC`` on write and fsync until healed;
* :class:`FlakyIO` — seeded transient ``EIO`` at a per-op rate;
* :class:`TornRename` — the nth atomic replace writes a truncated
  destination and raises, simulating a crash mid-``rename``;
* :class:`SlowFsync` — fsync latency injection;
* :class:`ReadCorruption` — bit flips or truncation on read-back.

Faults are deterministic (seeded counters/generators, no wall clock),
no-ops when inactive, and targetable via ``path_filter`` substrings so a
chaos run can fill one tenant's disk while its neighbours stay clean.

Consumers observe failures through two process-wide counters —
``repro_storage_write_errors_total`` and
``repro_storage_read_errors_total`` — incremented via
:func:`count_write_error` / :func:`count_read_error` wherever a
persistence path catches an ``OSError`` or a corrupt payload.
"""

from __future__ import annotations

import errno
import os
import time as _time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.obs import metrics

__all__ = [
    "FSFault",
    "FlakyIO",
    "FullDisk",
    "ReadCorruption",
    "SlowFsync",
    "StorageShim",
    "TornRename",
    "count_read_error",
    "count_write_error",
    "get_fs",
    "scoped_fs",
    "set_fs",
]

_WRITE_ERRORS = metrics.REGISTRY.counter(
    "repro_storage_write_errors_total",
    "Storage write/fsync/rename failures observed by persistence paths",
)
_READ_ERRORS = metrics.REGISTRY.counter(
    "repro_storage_read_errors_total",
    "Corrupt or unreadable payloads observed by persistence read paths",
)
_FAULTS_FIRED = metrics.REGISTRY.counter(
    "repro_storage_faults_injected_total",
    "Filesystem faults fired by the storage shim, by fault kind",
    labelnames=("kind",),
)


def count_write_error(n: int = 1) -> None:
    """Record *n* observed storage write/fsync/rename failures."""
    _WRITE_ERRORS.inc(n)


def count_read_error(n: int = 1) -> None:
    """Record *n* observed corrupt/unreadable storage payloads."""
    _READ_ERRORS.inc(n)


PathFilter = Optional[Union[str, Sequence[str]]]


class FSFault:
    """Base storage fault: matches paths, no-ops every hook.

    Parameters
    ----------
    path_filter:
        ``None`` matches every path; a string matches paths containing
        it as a substring; a sequence of strings matches any of them.
        Filters compare against the *string* form of the path, so an
        absolute tenant-directory prefix targets one tenant's files.
    """

    kind = "fs"

    def __init__(self, path_filter: PathFilter = None) -> None:
        if path_filter is None:
            self._filters: Optional[List[str]] = None
        elif isinstance(path_filter, str):
            self._filters = [path_filter]
        else:
            self._filters = [str(p) for p in path_filter]
        #: clear to disable the fault (disk "heals") without removing it.
        self.active = True
        #: times this fault actually fired.
        self.fired = 0

    def matches(self, path: object) -> bool:
        if not self.active:
            return False
        if self._filters is None:
            return True
        text = str(path)
        return any(f in text for f in self._filters)

    def _fire(self) -> None:
        self.fired += 1
        _FAULTS_FIRED.labels(kind=self.kind).inc()

    # -- hooks (raise OSError to fail the op) ---------------------------
    def on_write(self, path: str, data: str) -> None:
        """Called before a matching buffered write."""

    def on_fsync(self, path: str) -> None:
        """Called before a matching flush+fsync."""

    def on_replace(self, src: str, dst: str) -> None:
        """Called before a matching atomic replace."""

    def on_read(self, path: str, data: bytes) -> bytes:
        """Transform (or corrupt) a matching read's payload."""
        return data

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(path_filter={self._filters!r}, "
            f"active={self.active}, fired={self.fired})"
        )


class FullDisk(FSFault):
    """``ENOSPC`` on every matching write and fsync until healed.

    ``after_writes`` delays onset: that many matching writes succeed
    first, so a run can lay down good state before the disk fills.
    Clear :attr:`active` (or call :meth:`heal`) to let writes flow again
    — the durability manager's probe then re-promotes the tenant.
    """

    kind = "full_disk"

    def __init__(
        self, path_filter: PathFilter = None, after_writes: int = 0
    ) -> None:
        super().__init__(path_filter)
        self.after_writes = int(after_writes)
        self._seen = 0

    def heal(self) -> None:
        self.active = False

    def _raise(self, path: str) -> None:
        self._fire()
        raise OSError(errno.ENOSPC, "injected: no space left on device", path)

    def on_write(self, path: str, data: str) -> None:
        self._seen += 1
        if self._seen > self.after_writes:
            self._raise(path)

    def on_fsync(self, path: str) -> None:
        if self._seen >= self.after_writes:
            self._raise(path)


class FlakyIO(FSFault):
    """Transient, seeded ``EIO``: each matching op fails with ``rate``.

    The draw sequence is owned by the fault instance, so a given
    ``(seed, op sequence)`` fails at identical points on every run.
    """

    kind = "flaky_io"

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        path_filter: PathFilter = None,
        ops: Sequence[str] = ("write", "fsync"),
        error_errno: int = errno.EIO,
    ) -> None:
        super().__init__(path_filter)
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {rate}")
        self.rate = rate
        self.ops = frozenset(ops)
        self.error_errno = int(error_errno)
        self._rng = np.random.default_rng(seed)

    def _maybe_raise(self, op: str, path: str) -> None:
        if op not in self.ops or self.rate == 0.0:
            return
        if self._rng.random() < self.rate:
            self._fire()
            raise OSError(
                self.error_errno, f"injected: flaky {op} failed", path
            )

    def on_write(self, path: str, data: str) -> None:
        self._maybe_raise("write", path)

    def on_fsync(self, path: str) -> None:
        self._maybe_raise("fsync", path)

    def on_replace(self, src: str, dst: str) -> None:
        self._maybe_raise("replace", dst)


class TornRename(FSFault):
    """The ``nth`` matching replace tears: a truncated destination lands
    on disk and the op raises ``EIO`` — the on-disk signature of a crash
    mid-``os.replace`` on a filesystem without atomic rename semantics.
    ``keep_fraction`` controls how much of the source survives.
    """

    kind = "torn_rename"

    def __init__(
        self,
        path_filter: PathFilter = None,
        nth: int = 1,
        keep_fraction: float = 0.5,
    ) -> None:
        super().__init__(path_filter)
        if nth < 1:
            raise ValueError("nth must be at least 1")
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must lie in [0, 1]")
        self.nth = int(nth)
        self.keep_fraction = float(keep_fraction)
        self._seen = 0

    def on_replace(self, src: str, dst: str) -> None:
        self._seen += 1
        if self._seen != self.nth:
            return
        self._fire()
        try:
            data = Path(src).read_bytes()
        except OSError:
            data = b""
        cut = int(len(data) * self.keep_fraction)
        Path(dst).write_bytes(data[:cut])
        raise OSError(errno.EIO, f"injected: torn rename onto {dst}", dst)


class SlowFsync(FSFault):
    """Every matching fsync stalls ``delay_s`` seconds before completing."""

    kind = "slow_fsync"

    def __init__(
        self,
        delay_s: float,
        path_filter: PathFilter = None,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        super().__init__(path_filter)
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        self.delay_s = float(delay_s)
        self._sleep = sleep

    def on_fsync(self, path: str) -> None:
        if self.delay_s:
            self._fire()
            self._sleep(self.delay_s)


class ReadCorruption(FSFault):
    """Rot matching reads: seeded bit flips or truncation of the payload.

    ``mode="bitflip"`` flips ``max(1, len // 64)`` bits at seeded
    positions; ``mode="truncate"`` keeps a seeded 20–80 % prefix —
    the classic torn-JSON read.  ``rate`` is the per-read probability.
    """

    kind = "read_corruption"
    MODES = ("bitflip", "truncate")

    def __init__(
        self,
        mode: str = "bitflip",
        rate: float = 1.0,
        seed: int = 0,
        path_filter: PathFilter = None,
    ) -> None:
        super().__init__(path_filter)
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {rate}")
        self.mode = mode
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def on_read(self, path: str, data: bytes) -> bytes:
        if self.rate == 0.0 or not data:
            return data
        if self._rng.random() >= self.rate:
            return data
        self._fire()
        if self.mode == "truncate":
            keep = 0.2 + 0.6 * self._rng.random()
            return data[: max(1, int(len(data) * keep))]
        flipped = bytearray(data)
        n_bits = max(1, len(data) // 64)
        for _ in range(n_bits):
            pos = int(self._rng.integers(0, len(flipped)))
            bit = int(self._rng.integers(0, 8))
            flipped[pos] ^= 1 << bit
        return bytes(flipped)


class StorageShim:
    """Routes persistence I/O, optionally through injected faults.

    The four primitives every durable path uses:

    * :meth:`write` — buffered write on an open text handle;
    * :meth:`fsync` — flush + ``os.fsync`` of a handle;
    * :meth:`replace` — atomic ``os.replace``;
    * :meth:`read_bytes` / :meth:`read_text` — whole-file read-back.

    With an empty fault list each method reduces to exactly the direct
    call it replaced; installed faults fire in installation order for
    every op whose path they match.
    """

    def __init__(self, faults: Sequence[FSFault] = ()) -> None:
        self.faults: List[FSFault] = list(faults)

    # -- fault management ----------------------------------------------
    def add(self, fault: FSFault) -> FSFault:
        self.faults.append(fault)
        return fault

    def remove(self, fault: FSFault) -> None:
        self.faults.remove(fault)

    def clear(self) -> None:
        self.faults.clear()

    # -- primitives ----------------------------------------------------
    def write(self, fh, data: str) -> None:
        """Buffered write of *data* through *fh* (faults may raise)."""
        if self.faults:
            path = getattr(fh, "name", "")
            for fault in self.faults:
                if fault.matches(path):
                    fault.on_write(path, data)
        fh.write(data)

    def fsync(self, fh) -> None:
        """Flush *fh* and fsync it to disk (faults may raise or stall)."""
        if self.faults:
            path = getattr(fh, "name", "")
            for fault in self.faults:
                if fault.matches(path):
                    fault.on_fsync(path)
        fh.flush()
        os.fsync(fh.fileno())

    def replace(
        self, src: Union[str, Path], dst: Union[str, Path]
    ) -> None:
        """Atomic rename *src* → *dst* (faults may tear it)."""
        if self.faults:
            for fault in self.faults:
                if fault.matches(src) or fault.matches(dst):
                    fault.on_replace(str(src), str(dst))
        os.replace(src, dst)

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        """Whole-file read (faults may corrupt the returned payload)."""
        with open(path, "rb") as fh:
            data = fh.read()
        for fault in self.faults:
            if fault.matches(path):
                data = fault.on_read(str(path), data)
        return data

    def read_text(
        self, path: Union[str, Path], encoding: str = "utf-8"
    ) -> str:
        return self.read_bytes(path).decode(encoding, errors="replace")

    def __repr__(self) -> str:
        return f"StorageShim(faults={self.faults!r})"


#: The process-wide shim every persistence path resolves by default.
_ACTIVE = StorageShim()


def get_fs() -> StorageShim:
    """The currently installed process-wide storage shim."""
    return _ACTIVE


def set_fs(fs: StorageShim) -> StorageShim:
    """Install *fs* as the process-wide shim; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = fs
    return previous


@contextmanager
def scoped_fs(fs: StorageShim):
    """Install *fs* for the scope of a ``with`` block, then restore."""
    previous = set_fs(fs)
    try:
        yield fs
    finally:
        set_fs(previous)
