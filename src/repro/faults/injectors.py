"""The fault taxonomy: composable telemetry corruption primitives.

Each injector implements the same failure mode on both consumption paths:

* ``apply_table(table, rng)`` — transform a finished telemetry table
  (the offline / batch-diagnosis path);
* ``wrap_stream(ticks, rng)`` — wrap a live ``(t, numeric, categorical)``
  tick iterator (the streaming-detector path).

Both paths are deterministic given the generator the
:class:`~repro.faults.plan.FaultPlan` hands them, and every injector is
an exact no-op at rate/magnitude 0.  Injectors hold **no mutable state**
across applications — all per-run state lives in generator locals — so a
plan can be applied any number of times with identical results.
"""

from __future__ import annotations

import time as _time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (plan imports us)
    from repro.faults.plan import TelemetryTable

#: One telemetry tick: ``(time, numeric_row, categorical_row)``.
Tick = Tuple[float, Dict[str, float], Dict[str, str]]

__all__ = [
    "Tick",
    "CollectorFault",
    "FaultInjector",
    "DropTicks",
    "DuplicateTicks",
    "NaNValues",
    "StuckAtCounter",
    "SpikeCorruption",
    "ClockSkew",
    "SchemaDrift",
    "CollectorCrash",
    "LaneExceptionFault",
    "DiagnosisHang",
    "CorruptTenantState",
]


class CollectorFault(RuntimeError):
    """Raised by :class:`CollectorCrash` when the simulated collector dies."""


class FaultInjector:
    """Base class: identity transform on both paths."""

    def apply_table(
        self, table: "TelemetryTable", rng: np.random.Generator
    ) -> "TelemetryTable":
        """Transform a telemetry table (default: pass through)."""
        return table

    def wrap_stream(
        self, ticks: Iterator[Tick], rng: np.random.Generator
    ) -> Iterator[Tick]:
        """Wrap a tick stream (default: pass through)."""
        return ticks

    def transform_time(self, t: float) -> float:
        """Time re-mapping this injector applies (identity for most)."""
        return t

    def _params(self) -> Dict[str, object]:
        return {}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._params().items())
        return f"{type(self).__name__}({inner})"


def _check_rate(rate: float, name: str = "rate") -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {rate}")
    return rate


class DropTicks(FaultInjector):
    """Each tick is independently lost with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        self.rate = _check_rate(rate)

    def _params(self):
        return {"rate": self.rate}

    def apply_table(self, table, rng):
        if self.rate == 0.0 or table.n_rows == 0:
            return table
        keep = rng.random(table.n_rows) >= self.rate
        if not keep.any():  # a fully-dead collector still delivers one row
            keep[0] = True
        return table.take(np.flatnonzero(keep))

    def wrap_stream(self, ticks, rng):
        if self.rate == 0.0:
            yield from ticks
            return
        for tick in ticks:
            if rng.random() >= self.rate:
                yield tick


class DuplicateTicks(FaultInjector):
    """Stale re-delivery: with probability ``rate`` a tick carries the
    previous tick's payload (its own timestamp, yesterday's values) —
    the classic at-least-once collector re-sending its last sample.
    """

    def __init__(self, rate: float) -> None:
        self.rate = _check_rate(rate)

    def _params(self):
        return {"rate": self.rate}

    def apply_table(self, table, rng):
        n = table.n_rows
        if self.rate == 0.0 or n < 2:
            return table
        dup = rng.random(n) < self.rate
        dup[0] = False
        src = np.arange(n)
        for i in range(1, n):  # stale runs propagate the same old row
            if dup[i]:
                src[i] = src[i - 1]
        for attr, values in table.numeric.items():
            table.numeric[attr] = values[src]
        for attr, values in table.categorical.items():
            table.categorical[attr] = values[src]
        return table

    def wrap_stream(self, ticks, rng):
        if self.rate == 0.0:
            yield from ticks
            return
        prev: Optional[Tick] = None
        for t, numeric, categorical in ticks:
            if prev is not None and rng.random() < self.rate:
                yield (t, dict(prev[1]), dict(prev[2]))
                prev = (t, prev[1], prev[2])
            else:
                yield (t, numeric, categorical)
                prev = (t, numeric, categorical)


class NaNValues(FaultInjector):
    """Each numeric cell independently becomes NaN with probability ``rate``.

    ``attrs`` restricts the corruption to the named attributes (default:
    every numeric attribute).
    """

    def __init__(self, rate: float, attrs: Optional[Sequence[str]] = None) -> None:
        self.rate = _check_rate(rate)
        self.attrs = None if attrs is None else list(attrs)

    def _params(self):
        return {"rate": self.rate, "attrs": self.attrs}

    def _targets(self, names: Sequence[str]) -> List[str]:
        if self.attrs is None:
            return list(names)
        return [a for a in names if a in self.attrs]

    def apply_table(self, table, rng):
        if self.rate == 0.0 or table.n_rows == 0:
            return table
        for attr in self._targets(list(table.numeric)):
            mask = rng.random(table.n_rows) < self.rate
            if mask.any():
                values = table.numeric[attr]
                values[mask] = np.nan
        return table

    def wrap_stream(self, ticks, rng):
        if self.rate == 0.0:
            yield from ticks
            return
        for t, numeric, categorical in ticks:
            targets = self._targets(list(numeric))
            hit = rng.random(len(targets)) < self.rate
            if hit.any():
                numeric = dict(numeric)
                for attr, corrupt in zip(targets, hit):
                    if corrupt:
                        numeric[attr] = float("nan")
            yield (t, numeric, categorical)


class StuckAtCounter(FaultInjector):
    """One numeric attribute freezes at its current value from a random
    onset tick onward — the stuck-at counter / dead sensor failure mode.

    ``attr`` pins the victim (default: drawn from the numeric attributes);
    ``onset`` pins the first frozen tick (default: drawn from
    ``onset_range``).
    """

    def __init__(
        self,
        attr: Optional[str] = None,
        onset: Optional[int] = None,
        onset_range: Tuple[int, int] = (20, 90),
    ) -> None:
        self.attr = attr
        self.onset = None if onset is None else int(onset)
        self.onset_range = (int(onset_range[0]), int(onset_range[1]))
        if self.onset_range[0] >= self.onset_range[1]:
            raise ValueError("onset_range must be a non-empty interval")

    def _params(self):
        return {"attr": self.attr, "onset": self.onset}

    def _choose(
        self, names: Sequence[str], rng: np.random.Generator
    ) -> Tuple[Optional[str], int]:
        # draw order (attr, then onset) is identical on both paths
        if self.attr is not None:
            attr = self.attr if self.attr in names else None
        else:
            attr = str(rng.choice(sorted(names))) if names else None
        onset = (
            self.onset
            if self.onset is not None
            else int(rng.integers(self.onset_range[0], self.onset_range[1]))
        )
        return attr, onset

    def apply_table(self, table, rng):
        attr, onset = self._choose(list(table.numeric), rng)
        if attr is None or table.n_rows == 0:
            return table
        onset = min(max(onset, 0), table.n_rows - 1)
        values = table.numeric[attr]
        values[onset:] = values[onset]
        return table

    def wrap_stream(self, ticks, rng):
        chosen: Optional[Tuple[Optional[str], int]] = None
        count = 0
        frozen: Optional[float] = None
        for t, numeric, categorical in ticks:
            if chosen is None:
                chosen = self._choose(list(numeric), rng)
            attr, onset = chosen
            if attr is not None and attr in numeric and count >= onset:
                if frozen is None:
                    frozen = float(numeric[attr])
                numeric = dict(numeric)
                numeric[attr] = frozen
            count += 1
            yield (t, numeric, categorical)


class SpikeCorruption(FaultInjector):
    """Each numeric cell is independently blown up with probability
    ``rate``: ``v → v + magnitude · (|v| + 1)`` — a transient wild value
    from a glitching probe, large even for zero-valued counters.
    """

    def __init__(self, rate: float, magnitude: float = 25.0) -> None:
        self.rate = _check_rate(rate)
        self.magnitude = float(magnitude)

    def _params(self):
        return {"rate": self.rate, "magnitude": self.magnitude}

    def _spike(self, values: np.ndarray) -> np.ndarray:
        return values + self.magnitude * (np.abs(values) + 1.0)

    def apply_table(self, table, rng):
        if self.rate == 0.0 or self.magnitude == 0.0 or table.n_rows == 0:
            return table
        for attr in list(table.numeric):
            mask = rng.random(table.n_rows) < self.rate
            if mask.any():
                values = table.numeric[attr]
                values[mask] = self._spike(values[mask])
        return table

    def wrap_stream(self, ticks, rng):
        if self.rate == 0.0 or self.magnitude == 0.0:
            yield from ticks
            return
        for t, numeric, categorical in ticks:
            names = list(numeric)
            hit = rng.random(len(names)) < self.rate
            if hit.any():
                numeric = dict(numeric)
                for attr, corrupt in zip(names, hit):
                    if corrupt:
                        v = float(numeric[attr])
                        numeric[attr] = float(
                            v + self.magnitude * (abs(v) + 1.0)
                        )
            yield (t, numeric, categorical)


class ClockSkew(FaultInjector):
    """Monotone clock distortion: ``t → offset + (1 + drift) · t``.

    Keeps timestamps strictly increasing for ``drift > -1``, so the
    result is still a valid dataset; region specs must be mapped through
    :meth:`~repro.faults.plan.FaultPlan.transform_spec` to stay aligned.
    """

    def __init__(self, offset_s: float = 0.0, drift: float = 0.0) -> None:
        if drift <= -1.0:
            raise ValueError("drift must exceed -1 (time must keep moving)")
        self.offset_s = float(offset_s)
        self.drift = float(drift)

    def _params(self):
        return {"offset_s": self.offset_s, "drift": self.drift}

    def transform_time(self, t: float) -> float:
        return self.offset_s + (1.0 + self.drift) * t

    def apply_table(self, table, rng):
        if self.offset_s == 0.0 and self.drift == 0.0:
            return table
        table.timestamps = self.offset_s + (1.0 + self.drift) * table.timestamps
        return table

    def wrap_stream(self, ticks, rng):
        if self.offset_s == 0.0 and self.drift == 0.0:
            yield from ticks
            return
        for t, numeric, categorical in ticks:
            yield (self.transform_time(t), numeric, categorical)


class SchemaDrift(FaultInjector):
    """Collector upgrade mid-fleet: some attributes are renamed, some
    vanish, and some junk columns appear.

    ``rename_rate`` / ``drop_rate`` are per-attribute probabilities over
    the numeric attributes (decided once per application, in sorted
    attribute order, so the drift is deterministic); ``add_junk`` new
    noise columns are appended.
    """

    def __init__(
        self,
        rename_rate: float = 0.0,
        drop_rate: float = 0.0,
        add_junk: int = 0,
        prefix: str = "v2.",
    ) -> None:
        self.rename_rate = _check_rate(rename_rate, "rename_rate")
        self.drop_rate = _check_rate(drop_rate, "drop_rate")
        self.add_junk = int(add_junk)
        if self.add_junk < 0:
            raise ValueError("add_junk must be non-negative")
        self.prefix = prefix

    def _params(self):
        return {
            "rename_rate": self.rename_rate,
            "drop_rate": self.drop_rate,
            "add_junk": self.add_junk,
        }

    def _plan_drift(
        self, names: Sequence[str], rng: np.random.Generator
    ) -> Tuple[Dict[str, str], set]:
        ordered = sorted(names)
        drops = set()
        renames: Dict[str, str] = {}
        if ordered:
            u_drop = rng.random(len(ordered))
            u_rename = rng.random(len(ordered))
            for i, attr in enumerate(ordered):
                if u_drop[i] < self.drop_rate:
                    drops.add(attr)
                elif u_rename[i] < self.rename_rate:
                    renames[attr] = self.prefix + attr
        return renames, drops

    def apply_table(self, table, rng):
        if (
            self.rename_rate == 0.0
            and self.drop_rate == 0.0
            and self.add_junk == 0
        ):
            return table
        renames, drops = self._plan_drift(list(table.numeric), rng)
        table.numeric = {
            renames.get(attr, attr): values
            for attr, values in table.numeric.items()
            if attr not in drops
        }
        for j in range(self.add_junk):
            table.numeric[f"junk_{j}"] = rng.normal(size=table.n_rows)
        return table

    def wrap_stream(self, ticks, rng):
        if (
            self.rename_rate == 0.0
            and self.drop_rate == 0.0
            and self.add_junk == 0
        ):
            yield from ticks
            return
        plan: Optional[Tuple[Dict[str, str], set]] = None
        for t, numeric, categorical in ticks:
            if plan is None:
                plan = self._plan_drift(list(numeric), rng)
            renames, drops = plan
            row = {
                renames.get(attr, attr): value
                for attr, value in numeric.items()
                if attr not in drops
            }
            for j in range(self.add_junk):
                row[f"junk_{j}"] = float(rng.normal())
            yield (t, row, categorical)


class CollectorCrash(FaultInjector):
    """The collector process dies.

    Streaming: :class:`CollectorFault` is raised after ``at_tick`` ticks
    have been delivered (drawn from ``tick_range`` when unset) — the
    signal :class:`~repro.stream.supervisor.StreamSupervisor` recovers
    from.  Offline: the crash appears as ``down_s`` missing rows starting
    at the crash tick (the collector was down, nothing was recorded).
    """

    def __init__(
        self,
        at_tick: Optional[int] = None,
        down_s: int = 5,
        tick_range: Tuple[int, int] = (20, 80),
    ) -> None:
        self.at_tick = None if at_tick is None else int(at_tick)
        self.down_s = int(down_s)
        if self.down_s < 0:
            raise ValueError("down_s must be non-negative")
        self.tick_range = (int(tick_range[0]), int(tick_range[1]))
        if self.tick_range[0] >= self.tick_range[1]:
            raise ValueError("tick_range must be a non-empty interval")

    def _params(self):
        return {"at_tick": self.at_tick, "down_s": self.down_s}

    def _crash_tick(self, rng: np.random.Generator) -> int:
        if self.at_tick is not None:
            return self.at_tick
        return int(rng.integers(self.tick_range[0], self.tick_range[1]))

    def apply_table(self, table, rng):
        if self.down_s == 0 or table.n_rows == 0:
            return table
        at = min(self._crash_tick(rng), table.n_rows)
        keep = np.ones(table.n_rows, dtype=bool)
        keep[at : at + self.down_s] = False
        if not keep.any():
            keep[0] = True
        return table.take(np.flatnonzero(keep))

    def wrap_stream(self, ticks, rng):
        at = self._crash_tick(rng)
        delivered = 0
        for tick in ticks:
            if delivered >= at:
                raise CollectorFault(
                    f"collector crashed after {delivered} ticks"
                )
            delivered += 1
            yield tick


# ----------------------------------------------------------------------
# Fleet in-process faults
# ----------------------------------------------------------------------
# Unlike the telemetry injectors above, these target the *fleet runtime*
# rather than the data: a detection lane that raises, a tenant whose
# diagnoses hang the worker pool, a tenant whose durable state rots on
# disk.  They are not FaultInjector subclasses — there is no table or
# tick stream to transform — but they follow the same contract:
# deterministic, parameterized, no-op when given no targets.


class LaneExceptionFault:
    """A detection lane that raises mid-fallout for targeted streams.

    Install via
    :meth:`~repro.fleet.engine.FleetDetector.install_lane_fault`; the
    engine calls the hook at the start of each faulted lane's fallout
    processing, so raising here exercises the bulkhead exactly like an
    exception inside the clustering kernels.  ``after_fallouts`` delays
    the fault until the lane has fallen out that many times (0 = first
    fallout raises), so a lane can produce good verdicts before going
    bad.  Deactivate with :attr:`active` to simulate an operator fixing
    the lane before :meth:`~repro.fleet.scheduler.FleetScheduler.readmit`.
    """

    def __init__(
        self,
        streams: Sequence[int],
        after_fallouts: int = 0,
        message: str = "injected lane fault",
    ) -> None:
        self.streams = {int(s) for s in streams}
        self.after_fallouts = int(after_fallouts)
        if self.after_fallouts < 0:
            raise ValueError("after_fallouts must be non-negative")
        self.message = str(message)
        self.active = True
        self.raised: Dict[int, int] = {}
        self._fallouts: Dict[int, int] = {}

    def __call__(self, stream: int, view: object) -> None:
        s = int(stream)
        if not self.active or s not in self.streams:
            return
        seen = self._fallouts.get(s, 0)
        self._fallouts[s] = seen + 1
        if seen < self.after_fallouts:
            return
        self.raised[s] = self.raised.get(s, 0) + 1
        raise RuntimeError(f"{self.message} (stream {s})")

    def __repr__(self) -> str:
        return (
            f"LaneExceptionFault(streams={sorted(self.streams)}, "
            f"after_fallouts={self.after_fallouts})"
        )


class DiagnosisHang:
    """A sherlock proxy whose explains hang for targeted tenants.

    Wraps the shared ``DBSherlock`` facade handed to a
    :class:`~repro.fleet.scheduler.FleetScheduler`; every attribute
    passes through to the wrapped object (so the degraded-ranking path
    still reaches ``store`` / ``config`` / ``cache``), but ``explain``
    and ``explain_batch`` sleep ``hang_s`` seconds first when any job's
    dataset belongs to a targeted tenant (the scheduler names window
    snapshots ``fleet:<tenant>``).  That is the deadline tiers' threat
    model: a worker thread pinned by one hostile tenant.  Clear
    :attr:`active` to let the tenant recover (breaker probe succeeds).
    """

    def __init__(self, tenants: Sequence[str], hang_s: float = 0.5) -> None:
        self._targets = {f"fleet:{t}" for t in tenants}
        self.hang_s = float(hang_s)
        if self.hang_s < 0:
            raise ValueError("hang_s must be non-negative")
        self.active = True
        self.hangs = 0

    def wrap(self, sherlock: object) -> object:
        """Return the hanging proxy around *sherlock*."""
        return _DiagnosisHangProxy(sherlock, self)

    def _maybe_hang(self, dataset: object) -> None:
        if not self.active or self.hang_s == 0.0:
            return
        if getattr(dataset, "name", None) in self._targets:
            self.hangs += 1
            _time.sleep(self.hang_s)

    def __repr__(self) -> str:
        return (
            f"DiagnosisHang(tenants={sorted(self._targets)}, "
            f"hang_s={self.hang_s})"
        )


class _DiagnosisHangProxy:
    """Pass-through sherlock wrapper; see :class:`DiagnosisHang`."""

    def __init__(self, inner: object, fault: DiagnosisHang) -> None:
        self._inner = inner
        self._fault = fault

    def __getattr__(self, name: str) -> object:
        return getattr(self._inner, name)

    def explain(self, dataset, spec=None, **kwargs):
        self._fault._maybe_hang(dataset)
        return self._inner.explain(dataset, spec, **kwargs)

    def explain_batch(self, jobs, **kwargs):
        for dataset, _spec in jobs:
            self._fault._maybe_hang(dataset)
        inner_batch = getattr(self._inner, "explain_batch", None)
        if inner_batch is not None:
            return inner_batch(jobs, **kwargs)
        return [self._inner.explain(ds, spec) for ds, spec in jobs]


class CorruptTenantState(FaultInjector):
    """Rot a tenant's durable state on disk.

    ``mode`` picks the failure: ``"checkpoint"`` overwrites *every*
    checkpoint generation with non-JSON garbage (the checkpoint store
    keeps ``checkpoint.json`` plus a ``.1`` fallback, so a truly lost
    tenant needs both rotted); ``"generation"`` rots only the newest
    generation, exercising the verified fallback to the previous one;
    ``"wal"`` appends a torn half-record to the active WAL segment (the
    replay path is torn-tail tolerant, so this alone is survivable —
    pair it with ``"checkpoint"`` for a truly lost tenant); and
    ``"missing"`` deletes the tenant directory outright.
    ``apply(root_dir)`` is the whole interface: call it between fleet
    shutdown and :meth:`~repro.fleet.scheduler.FleetScheduler.recover`.
    """

    MODES = ("checkpoint", "generation", "wal", "missing")

    def __init__(self, tenants: Sequence[str], mode: str = "checkpoint") -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.tenants = list(tenants)
        self.mode = mode

    def _params(self):
        return {"tenants": self.tenants, "mode": self.mode}

    @staticmethod
    def _active_wal_segment(tenant_dir: Path) -> Path:
        wal_path = tenant_dir / "ticks.wal"
        if wal_path.is_dir():
            segments = sorted(wal_path.glob("seg-*.wal"))
            if segments:
                return segments[-1]
            return wal_path / "seg-00000000.wal"
        return wal_path  # legacy single-file log

    def apply(self, root_dir: Union[str, Path]) -> List[str]:
        """Corrupt each tenant's state under *root_dir*; returns hits."""
        import shutil

        root = Path(root_dir)
        garbage = '{"version": 1, "detector": {"version'
        corrupted: List[str] = []
        for tenant in self.tenants:
            tenant_dir = root / tenant
            if not tenant_dir.exists():
                continue
            if self.mode == "missing":
                shutil.rmtree(tenant_dir)
            elif self.mode == "checkpoint":
                (tenant_dir / "checkpoint.json").write_text(garbage)
                fallback = tenant_dir / "checkpoint.json.1"
                if fallback.exists():
                    fallback.write_text(garbage)
            elif self.mode == "generation":
                (tenant_dir / "checkpoint.json").write_text(garbage)
            else:  # wal: torn trailing record in the active segment
                with self._active_wal_segment(tenant_dir).open("a") as handle:
                    handle.write('{"t": 99999.0, "numeric": {"m0"')
            corrupted.append(tenant)
        return corrupted
