"""FaultPlan: a seeded, ordered composition of fault injectors.

A plan owns the randomness: each injector receives its own
``numpy.random.Generator`` spawned from the plan seed via
``SeedSequence.spawn``, keyed by the injector's position.  Repeated
applications of the same plan to the same input are therefore bitwise
identical, and two plans with the same seed but different injector
orderings are each individually deterministic (composition order still
matters for the *output* — faults compose like the real world, in
delivery order).

The dataset and stream paths consume randomness independently (a table
draws one vector per attribute, a stream one value per tick), so the two
paths are each deterministic but are not guaranteed to corrupt the very
same cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.data.regions import Region, RegionSpec
from repro.faults.injectors import FaultInjector, Tick

__all__ = ["FaultPlan", "TelemetryTable"]


@dataclass
class TelemetryTable:
    """Mutable intermediate form of a dataset, free of Dataset invariants.

    Injectors transform tables rather than datasets so that intermediate
    states (e.g. a duplicated timestamp before a later drop) need not
    satisfy the strictly-increasing-timestamp invariant; the plan
    converts back to an immutable :class:`Dataset` only at the end.
    """

    timestamps: np.ndarray
    numeric: Dict[str, np.ndarray]
    categorical: Dict[str, np.ndarray]
    name: str = ""

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "TelemetryTable":
        """Deep-copy a dataset into a mutable table."""
        return cls(
            timestamps=dataset.timestamps.copy(),
            numeric={
                a: dataset.column(a).copy() for a in dataset.numeric_attributes
            },
            categorical={
                a: dataset.column(a).copy()
                for a in dataset.categorical_attributes
            },
            name=dataset.name,
        )

    def to_dataset(self) -> Dataset:
        """Freeze the table back into a :class:`Dataset`."""
        return Dataset(
            self.timestamps,
            numeric=self.numeric,
            categorical=self.categorical,
            name=self.name,
        )

    @property
    def n_rows(self) -> int:
        return int(self.timestamps.shape[0])

    def take(self, indices: np.ndarray) -> "TelemetryTable":
        """Row-subset/reorder by integer indices (shared by drop/crash)."""
        return TelemetryTable(
            timestamps=self.timestamps[indices],
            numeric={a: v[indices] for a, v in self.numeric.items()},
            categorical={a: v[indices] for a, v in self.categorical.items()},
            name=self.name,
        )


class FaultPlan:
    """An ordered, seeded list of fault injectors.

    Parameters
    ----------
    injectors:
        Applied in sequence — the first injector sits closest to the
        collector, later ones see its output (delivery order).
    seed:
        Root seed; injector *i* draws from a child generator spawned at
        position *i*, so every application of the plan is reproducible.
    """

    def __init__(
        self, injectors: Sequence[FaultInjector], seed: int = 0
    ) -> None:
        self.injectors: List[FaultInjector] = list(injectors)
        self.seed = int(seed)

    def _rngs(self) -> List[np.random.Generator]:
        """Fresh per-injector generators (identical on every call)."""
        root = np.random.SeedSequence(self.seed)
        children = root.spawn(max(len(self.injectors), 1))
        return [np.random.default_rng(c) for c in children]

    # ------------------------------------------------------------------
    def apply(self, dataset: Dataset) -> Dataset:
        """Inject all faults into a finished dataset (offline path)."""
        table = TelemetryTable.from_dataset(dataset)
        for injector, rng in zip(self.injectors, self._rngs()):
            table = injector.apply_table(table, rng)
        return table.to_dataset()

    def wrap(self, ticks: Iterable[Tick]) -> Iterator[Tick]:
        """Wrap a live ``(t, numeric, categorical)`` tick stream."""
        stream: Iterator[Tick] = iter(ticks)
        for injector, rng in zip(self.injectors, self._rngs()):
            stream = injector.wrap_stream(stream, rng)
        return stream

    def transform_spec(self, spec: RegionSpec) -> RegionSpec:
        """Map a region spec through the plan's time distortions.

        Only injectors that re-map time (``ClockSkew``) affect region
        boundaries; value- and row-level faults leave timestamps of the
        surviving rows unchanged, so the spec still addresses them.
        """
        def remap(t: float) -> float:
            for injector in self.injectors:
                t = injector.transform_time(t)
            return t

        abnormal = [Region(remap(r.start), remap(r.end)) for r in spec.abnormal]
        normal = (
            None
            if spec.normal is None
            else [Region(remap(r.start), remap(r.end)) for r in spec.normal]
        )
        return RegionSpec(abnormal=abnormal, normal=normal)

    # ------------------------------------------------------------------
    def describe(self) -> List[str]:
        """Human-readable one-liner per injector (for bench reports)."""
        return [repr(injector) for injector in self.injectors]

    def __repr__(self) -> str:
        inner = ", ".join(self.describe())
        return f"FaultPlan(seed={self.seed}, [{inner}])"
