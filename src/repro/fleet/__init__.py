"""Fleet tick engine: many tenants' streaming detection, one arena.

The fleet subsystem scales the single-stream detection pipeline
(:mod:`repro.stream`) to thousands of tenants by keeping every tenant's
window in one columnar arena and running the per-tick numeric stages as
dense numpy calls across the whole fleet — peeling off per-stream work
(re-cluster, diagnose, WAL/checkpoint) only for streams whose verdict
actually changed.  The engine is asserted bitwise-equal to N independent
:class:`~repro.stream.detector.StreamingDetector` instances.

Layers, bottom up:

* :mod:`repro.fleet.bank` — batched sorted-multiset order statistics;
* :mod:`repro.fleet.arena` — the columnar ring + Equation 4 stats;
* :mod:`repro.fleet.engine` — the vectorized detector pipeline;
* :mod:`repro.fleet.scheduler` — multi-tenant diagnosis scheduling,
  backpressure/shed policies, deadline tiers with degraded fallbacks,
  retry with backoff, per-tenant durability and metrics;
* :mod:`repro.fleet.health` — the tenant health model (healthy /
  degraded / quarantined / ejected), per-tenant circuit breakers, the
  durable health journal, and partial-recovery reports;
* :mod:`repro.fleet.sim` — synthetic fleet tick sources for benchmarks.

Failure containment is load-bearing: a hostile tenant — a lane that
raises, a diagnosis that hangs, durable state that rots — loses service
*itself* (bulkhead quarantine, degraded ranking, breaker ejection,
recovery skip) while every other tenant's outputs stay bitwise-equal to
a fault-free run (asserted by ``benchmarks/bench_fleet_chaos.py``).
"""

from repro.fleet.arena import ArenaStats, ArenaWindow, FleetArena
from repro.fleet.bank import SortedWindowBank
from repro.fleet.engine import FleetDetector, FleetTick
from repro.fleet.health import (
    HEALTH_STATES,
    CircuitBreaker,
    HealthTracker,
    RecoveryReport,
    TenantRecovery,
    read_health_journal,
)
from repro.fleet.scheduler import SHED_POLICIES, FleetScheduler, SchedulerReport
from repro.fleet.sim import FleetSimSource

__all__ = [
    "ArenaStats",
    "ArenaWindow",
    "CircuitBreaker",
    "FleetArena",
    "FleetDetector",
    "FleetScheduler",
    "FleetSimSource",
    "FleetTick",
    "HEALTH_STATES",
    "HealthTracker",
    "RecoveryReport",
    "SHED_POLICIES",
    "SchedulerReport",
    "SortedWindowBank",
    "TenantRecovery",
    "read_health_journal",
]
