"""Cross-stream columnar tick arena.

All N tenants' current telemetry windows live in one contiguous
``(streams, attributes, 2 × capacity)`` float64 ring — the same
double-write layout as the single-stream
:class:`~repro.stream.window.RingBufferWindow`, so any stream's window
is always a zero-copy contiguous slice regardless of where its ring has
wrapped.  Appending a fleet-wide tick and maintaining every lane's
order statistics (overall median, trailing-``w`` median, buffer min/max,
window-median extrema — everything Equation 4 needs) costs a fixed
number of dense numpy calls over the whole fleet:

* two :class:`~repro.fleet.bank.SortedWindowBank` updates (the whole
  buffer and the trailing ``w`` samples);
* one scatter of the freshly completed window medians into a NaN-padded
  ``(streams, attributes, capacity − w + 1)`` FIFO ring, whose
  ``fmin/fmax`` reduction reproduces the single-stream
  :class:`~repro.stream.median.SlidingExtrema` over window medians
  (min/max are order-independent, so ring rotation is immaterial).

:class:`ArenaWindow` adapts one stream's slice of the arena to the
read interface of :class:`~repro.stream.window.RingBufferWindow`
(``timestamps`` / ``column`` / ``bounds`` / ``to_dataset``), which is
what lets :func:`repro.stream.detector.cluster_window` run the
identical clustering code over either storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.fleet.bank import SortedWindowBank

__all__ = ["ArenaStats", "ArenaWindow", "FleetArena"]


@dataclass
class ArenaStats:
    """Per-lane statistics for one fleet tick, all ``(streams, attrs)``."""

    #: retained rows per stream (``(streams,)``).
    sizes: np.ndarray
    #: per-lane buffer minima (Equation 2 lower bounds).
    mins: np.ndarray
    #: per-lane buffer maxima (Equation 2 upper bounds).
    maxs: np.ndarray
    #: per-lane Equation 4 potential power, already normalized by span.
    powers: np.ndarray


class FleetArena:
    """Columnar ring storage + order statistics for a whole fleet.

    Parameters
    ----------
    n_streams:
        Number of tenant streams.
    attributes:
        Numeric attribute names, shared by every stream (the fleet's
        column schema; per-stream attribute *selection* happens above).
    capacity:
        Ring length per stream — the detection window, in rows.
    window:
        Equation 4 sliding-window width ``w``; must not exceed
        *capacity* (the trailing-window bookkeeping reads the sample
        that slides out of the last ``w`` from the ring).
    """

    def __init__(
        self,
        n_streams: int,
        attributes: Sequence[str],
        capacity: int,
        window: int,
    ) -> None:
        if n_streams < 1:
            raise ValueError("n_streams must be at least 1")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        if window < 1:
            raise ValueError("window must be at least 1")
        if window > capacity:
            raise ValueError("window must not exceed capacity")
        self.attributes = list(attributes)
        if not self.attributes:
            raise ValueError("arena needs at least one attribute")
        self.n_streams = int(n_streams)
        self.capacity = int(capacity)
        self.window = int(window)
        S, A, cap = self.n_streams, len(self.attributes), self.capacity
        self._attr_index: Dict[str, int] = {
            a: j for j, a in enumerate(self.attributes)
        }
        self._ts = np.zeros((S, 2 * cap))
        self._vals = np.zeros((S, A, 2 * cap))
        #: total rows ever appended per stream (monotone; checkpoint
        #: restore re-bases it so replayed rows keep their sequence math).
        self.appended = np.zeros(S, dtype=np.int64)
        #: rows currently retained per stream.
        self.sizes = np.zeros(S, dtype=np.int64)
        self._overall = SortedWindowBank(S * A, cap)
        self._trailing = SortedWindowBank(S * A, self.window)
        self._ring_len = cap - self.window + 1
        self._medring = np.full((S, A, self._ring_len), np.nan)

    # ------------------------------------------------------------------
    def append(
        self, times: np.ndarray, values: np.ndarray, active: np.ndarray
    ) -> None:
        """Append one sanitized row per active stream, fleet-wide.

        *times* is ``(streams,)``, *values* ``(streams, attrs)`` finite
        float64, *active* a bool mask of streams receiving a row this
        tick.  Inactive streams are untouched.
        """
        S, A, cap = self.n_streams, len(self.attributes), self.capacity
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        active = np.asarray(active, dtype=bool)
        slot = (self.appended % cap).astype(np.int64)

        # Values leaving each lane, read before the slot is overwritten:
        # the buffer row evicted from a full ring sits exactly at the
        # write slot, and the sample sliding out of the trailing window
        # (sequence ``appended − w``) is still retained because w ≤ cap.
        evicted = np.take_along_axis(self._vals, slot[:, None, None], 2)[
            :, :, 0
        ]
        w_slot = ((self.appended - self.window) % cap).astype(np.int64)
        trailing_out = np.take_along_axis(
            self._vals, w_slot[:, None, None], 2
        )[:, :, 0]

        rows = np.nonzero(active)[0]
        wslots = slot[rows]
        self._ts[rows, wslots] = times[rows]
        self._ts[rows, wslots + cap] = times[rows]
        self._vals[rows, :, wslots] = values[rows]
        self._vals[rows, :, wslots + cap] = values[rows]

        lane_active = np.repeat(active, A)
        vals_flat = values.reshape(S * A)
        self._overall.replace(vals_flat, lane_active, evicted.reshape(S * A))
        self._trailing.replace(
            vals_flat, lane_active, trailing_out.reshape(S * A)
        )

        # Lanes whose trailing window just completed publish its median
        # into the FIFO ring, keyed (mod ring length) by the row's
        # sequence number — precisely the window medians the
        # single-stream tracker's extrema deques hold live.
        eligible = lane_active & (self._trailing.counts == self.window)
        if eligible.any():
            meds = self._trailing.medians()
            ring_slot = np.repeat(self.appended % self._ring_len, A)
            flat = self._medring.reshape(S * A, self._ring_len)
            lanes = np.nonzero(eligible)[0]
            flat[lanes, ring_slot[lanes]] = meds[lanes]

        self.appended = self.appended + active
        self.sizes = self.sizes + (active & (self.sizes < cap))

    # ------------------------------------------------------------------
    def stats(self) -> ArenaStats:
        """Bounds and Equation 4 potential power for every lane at once."""
        S, A = self.n_streams, len(self.attributes)
        mins = self._overall.mins().reshape(S, A)
        maxs = self._overall.maxs().reshape(S, A)
        overall = self._overall.medians().reshape(S, A)
        med_min = np.fmin.reduce(self._medring, axis=2)
        med_max = np.fmax.reduce(self._medring, axis=2)
        with np.errstate(invalid="ignore"):  # empty lanes: inf - inf
            span = maxs - mins
        # Power is zero while the buffer holds at most one full window,
        # when no window median exists yet, or for a constant lane —
        # the _AttributeTracker.potential_power degenerate cases.
        live = (
            (self.sizes[:, None] > self.window)
            & ~np.isnan(med_min)
            & (span > 0)
        )
        deviation = np.fmax(
            np.abs(overall - med_min), np.abs(overall - med_max)
        )
        powers = np.where(
            live, deviation / np.where(span > 0, span, 1.0), 0.0
        )
        return ArenaStats(
            sizes=self.sizes, mins=mins, maxs=maxs, powers=powers
        )

    # ------------------------------------------------------------------
    def view(self, stream: int) -> "ArenaWindow":
        """A RingBufferWindow-compatible read view of one stream."""
        return ArenaWindow(self, int(stream))


class ArenaWindow:
    """Read adapter: one stream's arena slice as a telemetry window.

    Implements the read surface of
    :class:`~repro.stream.window.RingBufferWindow` (``n_rows``,
    ``timestamps``, ``column``, ``bounds``, ``to_dataset``, attribute
    lists) over zero-copy arena views, so the shared clustering and
    diagnosis code paths cannot tell the storages apart.
    """

    __slots__ = ("_arena", "_stream")

    def __init__(self, arena: FleetArena, stream: int) -> None:
        if not 0 <= stream < arena.n_streams:
            raise IndexError(f"stream {stream} out of range")
        self._arena = arena
        self._stream = stream

    @property
    def capacity(self) -> int:
        return self._arena.capacity

    @property
    def n_rows(self) -> int:
        return int(self._arena.sizes[self._stream])

    def __len__(self) -> int:
        return self.n_rows

    @property
    def appended(self) -> int:
        return int(self._arena.appended[self._stream])

    @property
    def oldest_seq(self) -> int:
        return self.appended - self.n_rows

    @property
    def numeric_attributes(self) -> List[str]:
        return list(self._arena.attributes)

    @property
    def categorical_attributes(self) -> List[str]:
        return []

    def _start(self) -> int:
        arena = self._arena
        return int(
            (arena.appended[self._stream] - arena.sizes[self._stream])
            % arena.capacity
        )

    @property
    def timestamps(self) -> np.ndarray:
        start = self._start()
        return self._arena._ts[self._stream, start : start + self.n_rows]

    def column(self, attr: str) -> np.ndarray:
        ai = self._arena._attr_index[attr]
        start = self._start()
        return self._arena._vals[
            self._stream, ai, start : start + self.n_rows
        ]

    def bounds(self, attr: str) -> Tuple[float, float]:
        if self.n_rows == 0:
            return 0.0, 0.0
        ai = self._arena._attr_index[attr]
        lane = self._stream * len(self._arena.attributes) + ai
        bank = self._arena._overall
        return (
            float(bank._sorted[lane, 0]),
            float(bank._sorted[lane, bank.counts[lane] - 1]),
        )

    def to_dataset(self, name: str = "") -> Dataset:
        return Dataset(
            self.timestamps.copy(),
            numeric={
                a: self.column(a).copy() for a in self._arena.attributes
            },
            categorical={},
            name=name,
        )
