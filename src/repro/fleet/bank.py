"""Vectorized order statistics for thousands of lanes at once.

The fleet engine needs, per *lane* (one ``(stream, attribute)`` pair),
the same order statistics the single-stream
:class:`~repro.stream.median._AttributeTracker` keeps with Python heaps
and deques: the median of the retained buffer, the median of the
trailing ``w`` samples, and the min/max of the buffer contents.  Running
80 000 heap updates per tick in Python would dwarf the arithmetic; this
module instead keeps every lane's buffer contents **sorted in one dense
matrix** and performs the one-in/one-out update for all lanes with a
fixed number of whole-matrix numpy operations:

1. a batched binary search (``ceil(log2(C + 1))`` rounds of
   ``take_along_axis``) finds each lane's delete position ``d`` (the
   leaving value's first occurrence — or the first +inf pad while the
   lane is still growing) and insert position ``i``;
2. a single gather shifts exactly the elements between the two
   positions by one slot (right when ``i <= d``, left when ``i > d``)
   and leaves everything else untouched;
3. one scatter writes the incoming value at its final position.

The resulting matrix is bitwise the sorted buffer contents, so lane
medians — ``(S[(n-1)//2] + S[n//2]) / 2``, the exact ``np.median``
reduction and therefore the exact
:meth:`~repro.stream.median.SlidingMedian.median` — and lane min/max —
``S[0]`` / ``S[n-1]``, what
:class:`~repro.stream.median.SlidingExtrema` tracks — come out of a
couple of ``take_along_axis`` gathers, amortized O(1) per lane per tick.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SortedWindowBank"]


class SortedWindowBank:
    """``lanes`` independent bounded sorted multisets under one-in/one-out.

    Each lane holds at most *capacity* finite float64 values, stored
    ascending and padded with ``+inf`` beyond the lane's current count.
    :meth:`replace` inserts one value per active lane and removes the
    lane's leaving value (or consumes a pad slot while the lane is still
    filling) — the whole update is a handful of dense numpy calls with
    no per-lane Python work.
    """

    __slots__ = ("capacity", "counts", "_sorted", "_rounds", "_idx")

    def __init__(self, lanes: int, capacity: int) -> None:
        if lanes < 0:
            raise ValueError("lanes must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.counts = np.zeros(lanes, dtype=np.int64)
        self._sorted = np.full((lanes, self.capacity), np.inf)
        # enough halvings to pin down a position in [0, capacity]
        self._rounds = max(1, int(np.ceil(np.log2(self.capacity + 1))))
        self._idx = np.arange(self.capacity, dtype=np.int64)[None, :]

    @property
    def lanes(self) -> int:
        return self._sorted.shape[0]

    def _search(self, values: np.ndarray) -> np.ndarray:
        """Per-lane left insertion point of ``values`` (batched bisect)."""
        lanes = self._sorted.shape[0]
        lo = np.zeros(lanes, dtype=np.int64)
        hi = np.full(lanes, self.capacity, dtype=np.int64)
        for _ in range(self._rounds):
            mid = (lo + hi) >> 1  # < capacity wherever lo < hi
            probe = np.take_along_axis(
                self._sorted, np.minimum(mid, self.capacity - 1)[:, None], 1
            )[:, 0]
            go_right = (lo < hi) & (probe < values)
            stay = (lo < hi) & ~go_right
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(stay, mid, hi)
        return lo

    def replace(
        self,
        values: np.ndarray,
        active: np.ndarray,
        evicted: np.ndarray,
    ) -> None:
        """One-in/one-out update for every active lane.

        Parameters
        ----------
        values:
            ``(lanes,)`` finite float64 — the value entering each active
            lane.
        active:
            ``(lanes,)`` bool — lanes receiving a sample this tick;
            inactive lanes are untouched.
        evicted:
            ``(lanes,)`` float64 — the value leaving each lane that is
            already at capacity (it must be present in the lane).
            Ignored for growing or inactive lanes.
        """
        S = self._sorted
        full = self.counts >= self.capacity
        # Growing lanes "delete" their first +inf pad — searching is
        # unnecessary, the pad sits exactly at the lane's count.
        need_search = active & full
        d = np.where(
            need_search,
            self._search(np.where(need_search, evicted, -np.inf)),
            self.counts,
        )
        i = self._search(np.where(active, values, -np.inf))
        # Inactive lanes become no-ops: delete slot 0, re-insert S[:, 0].
        d = np.where(active, d, 0)
        i = np.where(active, i, 0)
        case_le = i <= d  # insert lands at or before the hole
        p = np.where(case_le, i, i - 1)
        idx = self._idx
        shift_right = case_le[:, None] & (idx > p[:, None]) & (idx <= d[:, None])
        shift_left = (~case_le)[:, None] & (idx >= d[:, None]) & (idx < p[:, None])
        gather = idx - shift_right.astype(np.int64) + shift_left.astype(np.int64)
        out = np.take_along_axis(S, gather, axis=1)
        final = np.where(active, values, S[:, 0])
        np.put_along_axis(out, p[:, None], final[:, None], axis=1)
        self._sorted = out
        self.counts = self.counts + (active & ~full)

    # ------------------------------------------------------------------
    def medians(self) -> np.ndarray:
        """Per-lane ``np.median`` of the live values (NaN for empty lanes)."""
        n = self.counts
        k1 = np.maximum((n - 1) // 2, 0)
        k2 = n // 2
        a = np.take_along_axis(self._sorted, k1[:, None], 1)[:, 0]
        b = np.take_along_axis(
            self._sorted, np.minimum(k2, self.capacity - 1)[:, None], 1
        )[:, 0]
        med = np.where(k1 == k2, a, (a + b) / 2.0)
        return np.where(n > 0, med, np.nan)

    def mins(self) -> np.ndarray:
        """Per-lane minimum (``+inf`` for empty lanes)."""
        return self._sorted[:, 0].copy()

    def maxs(self) -> np.ndarray:
        """Per-lane maximum (``+inf`` for empty lanes)."""
        last = np.maximum(self.counts - 1, 0)
        return np.take_along_axis(self._sorted, last[:, None], 1)[:, 0]
