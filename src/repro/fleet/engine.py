"""Fleet tick engine: N streaming detectors as one vectorized pipeline.

:class:`FleetDetector` is the cross-stream twin of
:class:`~repro.stream.detector.StreamingDetector` in ``mode="exact"``.
Every per-tick stage that the single-stream detector runs in Python —
non-monotone drop, NaN sanitize, stuck-at quarantine, the incremental
Equation 4 potential power, bounds, attribute selection — runs here as a
handful of dense numpy calls over the whole fleet
(:class:`~repro.fleet.arena.FleetArena`).  Only the *fallout* — DBSCAN
re-clustering, region closing — is peeled off, and only for streams
whose selected-attribute set is non-empty this tick.  With
``batch_fallout=True`` (the default) the whole fallout set runs through
the batched storm kernels
(:func:`~repro.stream.detector.cluster_windows_batch`,
:func:`~repro.stream.detector.close_regions_batch`) — bitwise-equal to,
and asserted against, the serial per-stream path
(:func:`~repro.stream.detector.cluster_window`,
:func:`~repro.stream.detector.close_regions`,
``AnomalyDetector._cluster_and_mask``), which ``batch_fallout=False``
still runs verbatim.

The result is asserted bitwise-equal to running N independent
``StreamingDetector`` instances on the same rows — verdicts, masks,
regions, ε, quarantine sets, counters, and even
:meth:`FleetDetector.stream_checkpoint`, which emits the exact
``StreamingDetector.checkpoint()`` schema so per-tenant recovery rides
the existing :class:`~repro.stream.wal.CheckpointStore` /
:class:`~repro.stream.wal.TickWAL` machinery unchanged.

**Lane bulkheads.**  The fallout stage is the only per-stream Python in
the tick, and therefore the only place one tenant's pathological window
can raise.  Both fallout paths wrap each lane in a bulkhead: an
exception poisons *that lane only* — its last-good checkpoint is frozen
(the ingest stages had already completed consistently), the lane stops
ingesting and emits abstaining (empty) verdicts, and every other lane's
outputs remain bitwise-identical to a fault-free run, because all
shared stages are elementwise and the batched fallout kernels fall back
to the bitwise-equal serial loop when a fused call fails.
:meth:`FleetDetector.unpoison` readmits a lane from its retained state;
durable tenants keep WAL'ing offered rows meanwhile, so nothing is lost
across the outage.
"""

from __future__ import annotations

import copy
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.anomaly import AnomalyDetector, DetectionResult
from repro.data.regions import Region
from repro.fleet.arena import ArenaWindow, FleetArena
from repro.obs import metrics
from repro.obs import trace
from repro.stream.detector import (
    close_regions,
    close_regions_batch,
    cluster_window,
    cluster_windows_batch,
)

__all__ = ["FleetDetector", "FleetTick"]

_FLEET_TICK_SECONDS = metrics.REGISTRY.histogram(
    "repro_fleet_tick_seconds",
    "Wall time of one fleet-wide tick (all streams)",
)
_FLEET_STREAM_SECONDS = metrics.REGISTRY.histogram(
    "repro_fleet_stream_tick_seconds",
    "Amortized per-stream cost of one fleet tick",
    buckets=metrics.FINE_BUCKETS,
)
_FLEET_STREAM_TICKS = metrics.REGISTRY.counter(
    "repro_fleet_stream_ticks_total",
    "Per-stream ticks processed by the fleet engine",
)
_FLEET_RECLUSTERS = metrics.REGISTRY.counter(
    "repro_fleet_reclusters_total",
    "Per-stream DBSCAN re-clusters run by the fleet engine",
)
_FLEET_DROPPED = metrics.REGISTRY.counter(
    "repro_fleet_dropped_ticks_total",
    "Fleet rows discarded for non-monotone timestamps",
)
_FLEET_SANITIZED = metrics.REGISTRY.counter(
    "repro_fleet_sanitized_values_total",
    "NaN telemetry cells repaired by the fleet engine",
)
_FLEET_QUARANTINES = metrics.REGISTRY.counter(
    "repro_fleet_quarantine_events_total",
    "Fleet lanes newly quarantined as stuck-at",
)
_FLEET_CLOSED = metrics.REGISTRY.counter(
    "repro_fleet_closed_regions_total",
    "Abnormal regions closed by the fleet engine",
)
_FLEET_FALLOUT_STREAMS = metrics.REGISTRY.histogram(
    "repro_fleet_fallout_streams",
    "Streams leaving the vectorized path per fleet tick (storm pressure)",
    buckets=metrics.COUNT_BUCKETS,
)
_FLEET_FALLOUT_MS = metrics.REGISTRY.histogram(
    "repro_fleet_fallout_ms",
    "Wall time of the fallout stage (re-cluster + region close) per tick",
    buckets=metrics.MS_BUCKETS,
)
_FLEET_POISONED = metrics.REGISTRY.counter(
    "repro_fleet_poisoned_lanes_total",
    "Lanes quarantined by a fallout bulkhead (exception contained)",
)
_FLEET_POISON_SKIPPED = metrics.REGISTRY.counter(
    "repro_fleet_poison_skipped_rows_total",
    "Rows offered to poisoned lanes and skipped (retained in the WAL "
    "for durable tenants)",
)


@dataclass
class FleetTick:
    """What one fleet-wide tick produced.

    Per-stream :class:`DetectionResult` objects are materialized only
    for streams that ran fallout (non-empty selection); every other
    stream's verdict is the empty result, available lazily through
    :meth:`result` so a 10k-tenant tick does not allocate 10k masks.
    """

    #: per-stream row timestamps offered this tick.
    times: np.ndarray
    #: streams whose row was appended (monotone time, sanitized).
    accepted: np.ndarray
    #: streams whose row was discarded as non-monotone.
    dropped: np.ndarray
    #: ``(streams, attrs)`` bool — attributes clearing PPt, unquarantined.
    selected: np.ndarray
    #: ``(streams, attrs)`` Equation 4 potential power.
    powers: np.ndarray
    #: retained rows per stream at tick end.
    sizes: np.ndarray
    #: streams that ran a full re-cluster this tick.
    reclustered: np.ndarray
    #: fallout results, keyed by stream index.
    results: Dict[int, DetectionResult] = field(default_factory=dict)
    #: newly closed regions, keyed by stream index.
    closed: Dict[int, List[Region]] = field(default_factory=dict)
    #: per-stream tick-to-verdict wall time in seconds (NaN for streams
    #: not present this tick).  Quiet streams get their verdict when the
    #: vector phase completes; fallout streams when their re-cluster and
    #: region-closing finish.
    verdict_latency: Optional[np.ndarray] = None
    #: snapshot of the engine's poisoned-lane mask after this tick.
    poisoned: Optional[np.ndarray] = None
    #: lanes newly poisoned *this tick*, keyed by stream index, valued
    #: by the contained error's ``type: message`` string.
    lane_errors: Dict[int, str] = field(default_factory=dict)

    def result(self, stream: int) -> DetectionResult:
        """The per-stream verdict (empty result for quiet streams)."""
        got = self.results.get(int(stream))
        if got is not None:
            return got
        return DetectionResult(
            mask=np.zeros(int(self.sizes[int(stream)]), dtype=bool),
            regions=[],
            selected_attributes=[],
            eps=0.0,
        )


class FleetDetector:
    """N tenants' streaming detection as one columnar engine.

    Parameters mirror :class:`~repro.stream.detector.StreamingDetector`
    (always ``mode="exact"``); *attributes* fixes the shared column
    schema up front, and *tracked* optionally restricts which attributes
    participate in selection (the filter the single-stream detector
    calls ``attributes``).  ``recluster_fraction`` / ``bounds_drift``
    only exist so :meth:`stream_checkpoint` can round-trip a detector
    configuration bit-for-bit.
    """

    CHECKPOINT_VERSION = 1

    def __init__(
        self,
        n_streams: int,
        attributes: Sequence[str],
        capacity: int = 120,
        window: int = 20,
        pp_threshold: float = 0.3,
        min_pts: int = 3,
        cluster_fraction: float = 0.2,
        include_noise: bool = True,
        min_region_s: float = 5.0,
        gap_fill_s: float = 3.0,
        tracked: Optional[Sequence[str]] = None,
        recluster_fraction: float = 0.05,
        bounds_drift: float = 0.02,
        quarantine_after: Optional[int] = None,
        quarantine_rel_epsilon: Optional[float] = None,
        batch_fallout: bool = True,
    ) -> None:
        self.batch = AnomalyDetector(
            window=window,
            pp_threshold=pp_threshold,
            min_pts=min_pts,
            cluster_fraction=cluster_fraction,
            include_noise=include_noise,
            min_region_s=min_region_s,
            gap_fill_s=gap_fill_s,
        )
        self.arena = FleetArena(n_streams, attributes, capacity, window)
        self.capacity = int(capacity)
        self.recluster_fraction = float(recluster_fraction)
        self.bounds_drift = float(bounds_drift)
        # Storm path: batch all fallout streams' re-clustering into the
        # grouped numpy kernels.  Runtime-only — deliberately absent from
        # _params() so checkpoints stay byte-identical either way.
        self.batch_fallout = bool(batch_fallout)
        self._attr_filter = list(tracked) if tracked is not None else None
        self._tracked = (
            [a for a in self._attr_filter if a in self.arena._attr_index]
            if self._attr_filter is not None
            else list(self.arena.attributes)
        )
        self._tracked_idx = np.asarray(
            [self.arena._attr_index[a] for a in self._tracked],
            dtype=np.int64,
        )
        A = len(self.arena.attributes)
        self._tracked_mask = np.zeros(A, dtype=bool)
        self._tracked_mask[self._tracked_idx] = True
        self.quarantine_after = (
            int(quarantine_after) if quarantine_after is not None else None
        )
        if self.quarantine_after is not None and self.quarantine_after < 2:
            raise ValueError("quarantine_after must be at least 2")
        self.quarantine_rel_epsilon = (
            float(quarantine_rel_epsilon)
            if quarantine_rel_epsilon is not None
            else None
        )
        if self.quarantine_rel_epsilon is not None:
            if self.quarantine_rel_epsilon < 0:
                raise ValueError("quarantine_rel_epsilon must be >= 0")
            if self.quarantine_after is None:
                raise ValueError(
                    "quarantine_rel_epsilon requires quarantine_after "
                    "(the rolling-window length)"
                )
        S = self.arena.n_streams
        self.tick_counts = np.zeros(S, dtype=np.int64)
        self.recluster_counts = np.zeros(S, dtype=np.int64)
        self.dropped_counts = np.zeros(S, dtype=np.int64)
        self.sanitized_counts = np.zeros(S, dtype=np.int64)
        self.last_time = np.full(S, -np.inf)
        self._has_time = np.zeros(S, dtype=bool)
        self._last_seen = np.zeros((S, A))
        self._seen = np.zeros((S, A), dtype=bool)
        self.quarantined = np.zeros((S, A), dtype=bool)
        self._stuck_runs = np.ones((S, A), dtype=np.int64)
        self._prev_value = np.full((S, A), np.nan)
        self._recent: Optional[np.ndarray] = (
            np.full((S, A, self.quarantine_after), np.nan)
            if self.quarantine_rel_epsilon is not None
            else None
        )
        self._emitted: List[Set[float]] = [set() for _ in range(S)]
        #: lanes quarantined by a fallout bulkhead: no ingest, no
        #: fallout, abstaining verdicts, frozen last-good checkpoint.
        self.poisoned = np.zeros(S, dtype=bool)
        self.poison_skipped = np.zeros(S, dtype=np.int64)
        self._poison_errors: Dict[int, str] = {}
        self._poison_checkpoints: Dict[int, Dict[str, object]] = {}
        self._lane_fault = None

    # ------------------------------------------------------------------
    def install_lane_fault(self, hook) -> None:
        """Install an in-process lane-fault hook (chaos injection seam).

        *hook* is ``hook(stream, view) -> None`` and is called at the
        start of each lane's fallout processing; raising from it
        simulates a pathological window and exercises the bulkhead
        exactly like an exception inside the clustering kernels would.
        Pass ``None`` to uninstall.
        """
        self._lane_fault = hook

    def poison(self, stream: int, reason: str = "operator") -> str:
        """Quarantine one lane, freezing its last-good checkpoint.

        The lane's state is consistent when this is called (the
        bulkhead fires only after the elementwise ingest stages have
        completed fleet-wide), so the captured checkpoint is the exact
        state a fault-free detector would checkpoint at this row.
        Subsequent ticks skip the lane entirely; every other lane is
        bitwise-unaffected.  Idempotent — repoisoning keeps the first
        frozen checkpoint and reason.
        """
        s = int(stream)
        if self.poisoned[s]:
            return self._poison_errors[s]
        state = self.stream_checkpoint(s)
        self.poisoned[s] = True
        self._poison_checkpoints[s] = state
        self._poison_errors[s] = str(reason)
        _FLEET_POISONED.inc()
        return self._poison_errors[s]

    def _contain(self, stream: int, exc: BaseException) -> str:
        return self.poison(stream, f"{type(exc).__name__}: {exc}")

    def unpoison(self, stream: int) -> None:
        """Readmit a quarantined lane from its retained last-good state.

        While poisoned the lane's live arrays were never touched, so
        clearing the flag resumes it bitwise-identically to a detector
        restored from the frozen checkpoint.  Rows offered during the
        quarantine were skipped (``poison_skipped``); durable tenants
        still hold them in their WAL for replay.
        """
        s = int(stream)
        if not self.poisoned[s]:
            return
        self.poisoned[s] = False
        self._poison_checkpoints.pop(s, None)
        self._poison_errors.pop(s, None)

    def poison_reason(self, stream: int) -> Optional[str]:
        return self._poison_errors.get(int(stream))

    # ------------------------------------------------------------------
    @property
    def n_streams(self) -> int:
        return self.arena.n_streams

    @property
    def attributes(self) -> List[str]:
        return list(self.arena.attributes)

    def tick(
        self,
        times: np.ndarray,
        values: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> FleetTick:
        """One fleet-wide tick: ingest, select, and peel off fallout.

        *times* is ``(streams,)``, *values* ``(streams, attrs)`` (NaN
        cells allowed — they are sanitized exactly as the single-stream
        detector does), *active* an optional mask of streams that have a
        row this round (default: all).
        """
        t0 = _time.perf_counter()
        S, A = self.n_streams, len(self.arena.attributes)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        present = (
            np.ones(S, dtype=bool)
            if active is None
            else np.asarray(active, dtype=bool)
        )

        # Stage 0 — bulkhead gate: poisoned lanes skip the tick entirely
        # (their frozen checkpoint stays the source of truth; offered
        # rows are counted and, for durable tenants, retained in the
        # WAL).  Elementwise, so clean lanes see identical inputs.
        if self.poisoned.any():
            skipped = present & self.poisoned
            n_skipped = int(skipped.sum())
            if n_skipped:
                self.poison_skipped += skipped
                _FLEET_POISON_SKIPPED.inc(n_skipped)
            present = present & ~self.poisoned

        # Stage 1 — drop non-monotone rows (before sanitize, exactly as
        # StreamingDetector.observe does).
        accepted = present & (times > self.last_time)
        dropped = present & ~accepted
        n_dropped = int(dropped.sum())
        self.dropped_counts += dropped

        # Stage 2 — sanitize: NaN cells take the attribute's last valid
        # value (0.0 before any), valid cells refresh it.
        nan_cells = np.isnan(values) & accepted[:, None]
        clean = np.where(nan_cells, self._last_seen, values)
        n_sanitized = nan_cells.sum(axis=1)
        self.sanitized_counts += n_sanitized
        valid = accepted[:, None] & ~np.isnan(values)
        self._last_seen = np.where(valid, values, self._last_seen)
        self._seen |= valid
        self.last_time = np.where(accepted, times, self.last_time)
        self._has_time |= accepted

        # Stage 3 — append to the arena (banks, medring) fleet-wide.
        self.arena.append(times, clean, accepted)

        # Stage 4 — stuck-at quarantine on the sanitized values.
        n_quarantined = self._update_quarantine(clean, accepted)

        # Stage 5 — Equation 4 + bounds as single whole-fleet calls.
        stats = self.arena.stats()
        selected = (
            (stats.powers > self.batch.pp_threshold)
            & self._tracked_mask[None, :]
            & ~self.quarantined
        )

        # Stage 6 — per-stream fallout, only where something was selected.
        self.tick_counts += present
        fallout = np.nonzero(present & selected.any(axis=1))[0]
        results: Dict[int, DetectionResult] = {}
        closed: Dict[int, List[Region]] = {}
        reclustered = np.zeros(S, dtype=bool)
        n_closed = 0
        verdict_latency = np.full(S, np.nan)
        verdict_latency[present] = _time.perf_counter() - t0
        lane_errors: Dict[int, str] = {}
        fallout_t0 = _time.perf_counter()
        if self.batch_fallout and fallout.size:
            streams = [int(s) for s in fallout]
            if self._lane_fault is not None:
                # evaluate the fault hook per lane up front so a raising
                # lane never enters the fused kernels
                surviving = []
                for s in streams:
                    try:
                        self._lane_fault(s, self.arena.view(s))
                    except Exception as exc:
                        lane_errors[s] = self._contain(s, exc)
                    else:
                        surviving.append(s)
                streams = surviving
            if streams:
                try:
                    views = [self.arena.view(s) for s in streams]
                    selections = [
                        [
                            a
                            for a, ai in zip(
                                self._tracked, self._tracked_idx
                            )
                            if selected[s, ai]
                        ]
                        for s in streams
                    ]
                    batch_results = cluster_windows_batch(
                        self.batch, views, selections
                    )
                    closed_lists, emitted_out = close_regions_batch(
                        [res.regions for res in batch_results],
                        [view.timestamps for view in views],
                        self.batch.gap_fill_s,
                        [self._emitted[s] for s in streams],
                    )
                except Exception:
                    # one pathological lane sank the fused kernels: fall
                    # back to the bitwise-equal serial loop, whose
                    # per-lane bulkhead quarantines only the offender
                    # (the hook already ran above, so it is skipped).
                    n_closed += self._fallout_serial(
                        streams,
                        selected,
                        results,
                        closed,
                        reclustered,
                        verdict_latency,
                        t0,
                        lane_errors,
                        run_hook=False,
                    )
                else:
                    idx = np.asarray(streams, dtype=np.intp)
                    self.recluster_counts[idx] += 1
                    reclustered[idx] = True
                    for s, res, regions, emitted in zip(
                        streams, batch_results, closed_lists, emitted_out
                    ):
                        results[s] = res
                        self._emitted[s] = emitted
                        if regions:
                            closed[s] = regions
                            n_closed += len(regions)
                    verdict_latency[idx] = _time.perf_counter() - t0
        else:
            n_closed += self._fallout_serial(
                [int(s) for s in fallout],
                selected,
                results,
                closed,
                reclustered,
                verdict_latency,
                t0,
                lane_errors,
            )
        fallout_ms = (_time.perf_counter() - fallout_t0) * 1000.0

        elapsed = _time.perf_counter() - t0
        n_present = int(present.sum())
        if trace.enabled():
            ctx = trace.current_context()
            _FLEET_TICK_SECONDS.observe(
                elapsed, exemplar=ctx[0] if ctx else None
            )
            trace.stage(
                "fleet.tick",
                elapsed,
                streams=n_present,
                closed=n_closed,
            )
        else:
            _FLEET_TICK_SECONDS.observe(elapsed)
        if n_present:
            _FLEET_STREAM_SECONDS.observe(elapsed / n_present)
            _FLEET_STREAM_TICKS.inc(n_present)
        if n_dropped:
            _FLEET_DROPPED.inc(n_dropped)
        total_sanitized = int(n_sanitized.sum())
        if total_sanitized:
            _FLEET_SANITIZED.inc(total_sanitized)
        if n_quarantined:
            _FLEET_QUARANTINES.inc(n_quarantined)
        if n_present:
            _FLEET_FALLOUT_STREAMS.observe(int(fallout.size))
        n_reclustered = int(reclustered.sum())
        if n_reclustered:
            _FLEET_RECLUSTERS.inc(n_reclustered)
        if fallout.size:
            _FLEET_FALLOUT_MS.observe(fallout_ms)
        if n_closed:
            _FLEET_CLOSED.inc(n_closed)
        return FleetTick(
            times=times,
            accepted=accepted,
            dropped=dropped,
            selected=selected,
            powers=stats.powers,
            sizes=stats.sizes.copy(),
            reclustered=reclustered,
            results=results,
            closed=closed,
            verdict_latency=verdict_latency,
            poisoned=self.poisoned.copy(),
            lane_errors=lane_errors,
        )

    def _fallout_serial(
        self,
        streams: Sequence[int],
        selected: np.ndarray,
        results: Dict[int, DetectionResult],
        closed: Dict[int, List[Region]],
        reclustered: np.ndarray,
        verdict_latency: np.ndarray,
        t0: float,
        lane_errors: Dict[int, str],
        run_hook: bool = True,
    ) -> int:
        """The per-lane fallout loop, each lane behind its own bulkhead.

        An exception anywhere in a lane's re-cluster or region-closing
        poisons that lane and moves on; the lane's state is untouched
        (``cluster_window`` and ``close_regions`` are pure with respect
        to the detector), so the frozen checkpoint is its exact
        last-good state.  Returns the number of regions closed.
        """
        n_closed = 0
        for s in streams:
            s = int(s)
            try:
                view = self.arena.view(s)
                if run_hook and self._lane_fault is not None:
                    self._lane_fault(s, view)
                names = [
                    a
                    for a, ai in zip(self._tracked, self._tracked_idx)
                    if selected[s, ai]
                ]
                res = cluster_window(self.batch, view, names)
                regions, emitted = close_regions(
                    res.regions,
                    view.timestamps,
                    self.batch.gap_fill_s,
                    self._emitted[s],
                )
            except Exception as exc:
                lane_errors[s] = self._contain(s, exc)
                continue
            self.recluster_counts[s] += 1
            reclustered[s] = True
            results[s] = res
            self._emitted[s] = emitted
            if regions:
                closed[s] = regions
                n_closed += len(regions)
            verdict_latency[s] = _time.perf_counter() - t0
        return n_closed

    # ------------------------------------------------------------------
    def _update_quarantine(
        self, clean: np.ndarray, accepted: np.ndarray
    ) -> int:
        """Vectorized twin of ``StreamingDetector._update_quarantine``."""
        if self.quarantine_after is None:
            return 0
        before = self.quarantined
        lanes = accepted[:, None] & self._tracked_mask[None, :]
        if self.quarantine_rel_epsilon is None:
            eq = (self._prev_value == clean) & lanes
            self._stuck_runs = np.where(
                lanes, np.where(eq, self._stuck_runs + 1, 1), self._stuck_runs
            )
            hit = eq & (self._stuck_runs >= self.quarantine_after)
            self.quarantined = np.where(
                lanes, (self.quarantined & eq) | hit, self.quarantined
            )
            self._prev_value = np.where(lanes, clean, self._prev_value)
        else:
            assert self._recent is not None
            rows = np.nonzero(accepted)[0]
            self._recent[rows, :, :-1] = self._recent[rows, :, 1:]
            self._recent[rows, :, -1] = clean[rows]
            ready = lanes & (
                self.arena.appended >= self.quarantine_after
            )[:, None]
            if ready.any():
                means = self._recent.mean(axis=2)
                stds = self._recent.std(axis=2)
                scale = np.maximum(np.abs(means), 1e-12)
                stuck = stds <= self.quarantine_rel_epsilon * scale
                self.quarantined = np.where(
                    ready, stuck, self.quarantined
                )
        return int((self.quarantined & ~before).sum())

    # ------------------------------------------------------------------
    # Checkpoint interop with StreamingDetector
    # ------------------------------------------------------------------
    def _params(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "window": self.batch.window,
            "pp_threshold": self.batch.pp_threshold,
            "min_pts": self.batch.min_pts,
            "cluster_fraction": self.batch.cluster_fraction,
            "include_noise": self.batch.include_noise,
            "min_region_s": self.batch.min_region_s,
            "gap_fill_s": self.batch.gap_fill_s,
            "attributes": (
                list(self._attr_filter)
                if self._attr_filter is not None
                else None
            ),
            "mode": "exact",
            "recluster_fraction": self.recluster_fraction,
            "bounds_drift": self.bounds_drift,
            "quarantine_after": self.quarantine_after,
            "quarantine_rel_epsilon": self.quarantine_rel_epsilon,
        }

    def stream_checkpoint(self, stream: int) -> Dict[str, object]:
        """One stream's state in the exact ``StreamingDetector.checkpoint``
        schema, so per-tenant recovery (``CheckpointStore`` + ``TickWAL``
        + ``StreamingDetector.from_checkpoint``) works unchanged —
        and so the equivalence suite can compare checkpoints
        byte-for-byte against mirrored single-stream detectors.

        A poisoned lane returns its frozen last-good checkpoint — the
        state captured the moment the bulkhead fired — so durable
        checkpointing keeps writing a consistent, restorable state for
        the tenant throughout the quarantine.
        """
        s = int(stream)
        if self.poisoned[s]:
            return copy.deepcopy(self._poison_checkpoints[s])
        arena = self.arena
        ai_of = arena._attr_index
        appended = int(arena.appended[s])
        size = int(arena.sizes[s])
        exact_rule = (
            self.quarantine_after is not None
            and self.quarantine_rel_epsilon is None
        )
        stuck_runs: Dict[str, int] = {}
        prev_value: Dict[str, float] = {}
        recent_values: Dict[str, List[float]] = {}
        if appended > 0 and exact_rule:
            for a in self._tracked:
                stuck_runs[a] = int(self._stuck_runs[s, ai_of[a]])
                prev_value[a] = float(self._prev_value[s, ai_of[a]])
        if appended > 0 and self._recent is not None:
            m = min(appended, self.quarantine_after)
            for a in self._tracked:
                lane = self._recent[s, ai_of[a]]
                recent_values[a] = [float(v) for v in lane[len(lane) - m :]]
        emitted = self._emitted[s]
        window_dump = None
        if appended > 0:
            view = arena.view(s)
            ts = view.timestamps
            emitted = {e for e in emitted if e >= float(ts[0])}
            self._emitted[s] = emitted
            window_dump = {
                "appended": appended,
                "numeric_attrs": list(arena.attributes),
                "categorical_attrs": [],
                "tracked": list(self._tracked),
                "timestamps": [float(t) for t in ts],
                "numeric": {
                    a: [float(v) for v in view.column(a)]
                    for a in arena.attributes
                },
                "categorical": {},
            }
        last_seen = {
            a: float(self._last_seen[s, ai_of[a]])
            for a in arena.attributes
            if self._seen[s, ai_of[a]]
        }
        return {
            "version": self.CHECKPOINT_VERSION,
            "params": self._params(),
            "tick_count": int(self.tick_counts[s]),
            "recluster_count": int(self.recluster_counts[s]),
            "dropped_ticks": int(self.dropped_counts[s]),
            "sanitized_values": int(self.sanitized_counts[s]),
            "quarantined": sorted(
                a for a in self._tracked if self.quarantined[s, ai_of[a]]
            ),
            "stuck_runs": stuck_runs,
            "recent_values": recent_values,
            "prev_value": prev_value,
            "last_seen": last_seen,
            "last_cat": {},
            "last_time": (
                float(self.last_time[s]) if self._has_time[s] else None
            ),
            "emitted_ends": sorted(emitted),
            "window": window_dump,
            "cluster_state": None,
            # ``size`` is implied: min(appended, capacity) == len(timestamps)
        }

    @classmethod
    def from_checkpoints(
        cls,
        states: Sequence[Mapping[str, object]],
        attributes: Optional[Sequence[str]] = None,
    ) -> "FleetDetector":
        """Rebuild a fleet from per-stream checkpoint dicts.

        Every state must share one parameter set (one fleet, one
        config).  Windows are replayed row-position-aligned through the
        vectorized arena — each lane's order statistics depend only on
        its own retained rows, so the restored fleet is bitwise
        equivalent to the uninterrupted one.
        """
        if not states:
            raise ValueError("from_checkpoints needs at least one state")
        for st in states:
            if st.get("version") != cls.CHECKPOINT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint version {st.get('version')!r}"
                )
        params = dict(states[0]["params"])  # type: ignore[arg-type]
        for st in states[1:]:
            if dict(st["params"]) != params:  # type: ignore[arg-type]
                raise ValueError(
                    "fleet checkpoints must share one parameter set"
                )
        if params.get("mode") != "exact":
            raise ValueError("fleet restore supports mode='exact' only")
        attrs = list(attributes) if attributes is not None else None
        if attrs is None:
            for st in states:
                win = st.get("window")
                if win is not None:
                    attrs = list(win["numeric_attrs"])  # type: ignore[index]
                    break
        if attrs is None:
            raise ValueError(
                "attributes required when no state has a window"
            )
        det = cls(
            n_streams=len(states),
            attributes=attrs,
            capacity=int(params["capacity"]),
            window=int(params["window"]),
            pp_threshold=float(params["pp_threshold"]),
            min_pts=int(params["min_pts"]),
            cluster_fraction=float(params["cluster_fraction"]),
            include_noise=bool(params["include_noise"]),
            min_region_s=float(params["min_region_s"]),
            gap_fill_s=float(params["gap_fill_s"]),
            tracked=params.get("attributes"),
            recluster_fraction=float(params["recluster_fraction"]),
            bounds_drift=float(params["bounds_drift"]),
            quarantine_after=params.get("quarantine_after"),
            quarantine_rel_epsilon=params.get("quarantine_rel_epsilon"),
        )
        S, A = det.n_streams, len(det.arena.attributes)
        ai_of = det.arena._attr_index
        n_rows = np.zeros(S, dtype=np.int64)
        base = np.zeros(S, dtype=np.int64)
        for s, st in enumerate(states):
            win = st.get("window")
            if win is not None:
                n_rows[s] = len(win["timestamps"])  # type: ignore[index]
                base[s] = int(win["appended"]) - n_rows[s]  # type: ignore[index]
        det.arena.appended[:] = base
        max_rows = int(n_rows.max()) if S else 0
        for r in range(max_rows):
            active = n_rows > r
            times = np.zeros(S)
            vals = np.zeros((S, A))
            for s in np.nonzero(active)[0]:
                win = states[s]["window"]  # type: ignore[index]
                times[s] = float(win["timestamps"][r])
                for a in det.arena.attributes:
                    vals[s, ai_of[a]] = float(win["numeric"][a][r])
            det.arena.append(times, vals, active)
        for s, st in enumerate(states):
            det.tick_counts[s] = int(st["tick_count"])
            det.recluster_counts[s] = int(st["recluster_count"])
            det.dropped_counts[s] = int(st["dropped_ticks"])
            det.sanitized_counts[s] = int(st["sanitized_values"])
            for a in st["quarantined"]:  # type: ignore[union-attr]
                det.quarantined[s, ai_of[a]] = True
            for a, v in dict(st["stuck_runs"]).items():  # type: ignore[arg-type]
                det._stuck_runs[s, ai_of[a]] = int(v)
            for a, v in dict(st["prev_value"]).items():  # type: ignore[arg-type]
                det._prev_value[s, ai_of[a]] = float(v)
            if det._recent is not None:
                for a, vals_list in dict(
                    st.get("recent_values", {})  # type: ignore[arg-type]
                ).items():
                    m = len(vals_list)
                    if m:
                        det._recent[s, ai_of[a], -m:] = [
                            float(v) for v in vals_list
                        ]
            for a, v in dict(st["last_seen"]).items():  # type: ignore[arg-type]
                det._last_seen[s, ai_of[a]] = float(v)
                det._seen[s, ai_of[a]] = True
            lt = st.get("last_time")
            if lt is not None:
                det.last_time[s] = float(lt)
                det._has_time[s] = True
            det._emitted[s] = {float(e) for e in st["emitted_ends"]}  # type: ignore[union-attr]
        return det
