"""Fleet health model: per-tenant states, circuit breakers, recovery.

The containment layer's bookkeeping.  A tenant is always in exactly one
of four **health states**:

``healthy``
    Full service: vectorized detection plus queued diagnosis.
``degraded``
    Detection is intact but diagnosis fell back — a soft deadline
    produced a cached-models-only ranking, or jobs are retrying.
``quarantined``
    The tenant's detection lane is poisoned
    (:attr:`~repro.fleet.engine.FleetDetector.poisoned`): its last-good
    checkpoint is frozen, offered rows are skipped, and verdicts
    abstain.  Other lanes are bitwise-unaffected.
``ejected``
    The tenant's circuit breaker is open: repeated diagnosis failures
    (or hard-deadline sheds) evicted it from the diagnosis pool until a
    cooldown elapses and a probe job succeeds.

Transitions are journaled (JSON lines, append-only) into the tenant's
durable directory next to its WAL when one exists, so an operator can
reconstruct *when* and *why* a tenant left full service even after the
process died.  :class:`RecoveryReport` is the skip-and-report outcome of
:meth:`~repro.fleet.scheduler.FleetScheduler.recover`: per-tenant
``recovered`` / ``missing`` / ``corrupt`` / ``replay_failed`` verdicts
instead of one tenant's torn checkpoint aborting the whole fleet.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.faults import fs as _fs
from repro.obs import metrics

__all__ = [
    "HEALTH_STATES",
    "CircuitBreaker",
    "HealthTracker",
    "RecoveryReport",
    "TenantRecovery",
    "read_health_journal",
]

#: The health-state ladder, in increasing order of lost service.
HEALTH_STATES = ("healthy", "degraded", "quarantined", "ejected")
_STATE_CODE = {name: code for code, name in enumerate(HEALTH_STATES)}

#: Breaker states, exported as gauge codes: 0 closed, 1 half-open, 2 open.
_BREAKER_CODE = {"closed": 0, "half_open": 1, "open": 2}

_TENANT_HEALTH = metrics.REGISTRY.gauge(
    "repro_fleet_tenant_health",
    "Per-tenant health state (0 healthy, 1 degraded, 2 quarantined, "
    "3 ejected)",
    labelnames=("tenant",),
)
_HEALTH_TRANSITIONS = metrics.REGISTRY.counter(
    "repro_fleet_health_transitions_total",
    "Health-state transitions, labeled by the state entered",
    labelnames=("state",),
)
_BREAKER_STATE = metrics.REGISTRY.gauge(
    "repro_fleet_breaker_state",
    "Per-tenant circuit-breaker state (0 closed, 1 half-open, 2 open)",
    labelnames=("tenant",),
)
_BREAKER_OPENS = metrics.REGISTRY.counter(
    "repro_fleet_breaker_opens_total",
    "Circuit-breaker open events (tenant ejected from the diagnosis pool)",
)
_BREAKER_READMITS = metrics.REGISTRY.counter(
    "repro_fleet_breaker_readmits_total",
    "Circuit breakers closed again after a successful half-open probe",
)


class CircuitBreaker:
    """One tenant's diagnosis circuit breaker (closed → open → half-open).

    Deterministic and jitterless: failures are counted consecutively and
    the cooldown is measured in *scheduler rounds*, not wall time, so a
    replayed fleet takes identical transitions.  Thread-safe — failures
    and successes arrive from diagnosis workers while admissions are
    decided on the tick thread.

    * ``closed``: jobs flow; ``failure_threshold`` consecutive terminal
      failures open the breaker.
    * ``open``: every job is rejected (shed) until ``cooldown_rounds``
      rounds have passed since opening.
    * ``half_open``: exactly one probe job is admitted; success closes
      the breaker (readmission), failure reopens it with a fresh
      cooldown.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown_rounds: int = 8
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_rounds < 1:
            raise ValueError("cooldown_rounds must be at least 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_rounds = int(cooldown_rounds)
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_round: Optional[int] = None
        self.opens = 0
        self._probe_in_flight = False

    def admit(self, round_no: int) -> str:
        """Admission verdict for one job: ``admit`` | ``probe`` | ``reject``."""
        with self._lock:
            if self.state == "closed":
                return "admit"
            if self.state == "open":
                assert self.opened_round is not None
                if round_no - self.opened_round >= self.cooldown_rounds:
                    self.state = "half_open"
                    self._probe_in_flight = True
                    return "probe"
                return "reject"
            # half_open: one probe at a time
            if self._probe_in_flight:
                return "reject"
            self._probe_in_flight = True
            return "probe"

    def record_failure(self, round_no: int) -> bool:
        """Count one terminal failure; True when the breaker (re)opens."""
        with self._lock:
            if self.state == "half_open":
                # the probe failed: straight back to open, fresh cooldown
                self.state = "open"
                self.opened_round = int(round_no)
                self.opens += 1
                self._probe_in_flight = False
                return True
            if self.state == "open":
                return False
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self.state = "open"
                self.opened_round = int(round_no)
                self.opens += 1
                return True
            return False

    def record_success(self) -> bool:
        """Count one published diagnosis; True when a probe readmitted."""
        with self._lock:
            self.consecutive_failures = 0
            if self.state == "half_open":
                self.state = "closed"
                self.opened_round = None
                self._probe_in_flight = False
                return True
            return False

    @property
    def code(self) -> int:
        return _BREAKER_CODE[self.state]


@dataclass
class TenantRecovery:
    """One tenant's outcome inside a :class:`RecoveryReport`."""

    tenant: str
    #: ``recovered`` | ``missing`` | ``corrupt`` | ``replay_failed``
    status: str
    replayed_ticks: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "status": self.status,
            "replayed_ticks": self.replayed_ticks,
            "detail": self.detail,
        }


@dataclass
class RecoveryReport:
    """Per-tenant outcome of a partial fleet recovery."""

    outcomes: List[TenantRecovery] = field(default_factory=list)

    def _named(self, status: str) -> List[str]:
        return [o.tenant for o in self.outcomes if o.status == status]

    @property
    def recovered(self) -> List[str]:
        return self._named("recovered")

    @property
    def missing(self) -> List[str]:
        return self._named("missing")

    @property
    def corrupt(self) -> List[str]:
        return self._named("corrupt")

    @property
    def failed(self) -> List[str]:
        return self._named("replay_failed")

    @property
    def skipped(self) -> List[str]:
        """Every tenant that did not recover cleanly."""
        return [o.tenant for o in self.outcomes if o.status != "recovered"]

    def outcome(self, tenant: str) -> Optional[TenantRecovery]:
        for o in self.outcomes:
            if o.tenant == tenant:
                return o
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "recovered": self.recovered,
            "missing": self.missing,
            "corrupt": self.corrupt,
            "replay_failed": self.failed,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


class HealthTracker:
    """Per-tenant health states and circuit breakers for one fleet.

    Owned by the :class:`~repro.fleet.scheduler.FleetScheduler`; the
    scheduler reports events (lane poisoned, deadline missed, breaker
    opened/closed) and the tracker keeps the authoritative state, the
    labeled gauges, and — for tenants with a durable directory — an
    append-only JSON-lines journal at ``<root>/<tenant>/health.log``.
    """

    JOURNAL_NAME = "health.log"

    def __init__(
        self,
        tenants: Sequence[str],
        root_dir: Optional[Union[str, Path]] = None,
        durable: Sequence[str] = (),
        label_metrics: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_rounds: int = 8,
    ) -> None:
        self.tenants = list(tenants)
        self.label_metrics = bool(label_metrics)
        self.root_dir = Path(root_dir) if root_dir is not None else None
        self._durable = set(durable)
        self._lock = threading.Lock()
        self._states: Dict[str, str] = {t: "healthy" for t in self.tenants}
        self._reasons: Dict[str, str] = {}
        self.breakers: Dict[str, CircuitBreaker] = {
            t: CircuitBreaker(breaker_threshold, breaker_cooldown_rounds)
            for t in self.tenants
        }
        self._journals: Dict[str, object] = {}
        self.transitions = 0
        #: Optional observer called after every journaled transition as
        #: ``hook(tenant, previous, state, reason, round_no)``; the
        #: scheduler uses it to trigger incident-bundle snapshots.
        self.transition_hook = None

    # ------------------------------------------------------------------
    def state(self, tenant: str) -> str:
        return self._states[tenant]

    def reason(self, tenant: str) -> str:
        return self._reasons.get(tenant, "")

    def counts(self) -> Dict[str, int]:
        """How many tenants sit in each health state."""
        out = {name: 0 for name in HEALTH_STATES}
        with self._lock:
            for state in self._states.values():
                out[state] += 1
        return out

    def set_state(
        self,
        tenant: str,
        state: str,
        reason: str = "",
        round_no: Optional[int] = None,
    ) -> bool:
        """Transition *tenant* to *state*; True when it actually changed."""
        if state not in _STATE_CODE:
            raise ValueError(f"unknown health state {state!r}")
        with self._lock:
            previous = self._states[tenant]
            if previous == state:
                return False
            self._states[tenant] = state
            self._reasons[tenant] = reason
            self.transitions += 1
        _HEALTH_TRANSITIONS.labels(state=state).inc()
        if self.label_metrics:
            _TENANT_HEALTH.labels(tenant=tenant).set(_STATE_CODE[state])
        self._journal(
            tenant,
            {
                "tenant": tenant,
                "from": previous,
                "to": state,
                "reason": reason,
                "round": round_no,
            },
        )
        hook = self.transition_hook
        if hook is not None:
            # Forensics must never break a health transition.
            try:
                hook(tenant, previous, state, reason, round_no)
            except Exception:
                pass
        return True

    # ------------------------------------------------------------------
    # Breaker event plumbing (called by the scheduler)
    # ------------------------------------------------------------------
    def breaker_failure(self, tenant: str, round_no: int) -> bool:
        """Record a terminal diagnosis failure; True when breaker opened."""
        opened = self.breakers[tenant].record_failure(round_no)
        if opened:
            _BREAKER_OPENS.inc()
            self.set_state(
                tenant, "ejected", reason="breaker open", round_no=round_no
            )
        self._export_breaker(tenant)
        return opened

    def breaker_success(
        self, tenant: str, round_no: Optional[int] = None
    ) -> bool:
        """Record a published diagnosis; True when a probe readmitted."""
        readmitted = self.breakers[tenant].record_success()
        if readmitted:
            _BREAKER_READMITS.inc()
            self.set_state(
                tenant,
                "healthy",
                reason="probe succeeded",
                round_no=round_no,
            )
        self._export_breaker(tenant)
        return readmitted

    def breaker_admit(self, tenant: str, round_no: int) -> str:
        verdict = self.breakers[tenant].admit(round_no)
        self._export_breaker(tenant)
        return verdict

    def _export_breaker(self, tenant: str) -> None:
        if self.label_metrics:
            _BREAKER_STATE.labels(tenant=tenant).set(
                self.breakers[tenant].code
            )

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _journal(self, tenant: str, record: Dict[str, object]) -> None:
        if self.root_dir is None or tenant not in self._durable:
            return
        # A sick disk must never turn a health transition into an
        # exception — the in-memory state is authoritative; a journal
        # write that fails is counted and dropped.
        try:
            handle = self._journals.get(tenant)
            if handle is None:
                path = self.root_dir / tenant / self.JOURNAL_NAME
                path.parent.mkdir(parents=True, exist_ok=True)
                handle = path.open("a", encoding="utf-8")
                self._journals[tenant] = handle
            _fs.get_fs().write(
                handle, json.dumps(record, sort_keys=True) + "\n"
            )
            handle.flush()
        except OSError:
            _fs.count_write_error()

    def close(self) -> None:
        for handle in self._journals.values():
            try:
                handle.close()  # type: ignore[union-attr]
            except OSError:
                _fs.count_write_error()
        self._journals.clear()


def read_health_journal(
    root_dir: Union[str, Path], tenant: str
) -> List[Dict[str, object]]:
    """Replay one tenant's health journal (torn-tail tolerant)."""
    path = Path(root_dir) / tenant / HealthTracker.JOURNAL_NAME
    if not path.exists():
        return []
    # Read through the storage shim so injected read corruption hits
    # this path too; a corrupt prefix parses, the rest is dropped.
    try:
        text = _fs.get_fs().read_text(path)
    except OSError:
        _fs.count_read_error()
        return []
    records: List[Dict[str, object]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            break  # torn tail: stop at the first unparsable record
        if not isinstance(record, dict):
            break
        records.append(record)
    return records
