"""Multi-tenant fleet scheduler: ingest, diagnose, shed, recover.

:class:`FleetScheduler` multiplexes N tenants' tick streams over one
:class:`~repro.fleet.engine.FleetDetector` plus a bounded diagnosis
worker pool.  The split follows the runner/scheduler template from
SNIPPETS.md: the *engine* is synchronous and vectorized (every tenant
advances one tick per round), while *diagnosis* — the expensive, rare
fallout when a closed abnormal region needs a DBSherlock explanation —
is decoupled behind a queue with explicit backpressure:

* ``max_pending`` bounds the in-flight diagnosis jobs;
* when ingest outruns diagnosis, the configured **shed policy** decides
  who pays: ``"drop_oldest"`` cancels the stalest queued job,
  ``"reject_new"`` refuses the incoming one, ``"block"`` applies
  backpressure to the tick loop (no shedding, slower rounds);
* one shared :class:`~repro.core.causal.CausalModelStore` (inside the
  shared ``DBSherlock`` facade) serves the whole fleet, so a cause
  learned from one tenant immediately ranks for every other.

Durability is per tenant: tenants listed in *durable* get their own
WAL/checkpoint directory (``root_dir/<tenant>/``) using the exact
single-stream formats (:class:`~repro.stream.wal.TickWAL`,
:class:`~repro.stream.wal.CheckpointStore`,
``StreamingDetector.checkpoint`` schema), so a crashed fleet recovers
tenant state with :meth:`FleetScheduler.recover` — or any single tenant
can be peeled off into a plain
:class:`~repro.stream.supervisor.StreamSupervisor` without conversion.

Per-tenant observability (lag, sheds, verdicts, tick latency) lands in
the process metrics registry as labeled families
(``repro_fleet_tenant_*{tenant="..."}``); ``label_metrics=False`` keeps
the registry small for 10k-tenant benchmark runs.

**Failure containment.**  Diagnosis failures never vanish: a worker
exception retries each job individually on a jitterless exponential
backoff (the single-stream supervisor's schedule) and, past
``max_retries``, lands in ``repro_fleet_diagnosis_failures_total`` and
``SchedulerReport.diagnosis_failures``.  Optional per-job deadlines add
two tiers: past ``soft_deadline_s`` the batch is settled with a
*degraded* cached-models-only ranking (``CausalModelStore.rank``
against the sharded labeled-space cache, no predicate generation);
past ``hard_deadline_s`` it is abandoned and shed.  A per-tenant
circuit breaker (:class:`~repro.fleet.health.CircuitBreaker`) ejects
tenants whose diagnoses keep failing or hanging so one hostile tenant
cannot starve the pool, and readmits them via a half-open probe.  All
of it is tracked by :class:`~repro.fleet.health.HealthTracker` and
rendered by ``repro-sherlock fleet status``.
"""

from __future__ import annotations

import threading
import time as _time
import zlib
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.data.regions import Region, RegionSpec
from repro.fleet.engine import FleetDetector, FleetTick
from repro.fleet.health import HealthTracker, RecoveryReport, TenantRecovery
from repro.obs import metrics
from repro.obs import trace
from repro.stream.durability import TenantDurability
from repro.stream.wal import (
    DEFAULT_SEGMENT_BYTES,
    CheckpointStore,
    TickWAL,
)

__all__ = ["FleetScheduler", "SchedulerReport", "SHED_POLICIES"]

SHED_POLICIES = ("drop_oldest", "reject_new", "block")

_SCHED_ROUNDS = metrics.REGISTRY.counter(
    "repro_fleet_rounds_total", "Fleet scheduler rounds driven"
)
_SCHED_SHED = metrics.REGISTRY.counter(
    "repro_fleet_shed_total", "Diagnosis jobs shed under backpressure"
)
_SCHED_DIAGNOSES = metrics.REGISTRY.counter(
    "repro_fleet_diagnoses_total", "Diagnosis jobs completed"
)
_SCHED_CHECKPOINTS = metrics.REGISTRY.counter(
    "repro_fleet_checkpoints_total", "Durable per-tenant checkpoints taken"
)
_TENANT_LAG = metrics.REGISTRY.gauge(
    "repro_fleet_tenant_lag",
    "Queued (undiagnosed) closed regions per tenant",
    labelnames=("tenant",),
)
_TENANT_SHED = metrics.REGISTRY.counter(
    "repro_fleet_tenant_shed_total",
    "Diagnosis jobs shed per tenant",
    labelnames=("tenant",),
)
_TENANT_VERDICTS = metrics.REGISTRY.counter(
    "repro_fleet_tenant_verdicts_total",
    "Per-round detection verdicts per tenant",
    labelnames=("tenant", "verdict"),
)
_TENANT_TICK_SECONDS = metrics.REGISTRY.histogram(
    "repro_fleet_tenant_tick_seconds",
    "Tick-to-verdict latency per tenant",
    buckets=metrics.FINE_BUCKETS,
    labelnames=("tenant",),
)
_DIAG_LOCK_WAIT_MS = metrics.REGISTRY.histogram(
    "repro_fleet_diagnosis_lock_wait_ms",
    "Time a diagnosis batch waited on the striped explain locks",
    buckets=metrics.MS_BUCKETS,
)
_DIAG_FAILURES = metrics.REGISTRY.counter(
    "repro_fleet_diagnosis_failures_total",
    "Diagnosis jobs that failed terminally (retries exhausted)",
    labelnames=("tenant",),
)
_DIAG_RETRIES = metrics.REGISTRY.counter(
    "repro_fleet_diagnosis_retries_total",
    "Diagnosis jobs requeued on the backoff schedule after a failure",
)
_DEADLINE_MISSES = metrics.REGISTRY.counter(
    "repro_fleet_deadline_misses_total",
    "Diagnosis deadline misses by tier (soft = degraded, hard = shed)",
    labelnames=("tier",),
)
_DEGRADED_RANKINGS = metrics.REGISTRY.counter(
    "repro_fleet_degraded_rankings_total",
    "Soft-deadline fallbacks served as cached-models-only rankings",
)
_WAL_BYTES = metrics.REGISTRY.gauge(
    "repro_fleet_wal_bytes",
    "Retained WAL bytes per durable tenant (poisoned lanes included)",
    labelnames=("tenant",),
)
_WAL_BYTES_TOTAL = metrics.REGISTRY.gauge(
    "repro_fleet_wal_bytes_total",
    "Retained WAL bytes summed across all durable tenants",
)


@dataclass
class SchedulerReport:
    """Aggregate outcome of the rounds driven so far."""

    rounds: int = 0
    stream_ticks: int = 0
    diagnoses: int = 0
    shed: int = 0
    shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    checkpoints: int = 0
    abnormal_verdicts: int = 0
    closed_regions: int = 0
    #: jobs whose diagnosis failed terminally (retries exhausted).
    diagnosis_failures: int = 0
    failures_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: jobs requeued on the backoff schedule after a worker failure.
    retries: int = 0
    #: soft + hard deadline misses (each tier counts per job).
    deadline_misses: int = 0
    #: soft-deadline fallbacks published as cached-models-only rankings.
    degraded_rankings: int = 0
    breaker_opens: int = 0
    breaker_readmits: int = 0


@dataclass
class _PendingJob:
    tenant: str
    stream: int
    region: Region
    #: window snapshot taken at enqueue time (regions refer to it).
    dataset: object = None
    #: worker failures so far (drives the backoff schedule).
    attempts: int = 0
    #: admitted as the single half-open circuit-breaker probe.
    probe: bool = False


@dataclass
class _PendingBatch:
    """One submitted diagnosis unit: ≤ ``diagnose_jobs`` fused jobs.

    Exactly one party may *settle* a batch — the worker (publish or
    retry/fail) or the deadline enforcer on the tick thread (degrade or
    abandon).  :meth:`try_settle` is the compare-and-swap that decides
    the race; the loser discards its result.
    """

    jobs: List[_PendingJob]
    ticket: int
    future: Optional[Future] = None
    submitted_at: float = 0.0
    #: hard-deadline accounting already done for this batch.
    hard_counted: bool = False
    _settled: bool = field(default=False, repr=False)
    _settle_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def try_settle(self) -> bool:
        with self._settle_lock:
            if self._settled:
                return False
            self._settled = True
            return True

    def mark_hard_counted(self) -> bool:
        """CAS for hard-tier accounting: True exactly once per batch."""
        with self._settle_lock:
            if self.hard_counted:
                return False
            self.hard_counted = True
            return True


class _Sequencer:
    """Globally-FIFO publication of diagnosis results.

    Batches run concurrently, but their results are appended to
    ``FleetScheduler.diagnoses`` strictly in submission-ticket order, so
    per-tenant verdict order is monotone no matter how the pool
    interleaves.  :meth:`publish` parks a finished batch until its turn
    and runs the sink under the sequencer's own lock (two batches can
    never interleave their appends); :meth:`skip` retires a cancelled
    ticket without blocking the caller.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next_issue = 0
        self._next_publish = 0
        self._skipped: Set[int] = set()

    def issue(self) -> int:
        with self._cond:
            ticket = self._next_issue
            self._next_issue += 1
            return ticket

    def _advance_over_skipped(self) -> None:
        while self._next_publish in self._skipped:
            self._skipped.discard(self._next_publish)
            self._next_publish += 1

    def publish(self, ticket: int, sink) -> None:
        with self._cond:
            while self._next_publish != ticket:
                self._cond.wait()
            try:
                sink()
            finally:
                self._next_publish += 1
                self._advance_over_skipped()
                self._cond.notify_all()

    def skip(self, ticket: int) -> None:
        with self._cond:
            self._skipped.add(ticket)
            self._advance_over_skipped()
            self._cond.notify_all()


def _fresh_lane_state(params: Dict[str, object]) -> Dict[str, object]:
    """An empty-lane checkpoint for a tenant skipped during recovery.

    Shares the fleet's parameter set (``from_checkpoints`` requires
    one config per fleet) but carries no window, counters, or emitted
    regions — the tenant restarts from scratch.
    """
    import copy as _copy

    return {
        "version": FleetDetector.CHECKPOINT_VERSION,
        "params": _copy.deepcopy(params),
        "tick_count": 0,
        "recluster_count": 0,
        "dropped_ticks": 0,
        "sanitized_values": 0,
        "quarantined": [],
        "stuck_runs": {},
        "recent_values": {},
        "prev_value": {},
        "last_seen": {},
        "last_cat": {},
        "last_time": None,
        "emitted_ends": [],
        "window": None,
        "cluster_state": None,
    }


class FleetScheduler:
    """Drive a :class:`FleetDetector` with bounded diagnosis fallout.

    Parameters
    ----------
    detector:
        The fleet engine to drive.
    tenants:
        One name per stream (defaults to ``t0000..``); names label the
        per-tenant metrics and the WAL/checkpoint directories.
    sherlock:
        Shared ``DBSherlock`` facade (one ``CausalModelStore`` for the
        whole fleet).  ``None`` disables diagnosis — closed regions are
        still reported, just not explained.
    root_dir / durable:
        Durability root and the subset of tenant names that write a WAL
        and periodic checkpoints there (default: none).
    diagnose_jobs:
        Diagnosis parallelism: both the worker-thread count of the pool
        and the fused batch size — up to this many closed regions are
        diagnosed as one ``DBSherlock.explain_batch`` call.  The shared
        labeled-space cache is lock-striped, so concurrent batches only
        serialize when their tenants hash to the same explain stripe
        (wait time lands in ``repro_fleet_diagnosis_lock_wait_ms``).
    max_pending / shed_policy:
        Backpressure bound and policy (see module docstring).
    checkpoint_every:
        Rounds between durable checkpoints (0 disables).
    label_metrics:
        Emit per-tenant labeled metric families.  Disable for very
        large fleets where per-tenant registry children would dominate
        the round cost.
    soft_deadline_s / hard_deadline_s:
        Per-job diagnosis deadlines (``None`` disables a tier).  Past
        the soft deadline a batch is settled with a degraded
        cached-models-only ranking; past the hard deadline it is
        abandoned and its jobs shed.  Python threads cannot be killed,
        so the abandoned worker keeps running and its late result is
        discarded — the hard tier frees the *queue*, not the thread.
    max_retries / backoff_s / backoff_factor / max_backoff_s:
        Retry schedule for worker failures — each failed job is
        requeued individually (isolating a poison job fused into a
        batch) after ``min(backoff_s * factor**(attempt-1),
        max_backoff_s)`` seconds, deterministically, no jitter.
    breaker_threshold / breaker_cooldown_rounds:
        Per-tenant circuit breaker: consecutive terminal failures to
        open, and scheduler rounds before a half-open probe.
    wal_segment_bytes / max_wal_bytes_per_tenant:
        WAL segment size and the per-tenant retained-bytes cap applied
        at every checkpoint via whole-segment compaction — this is what
        bounds a poisoned lane's kept-for-replay log.
    storage_retries / storage_backoff_s / storage_probe_every /
    max_volatile_ticks:
        Per-tenant durability policy (see
        :class:`~repro.stream.durability.TenantDurability`): transient
        I/O errors retry with bounded backoff; exhaustion drops the
        tenant into degraded in-memory persistence (acknowledged but
        volatile, bounded buffer) with automatic re-promotion when a
        probe finds the disk healed.  Degrade/re-promote transitions
        surface through :class:`HealthTracker` with ``storage:``
        reasons and the durability column of ``fleet status``.
    """

    def __init__(
        self,
        detector: FleetDetector,
        tenants: Optional[Sequence[str]] = None,
        sherlock=None,
        root_dir: Optional[Union[str, Path]] = None,
        durable: Sequence[str] = (),
        diagnose_jobs: int = 2,
        max_pending: int = 64,
        shed_policy: str = "drop_oldest",
        checkpoint_every: int = 0,
        label_metrics: bool = True,
        fsync_every: int = 8,
        soft_deadline_s: Optional[float] = None,
        hard_deadline_s: Optional[float] = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 2.0,
        breaker_threshold: int = 3,
        breaker_cooldown_rounds: int = 8,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_wal_bytes_per_tenant: int = 8 * 1024 * 1024,
        storage_retries: int = 2,
        storage_backoff_s: float = 0.01,
        storage_probe_every: int = 8,
        max_volatile_ticks: int = 4096,
        flight=None,
        incidents=None,
        incident_capture_rounds: int = 4,
        timeline_every: int = 4,
    ) -> None:
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if diagnose_jobs < 1:
            raise ValueError("diagnose_jobs must be at least 1")
        if (
            soft_deadline_s is not None
            and hard_deadline_s is not None
            and hard_deadline_s < soft_deadline_s
        ):
            raise ValueError("hard_deadline_s must be >= soft_deadline_s")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        S = detector.n_streams
        self.detector = detector
        self.tenants = (
            list(tenants)
            if tenants is not None
            else [f"t{idx:04d}" for idx in range(S)]
        )
        if len(self.tenants) != S:
            raise ValueError(
                f"{len(self.tenants)} tenant names for {S} streams"
            )
        if len(set(self.tenants)) != S:
            raise ValueError("tenant names must be unique")
        self.sherlock = sherlock
        self.shed_policy = shed_policy
        self.max_pending = int(max_pending)
        self.checkpoint_every = int(checkpoint_every)
        self.label_metrics = bool(label_metrics)
        self._stream_of = {name: s for s, name in enumerate(self.tenants)}
        durable = list(durable)
        unknown = [name for name in durable if name not in self._stream_of]
        if unknown:
            raise ValueError(f"unknown durable tenants: {unknown}")
        if durable and root_dir is None:
            raise ValueError("durable tenants need a root_dir")
        self.root_dir = Path(root_dir) if root_dir is not None else None
        self._durable: Set[str] = set(durable)
        self.max_wal_bytes_per_tenant = int(max_wal_bytes_per_tenant)
        self._wals: Dict[str, TickWAL] = {}
        self._ckpts: Dict[str, CheckpointStore] = {}
        self._durability: Dict[str, TenantDurability] = {}
        for name in durable:
            tenant_dir = self.root_dir / name  # type: ignore[operator]
            self._wals[name] = TickWAL(
                tenant_dir / "ticks.wal",
                fsync_every=fsync_every,
                segment_bytes=wal_segment_bytes,
            )
            self._ckpts[name] = CheckpointStore(tenant_dir / "checkpoint.json")
            self._durability[name] = TenantDurability(
                name,
                self._wals[name],
                self._ckpts[name],
                max_retries=storage_retries,
                backoff_s=storage_backoff_s,
                probe_every=storage_probe_every,
                max_volatile_ticks=max_volatile_ticks,
                on_transition=self._make_durability_callback(name),
                label_metrics=label_metrics,
            )
        self._pool = ThreadPoolExecutor(
            max_workers=int(diagnose_jobs),
            thread_name_prefix="fleet-diagnose",
        )
        self._batch_size = int(diagnose_jobs)
        # crc32, not hash(): stable across PYTHONHASHSEED so stripe
        # assignment (and thus contention behavior) is reproducible.
        self._n_stripes = 16
        self._explain_locks = tuple(
            threading.Lock() for _ in range(self._n_stripes)
        )
        self._sequencer = _Sequencer()
        self._buffer: List[_PendingJob] = []
        self._pending: Deque[_PendingBatch] = deque()
        self._lag = np.zeros(S, dtype=np.int64)
        #: ``(tenant, region, explanation)`` triples, completion order.
        self.diagnoses: List[Tuple[str, Region, object]] = []
        self._diagnoses_lock = threading.Lock()
        self.report = SchedulerReport()
        #: p99 source: per-stream verdict latencies from recent rounds.
        self._latencies: List[np.ndarray] = []
        self.soft_deadline_s = soft_deadline_s
        self.hard_deadline_s = hard_deadline_s
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.max_backoff_s = float(max_backoff_s)
        #: (not_before monotonic, job) — drained by the tick thread.
        self._retry: List[Tuple[float, _PendingJob]] = []
        self._retry_lock = threading.Lock()
        #: settled-by-enforcer batches whose worker is still running.
        self._zombies: List[_PendingBatch] = []
        self.health = HealthTracker(
            self.tenants,
            root_dir=self.root_dir,
            durable=durable,
            label_metrics=self.label_metrics,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_rounds=breaker_cooldown_rounds,
        )
        #: set by :meth:`recover` — per-tenant recovery outcomes.
        self.recovery_report: Optional[RecoveryReport] = None
        # ---- flight recorder + incident forensics -------------------
        self.flight = flight
        self.incidents = incidents
        self.incident_capture_rounds = max(0, int(incident_capture_rounds))
        self.timeline_every = max(1, int(timeline_every))
        self.timeline = None
        self._flight_installed = False
        #: tenant → trigger reasons noted since the last end_round; also
        #: guards the incident queue (workers and the durability/health
        #: hooks append off the tick thread).
        self._flight_lock = threading.Lock()
        self._round_interest: Dict[str, List[str]] = {}
        self._incident_queue: List[List[object]] = []
        self._incident_queued: Set[str] = set()
        if flight is not None or incidents is not None:
            self.timeline = metrics.REGISTRY.timeline("fleet")
            self.health.transition_hook = self._on_health_transition
        if flight is not None and trace.get_recorder() is None:
            # Tail sampling is only worth it when no full recorder is
            # already capturing everything.
            trace.install(flight)
            self._flight_installed = True
        if incidents is not None:
            incidents.attach(
                flight=flight,
                timeline=self.timeline,
                journal_root=self.root_dir,
            )

    # ------------------------------------------------------------------
    def _make_durability_callback(self, tenant: str):
        """Health-journal hook for one tenant's durability transitions.

        Storage-degraded is deliberately conservative about the health
        ladder: it only moves a *healthy* tenant to ``degraded`` (a
        quarantined or ejected tenant already lost more service than
        volatile persistence costs), and re-promotion only restores
        ``healthy`` when the degradation it is undoing was storage's —
        it must not mask a diagnosis-deadline degradation.
        """

        def on_transition(mode: str, reason: str) -> None:
            round_no = self.report.rounds
            self._note_interest(tenant, f"durability:{mode}")
            if mode == "degraded":
                self._queue_incident(
                    tenant, f"durability degraded: {reason}", round_no
                )
                if self.health.state(tenant) == "healthy":
                    self.health.set_state(
                        tenant,
                        "degraded",
                        reason=f"storage: {reason}",
                        round_no=round_no,
                    )
            else:
                if self.health.state(tenant) == "degraded" and self.health.reason(
                    tenant
                ).startswith("storage:"):
                    self.health.set_state(
                        tenant,
                        "healthy",
                        reason="storage: disk healed",
                        round_no=round_no,
                    )

        return on_transition

    def durability_mode(self, tenant: str) -> Optional[str]:
        """``"durable"`` / ``"degraded"``, or None for volatile tenants."""
        managed = self._durability.get(tenant)
        return managed.mode if managed is not None else None

    # ------------------------------------------------------------------
    # Flight recorder + incident forensics
    # ------------------------------------------------------------------
    def _note_interest(self, tenant: str, reason: str) -> None:
        """Mark this round interesting for *tenant* (any thread)."""
        if self.flight is None and self.incidents is None:
            return
        with self._flight_lock:
            reasons = self._round_interest.setdefault(tenant, [])
            if reason not in reasons:
                reasons.append(reason)

    def _queue_incident(
        self, tenant: str, reason: str, round_no: int
    ) -> None:
        """Schedule an incident snapshot for *tenant* (any thread).

        The snapshot is deferred ``incident_capture_rounds`` rounds so
        the bundle's timeline window includes post-trigger samples —
        the step the diagnosis needs to see.  One in-flight snapshot
        per tenant; the recorder's own rate limiter handles repeats.
        """
        if self.incidents is None:
            return
        with self._flight_lock:
            if tenant in self._incident_queued:
                return
            self._incident_queued.add(tenant)
            self._incident_queue.append(
                [
                    tenant,
                    reason,
                    int(round_no),
                    int(round_no) + self.incident_capture_rounds,
                ]
            )

    def _on_health_transition(
        self,
        tenant: str,
        previous: str,
        state: str,
        reason: str,
        round_no: Optional[int],
    ) -> None:
        """HealthTracker hook: health transitions are always interesting."""
        self._note_interest(tenant, f"health:{state}")
        if state in ("degraded", "quarantined", "ejected"):
            self._queue_incident(
                tenant,
                f"{state}: {reason}" if reason else state,
                round_no if round_no is not None else self.report.rounds,
            )

    def _collect_interest(self, tick: FleetTick) -> Dict[str, List[str]]:
        """Drain the round's trigger reasons, folding in tick outcomes."""
        with self._flight_lock:
            interest = self._round_interest
            self._round_interest = {}
        for s, res in tick.results.items():
            if res.regions:
                reasons = interest.setdefault(self.tenants[int(s)], [])
                if "verdict" not in reasons:
                    reasons.append("verdict")
        for s in tick.closed:
            reasons = interest.setdefault(self.tenants[int(s)], [])
            if "region_closed" not in reasons:
                reasons.append("region_closed")
        for s in tick.lane_errors:
            reasons = interest.setdefault(self.tenants[int(s)], [])
            if "lane_poisoned" not in reasons:
                reasons.append("lane_poisoned")
        return interest

    def _finish_flight_round(
        self, tick: FleetTick, latency_s: Optional[float], round_no: int
    ) -> None:
        interest = self._collect_interest(tick)
        if self.flight is not None:
            self.flight.end_round(interest, latency_s=latency_s)
        if (
            self.timeline is not None
            and self.report.rounds % self.timeline_every == 0
        ):
            # stamp samples with the fleet round number: incident
            # bundles can then anchor their abnormal region exactly at
            # the trigger round instead of guessing a trailing window
            self.timeline.sample(t=float(round_no))
        self._flush_incidents()

    def _incident_context(self, tenant: str) -> Dict[str, object]:
        """Point-in-time tenant state frozen into an incident bundle."""
        context: Dict[str, object] = {
            "health": {
                "state": self.health.state(tenant),
                "reason": self.health.reason(tenant),
            },
            "breaker": self.health.breakers[tenant].state,
            "round": self.report.rounds,
        }
        managed = self._durability.get(tenant)
        if managed is not None:
            context["durability"] = {
                "mode": managed.mode,
                "reason": managed.degraded_reason,
            }
        wal = self._wals.get(tenant)
        if wal is not None:
            try:
                segment, offset = wal.durable_position()
                context["wal"] = {
                    "durable_segment": str(segment),
                    "durable_offset": int(offset),
                    "bytes_retained": int(wal.bytes_retained()),
                }
            except OSError:
                pass
        return context

    def _flush_incidents(self, force: bool = False) -> None:
        """Write queued incident bundles whose capture delay elapsed."""
        if self.incidents is None:
            return
        # unlocked empty check: appends happen under the lock, and a
        # snapshot enqueued this instant is never due before its capture
        # delay elapses, so racing past it just defers to next round
        if not self._incident_queue:
            return
        with self._flight_lock:
            if not self._incident_queue:
                return
            rounds = self.report.rounds
            due = [
                entry
                for entry in self._incident_queue
                if force or rounds >= entry[3]
            ]
            if not due:
                return
            self._incident_queue = [
                entry for entry in self._incident_queue if entry not in due
            ]
            for entry in due:
                self._incident_queued.discard(entry[0])
        for tenant, reason, round_no, _due_round in due:
            self.incidents.snapshot(
                tenant,
                reason,
                round_no,
                context=self._incident_context(tenant),
            )

    # ------------------------------------------------------------------
    def run_round(
        self,
        times: np.ndarray,
        values: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> FleetTick:
        """One scheduler round: WAL, tick the fleet, queue fallout.

        With a flight recorder / incident recorder attached the round
        runs inside a ``fleet.round`` span, its trigger reasons are
        collected, and the span ring is kept or discarded at the end
        (tail sampling).
        """
        if self.flight is None and self.incidents is None:
            return self._round_core(times, values, active)
        round_no = self.report.rounds
        if self.flight is not None:
            self.flight.begin_round(round_no)
            t0 = _time.perf_counter()
            with trace.span("fleet.round", round=round_no):
                tick = self._round_core(times, values, active)
            latency_s = _time.perf_counter() - t0
        else:
            tick = self._round_core(times, values, active)
            latency_s = None
        self._finish_flight_round(tick, latency_s, round_no)
        return tick

    def _round_core(
        self,
        times: np.ndarray,
        values: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> FleetTick:
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        S = self.detector.n_streams
        present = (
            np.ones(S, dtype=bool)
            if active is None
            else np.asarray(active, dtype=bool)
        )
        attrs = self.detector.attributes
        for name in self._durable:
            s = self._stream_of[name]
            if present[s]:
                self._durability[name].append(
                    float(times[s]),
                    {a: float(values[s, j]) for j, a in enumerate(attrs)},
                    {},
                )
        tick = self.detector.tick(times, values, present)
        if tick.lane_errors:
            for s, err in tick.lane_errors.items():
                self.health.set_state(
                    self.tenants[int(s)],
                    "quarantined",
                    reason=f"lane poisoned: {err}",
                    round_no=self.report.rounds,
                )
        self._reap_finished()
        self._enforce_deadlines()
        self._requeue_due_retries()
        for s, regions in tick.closed.items():
            for region in regions:
                self._enqueue(int(s), region)
        # don't let a partial batch sit across quiet rounds
        self._flush_buffer()
        self.report.rounds += 1
        self.report.stream_ticks += int(present.sum())
        self.report.closed_regions += sum(
            len(r) for r in tick.closed.values()
        )
        self.report.abnormal_verdicts += sum(
            1 for res in tick.results.values() if res.regions
        )
        _SCHED_ROUNDS.inc()
        if tick.verdict_latency is not None:
            lat = tick.verdict_latency[present]
            self._latencies.append(lat[np.isfinite(lat)])
        if self.label_metrics:
            self._label_round(tick, present)
        if (
            self.checkpoint_every
            and self.report.rounds % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return tick

    def run(self, source, rounds: Optional[int] = None) -> SchedulerReport:
        """Drain *source* (an iterable of ``(times, values[, active])``)."""
        for i, batch in enumerate(source):
            if rounds is not None and i >= rounds:
                break
            if len(batch) == 3:
                times, values, active = batch
            else:
                times, values = batch
                active = None
            self.run_round(times, values, active)
        self.drain()
        return self.report

    # ------------------------------------------------------------------
    # Diagnosis queue
    # ------------------------------------------------------------------
    def _n_queued(self) -> int:
        """Diagnosis jobs in flight: buffered plus submitted-batch jobs."""
        return len(self._buffer) + sum(
            len(batch.jobs) for batch in self._pending
        )

    def _enqueue(self, stream: int, region: Region) -> None:
        self.submit_diagnosis(stream, region)

    def submit_diagnosis(
        self, stream: int, region: Region, dataset=None
    ) -> None:
        """Queue one closed region of *stream* for diagnosis.

        The tick loop calls this (via stage 6 fallout) with no *dataset*,
        snapshotting the stream's current arena window.  Replay and
        backfill paths — re-diagnosing regions recovered from a WAL, or
        benchmarking diagnosis throughput in isolation — pass the window
        captured at closure time instead.  Backpressure and shed policy
        apply identically either way.
        """
        tenant = self.tenants[stream]
        if self.sherlock is None:
            return
        verdict = self.health.breaker_admit(tenant, self.report.rounds)
        if verdict == "reject":
            self._shed(tenant)
            return
        probe = verdict == "probe"
        while self._n_queued() >= self.max_pending:
            if self.shed_policy == "block":
                self._wait_oldest()
                self._reap_finished()
                self._enforce_deadlines()
                self._requeue_due_retries()
                continue
            if self.shed_policy == "reject_new":
                self._shed_job_admission(tenant, probe)
                return
            # drop_oldest: cancel the stalest work still waiting to run
            if not self._drop_oldest_waiting():
                # everything submitted is already executing; the incoming
                # job is the one that has to give way
                self._shed_job_admission(tenant, probe)
                return
        if dataset is None:
            dataset = self.detector.arena.view(stream).to_dataset(
                name=f"fleet:{tenant}"
            )
        self._buffer.append(
            _PendingJob(
                tenant=tenant,
                stream=stream,
                region=region,
                dataset=dataset,
                probe=probe,
            )
        )
        self._lag[stream] += 1
        if len(self._buffer) >= self._batch_size:
            self._flush_buffer()

    def _shed_job_admission(self, tenant: str, probe: bool) -> None:
        """Shed a just-admitted job; a shed probe reopens the breaker."""
        self._shed(tenant)
        if probe:
            # the half-open probe never ran — reopen so a later round
            # gets to probe again instead of wedging in half_open
            self.health.breaker_failure(tenant, self.report.rounds)

    def _flush_buffer(self) -> None:
        """Submit the buffered jobs as one fused diagnosis batch."""
        if not self._buffer:
            return
        jobs, self._buffer = self._buffer, []
        batch = _PendingBatch(
            jobs=jobs,
            ticket=self._sequencer.issue(),
            submitted_at=_time.monotonic(),
        )
        batch.future = self._pool.submit(self._diagnose_batch, batch)
        self._pending.append(batch)

    def _stripe_of(self, tenant: str) -> int:
        return zlib.crc32(tenant.encode("utf-8")) % self._n_stripes

    def _diagnose_batch(self, batch: _PendingBatch) -> object:
        # Stripes are acquired in ascending index order (deadlock-free);
        # two batches contend only when their tenant sets share a stripe.
        stripes = sorted({self._stripe_of(job.tenant) for job in batch.jobs})
        t0 = _time.perf_counter()
        for idx in stripes:
            self._explain_locks[idx].acquire()
        _DIAG_LOCK_WAIT_MS.observe(
            (_time.perf_counter() - t0) * 1000.0
        )
        try:
            try:
                pairs = [
                    (
                        job.dataset,
                        RegionSpec(abnormal=[job.region], normal=None),
                    )
                    for job in batch.jobs
                ]
                explain_batch = getattr(self.sherlock, "explain_batch", None)
                if explain_batch is not None:
                    explanations = explain_batch(pairs)
                else:
                    explanations = [
                        self.sherlock.explain(ds, spec) for ds, spec in pairs
                    ]
            except Exception as exc:
                if batch.try_settle():
                    self._sequencer.skip(batch.ticket)
                    self._handle_batch_failure(batch, exc)
                return None
        finally:
            for idx in reversed(stripes):
                self._explain_locks[idx].release()
        if not batch.try_settle():
            # the deadline enforcer already spoke for these jobs
            # (degraded or abandoned); discard the late result
            self._late_result(batch)
            return None
        items = [
            (job.tenant, job.region, explanation)
            for job, explanation in zip(batch.jobs, explanations)
        ]
        self._sequencer.publish(
            batch.ticket, lambda: self._publish_items(items, batch.jobs)
        )
        return explanations

    def _publish_items(
        self,
        items: List[Tuple[str, Region, object]],
        jobs: Optional[List[_PendingJob]] = None,
    ) -> None:
        with self._diagnoses_lock:
            self.diagnoses.extend(items)
            self.report.diagnoses += len(items)
        _SCHED_DIAGNOSES.inc(len(items))
        if jobs is None:
            return
        # full (non-degraded) results count as breaker successes
        round_no = self.report.rounds
        for job in jobs:
            if self.health.breaker_success(job.tenant, round_no):
                with self._diagnoses_lock:
                    self.report.breaker_readmits += 1
            elif self.health.state(job.tenant) == "degraded":
                self.health.set_state(
                    job.tenant,
                    "healthy",
                    reason="diagnosis recovered",
                    round_no=round_no,
                )

    def _late_result(self, batch: _PendingBatch) -> None:
        """Worker finished after the enforcer settled its batch.

        If the run overran the hard deadline, charge the hard tier now
        (deterministically — the zombie sweep in ``_enforce_deadlines``
        only catches workers still running when it happens to look).
        Otherwise the batch merely missed the soft tier; an in-flight
        probe is inconclusive and reopens the breaker.
        """
        hard = self.hard_deadline_s
        elapsed = _time.monotonic() - batch.submitted_at
        if hard is not None and elapsed >= hard:
            self._charge_hard_tier(batch)
            return
        for job in batch.jobs:
            if job.probe:
                if self.health.breaker_failure(
                    job.tenant, self.report.rounds
                ):
                    with self._diagnoses_lock:
                        self.report.breaker_opens += 1

    def _charge_hard_tier(self, batch: _PendingBatch) -> None:
        """Hard-deadline accounting, exactly once per batch."""
        if not batch.mark_hard_counted():
            return
        round_no = self.report.rounds
        for job in batch.jobs:
            _DEADLINE_MISSES.labels(tier="hard").inc()
            self._note_interest(job.tenant, "deadline:hard")
            with self._diagnoses_lock:
                self.report.deadline_misses += 1
                if self.health.breaker_failure(job.tenant, round_no):
                    self.report.breaker_opens += 1

    def _handle_batch_failure(
        self, batch: _PendingBatch, exc: BaseException
    ) -> None:
        """Worker failure: retry each job individually, or surface it.

        Runs on the worker thread.  Jobs with attempts left are pushed
        onto the deterministic backoff schedule as singleton batches
        (isolating a poison job that was fused with healthy ones);
        exhausted jobs and probes become terminal failures — counted in
        ``repro_fleet_diagnosis_failures_total`` and the report, and fed
        to the tenant's circuit breaker.  Nothing is ever swallowed.
        """
        detail = f"{type(exc).__name__}: {exc}"
        round_no = self.report.rounds
        retries: List[Tuple[float, _PendingJob]] = []
        failures: List[_PendingJob] = []
        for job in batch.jobs:
            job.attempts += 1
            if job.attempts <= self.max_retries and not job.probe:
                delay = min(
                    self.backoff_s
                    * self.backoff_factor ** (job.attempts - 1),
                    self.max_backoff_s,
                )
                retries.append((_time.monotonic() + delay, job))
            else:
                failures.append(job)
        if retries:
            _DIAG_RETRIES.inc(len(retries))
            with self._retry_lock:
                self._retry.extend(retries)
            with self._diagnoses_lock:
                self.report.retries += len(retries)
        for job in failures:
            _DIAG_FAILURES.labels(tenant=job.tenant).inc()
            with self._diagnoses_lock:
                self.report.diagnosis_failures += 1
                self.report.failures_by_tenant[job.tenant] = (
                    self.report.failures_by_tenant.get(job.tenant, 0) + 1
                )
            if self.health.breaker_failure(job.tenant, round_no):
                with self._diagnoses_lock:
                    self.report.breaker_opens += 1
            elif self.health.state(job.tenant) == "healthy":
                self.health.set_state(
                    job.tenant,
                    "degraded",
                    reason=f"diagnosis failed: {detail}",
                    round_no=round_no,
                )

    def _shed(self, tenant: str) -> None:
        self.report.shed += 1
        self.report.shed_by_tenant[tenant] = (
            self.report.shed_by_tenant.get(tenant, 0) + 1
        )
        _SCHED_SHED.inc()
        if self.label_metrics:
            _TENANT_SHED.labels(tenant=tenant).inc()

    def _drop_oldest_waiting(self) -> bool:
        """Shed the stalest not-yet-running work; False if none exists."""
        for idx, batch in enumerate(self._pending):
            if batch.future is not None and batch.future.cancel():
                del self._pending[idx]
                self._sequencer.skip(batch.ticket)
                batch.try_settle()
                for job in batch.jobs:
                    self._lag[job.stream] -= 1
                    self._shed_job_admission(job.tenant, job.probe)
                return True
        if self._buffer:
            job = self._buffer.pop(0)
            self._lag[job.stream] -= 1
            self._shed_job_admission(job.tenant, job.probe)
            return True
        return False

    def _wait_oldest(self) -> None:
        if not self._pending:
            # under "block" the bound can be smaller than the batch size;
            # the buffered jobs themselves are what must make progress
            self._flush_buffer()
        if not self._pending:
            return
        oldest = self._pending[0]
        future = oldest.future
        if future is None:
            return
        if self.soft_deadline_s is None and self.hard_deadline_s is None:
            try:
                future.result()
            except Exception:
                # not swallowed: _reap_finished routes the exception
                # through _handle_batch_failure via future.exception()
                pass
            return
        # with deadlines configured a hung worker must not block the
        # tick thread: poll, enforcing deadlines between waits
        while not future.done():
            try:
                future.result(timeout=0.01)
            except _FutureTimeout:
                self._enforce_deadlines()
                if not self._pending or self._pending[0] is not oldest:
                    return  # the enforcer settled and removed it
            except Exception:
                return

    def _reap_finished(self) -> None:
        while self._pending and self._pending[0].future is not None and (
            self._pending[0].future.done()
        ):
            batch = self._pending.popleft()
            for job in batch.jobs:
                self._lag[job.stream] -= 1
            exc = batch.future.exception()  # type: ignore[union-attr]
            if exc is not None and batch.try_settle():
                # the worker died outside its own failure guard (a bug,
                # or a BaseException): surface it, never swallow it
                self._sequencer.skip(batch.ticket)
                self._handle_batch_failure(batch, exc)

    def _requeue_due_retries(self, wait: bool = False) -> None:
        """Resubmit failed jobs whose backoff delay has elapsed.

        Each retry runs as its own singleton batch so a poison job that
        was fused with healthy neighbours fails alone the second time.
        With *wait* (drain path, nothing else in flight) this sleeps
        until the earliest retry comes due.
        """
        with self._retry_lock:
            if not self._retry:
                return
            now = _time.monotonic()
            if wait and not self._pending and not self._buffer:
                earliest = min(nb for nb, _ in self._retry)
                if earliest > now:
                    sleep_s = earliest - now
                else:
                    sleep_s = 0.0
            else:
                sleep_s = 0.0
        if sleep_s:
            _time.sleep(sleep_s)
        with self._retry_lock:
            now = _time.monotonic()
            due = [job for nb, job in self._retry if nb <= now]
            self._retry = [
                (nb, job) for nb, job in self._retry if nb > now
            ]
        for job in due:
            verdict = self.health.breaker_admit(
                job.tenant, self.report.rounds
            )
            if verdict == "reject":
                self._shed(job.tenant)
                continue
            job.probe = verdict == "probe"
            batch = _PendingBatch(
                jobs=[job],
                ticket=self._sequencer.issue(),
                submitted_at=_time.monotonic(),
            )
            batch.future = self._pool.submit(self._diagnose_batch, batch)
            self._pending.append(batch)
            self._lag[job.stream] += 1

    def _degraded_explanation(self, job: _PendingJob) -> object:
        """Cached-models-only ranking for a soft-deadline fallback.

        Skips predicate generation entirely: ranks the stored causal
        models against the job's window via ``CausalModelStore.rank``
        and the shared lock-striped labeled-space cache, and wraps the
        scores in an ``Explanation`` with no predicates and
        ``degraded=True``.
        """
        from repro.core.explain import DEFAULT_LAMBDA, Explanation
        from repro.core.predicates import Conjunction

        spec = RegionSpec(abnormal=[job.region], normal=None)
        try:
            scores = self.sherlock.store.rank(
                job.dataset,
                spec,
                n_partitions=self.sherlock.config.n_partitions,
                cache=self.sherlock.cache,
            )
        except Exception:
            scores = []
        lam = getattr(self.sherlock, "lambda_threshold", DEFAULT_LAMBDA)
        explanation = Explanation(
            predicates=Conjunction(),
            causes=[(c, conf) for c, conf in scores if conf > lam],
            all_cause_scores=list(scores),
        )
        explanation.degraded = True  # type: ignore[attr-defined]
        return explanation

    def _enforce_deadlines(self) -> None:
        """Settle batches past their deadline tier (tick thread only).

        Soft tier: the batch is settled, its ticket skipped, and a
        degraded cached-models-only ranking is published for each job.
        Hard tier: the batch is abandoned and its jobs shed.  Either
        way the still-running worker becomes a *zombie*: its eventual
        result is discarded, and if it is still running at the hard
        deadline its tenants take a breaker failure (a hang is hostile
        whether or not a degraded answer already went out).
        """
        soft = self.soft_deadline_s
        hard = self.hard_deadline_s
        if soft is None and hard is None:
            return
        now = _time.monotonic()
        for batch in list(self._pending):
            future = batch.future
            if future is None or future.done():
                continue
            age = now - batch.submitted_at
            if hard is not None and age >= hard:
                if not batch.try_settle():
                    continue
                self._pending.remove(batch)
                self._sequencer.skip(batch.ticket)
                round_no = self.report.rounds
                for job in batch.jobs:
                    self._lag[job.stream] -= 1
                    self._shed(job.tenant)
                self._charge_hard_tier(batch)
                for job in batch.jobs:
                    if self.health.state(job.tenant) == "healthy":
                        self.health.set_state(
                            job.tenant,
                            "degraded",
                            reason="hard diagnosis deadline",
                            round_no=round_no,
                        )
                self._zombies.append(batch)
            elif soft is not None and age >= soft:
                if not batch.try_settle():
                    continue
                self._pending.remove(batch)
                self._sequencer.skip(batch.ticket)
                round_no = self.report.rounds
                items = []
                for job in batch.jobs:
                    self._lag[job.stream] -= 1
                    _DEADLINE_MISSES.labels(tier="soft").inc()
                    self._note_interest(job.tenant, "deadline:soft")
                    _DEGRADED_RANKINGS.inc()
                    items.append(
                        (job.tenant, job.region,
                         self._degraded_explanation(job))
                    )
                with self._diagnoses_lock:
                    self.report.deadline_misses += len(batch.jobs)
                    self.report.degraded_rankings += len(batch.jobs)
                self._publish_items(items)
                for job in batch.jobs:
                    if self.health.state(job.tenant) == "healthy":
                        self.health.set_state(
                            job.tenant,
                            "degraded",
                            reason="soft deadline: cached-models-only "
                            "ranking",
                            round_no=round_no,
                        )
                self._zombies.append(batch)
        for batch in list(self._zombies):
            future = batch.future
            if future is not None and future.done():
                self._zombies.remove(batch)
                continue
            if hard is not None and now - batch.submitted_at >= hard:
                self._charge_hard_tier(batch)

    def drain(self) -> None:
        """Block until every queued diagnosis has completed or settled."""
        self._flush_buffer()
        while True:
            if self._pending:
                self._wait_oldest()
                self._reap_finished()
                self._enforce_deadlines()
                self._flush_buffer()
                continue
            if self._buffer:
                self._flush_buffer()
                continue
            with self._retry_lock:
                has_retry = bool(self._retry)
            if not has_retry:
                break
            self._requeue_due_retries(wait=True)
        # Incidents whose capture delay has not elapsed still get
        # written — a drained fleet produces no more samples to wait on.
        self._flush_incidents(force=True)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Durably checkpoint every durable tenant and retire old WAL.

        A saved checkpoint advances the WAL's retention mark —
        segments older than the *previous* checkpoint generation are
        deleted (generation fallback still finds its replay ticks).  A
        poisoned lane keeps all segments instead: rows offered since
        the poison were skipped by the engine, and dropping them would
        lose the replay that happens when the tenant is readmitted or
        recovered.  Both cases are then bounded by whole-segment
        compaction to ``max_wal_bytes_per_tenant``.  A degraded tenant
        declines to checkpoint (its recent ticks are volatile), so its
        retention mark never advances past data that is not on disk.
        """
        for name in sorted(self._durable):
            s = self._stream_of[name]
            saved = self._durability[name].save_checkpoint(
                {
                    "version": 1,
                    "detector": self.detector.stream_checkpoint(s),
                    "processed_until": (
                        float(self.detector.last_time[s])
                        if self.detector._has_time[s]
                        else None
                    ),
                }
            )
            if saved:
                self._durability[name].retire_wal(
                    mark=not bool(self.detector.poisoned[s]),
                    max_bytes=self.max_wal_bytes_per_tenant,
                )
                self.report.checkpoints += 1
                _SCHED_CHECKPOINTS.inc()
        self._export_wal_bytes()

    def _export_wal_bytes(self) -> None:
        """Publish retained WAL bytes (per tenant + fleet total)."""
        total = 0
        for name, wal in self._wals.items():
            try:
                retained = wal.bytes_retained()
            except OSError:
                continue
            total += retained
            if self.label_metrics:
                _WAL_BYTES.labels(tenant=name).set(retained)
        _WAL_BYTES_TOTAL.set(total)

    def wal_bytes(self) -> Dict[str, int]:
        """Retained WAL bytes per durable tenant (for reports/tests)."""
        out: Dict[str, int] = {}
        for name, wal in self._wals.items():
            try:
                out[name] = wal.bytes_retained()
            except OSError:
                out[name] = -1
        return out

    def readmit(self, tenant: str) -> None:
        """Clear a tenant's lane poison and restore it to full service.

        The lane resumes from its frozen last-good state — rows offered
        while poisoned were never ingested, exactly as if the tenant
        had been offline.
        """
        s = self._stream_of[tenant]
        self.detector.unpoison(s)
        self.health.set_state(
            tenant,
            "healthy",
            reason="lane readmitted",
            round_no=self.report.rounds,
        )

    @classmethod
    def recover(
        cls,
        root_dir: Union[str, Path],
        tenants: Sequence[str],
        attributes: Optional[Sequence[str]] = None,
        **scheduler_kwargs,
    ) -> "FleetScheduler":
        """Rebuild a fleet scheduler from per-tenant durable state.

        Loads each tenant's checkpoint, restores the fleet bitwise
        (:meth:`FleetDetector.from_checkpoints`), then replays each
        tenant's write-ahead log through the engine — the same
        recovery contract as the single-stream supervisor: zero ticks
        lost, zero re-processed.

        Recovery is *partial*: a tenant whose checkpoint is missing,
        torn, or corrupt — or whose WAL replay raises — is skipped and
        reported instead of aborting the whole fleet.  Skipped tenants
        come back with a fresh empty lane in ``quarantined`` health
        (``replay_failed`` lanes stay poisoned at their last-good
        state), and the per-tenant verdicts land on
        ``scheduler.recovery_report`` (a
        :class:`~repro.fleet.health.RecoveryReport`).  Only an empty
        fleet — zero recoverable tenants — still raises.
        """
        root = Path(root_dir)
        outcomes: Dict[str, TenantRecovery] = {}
        states: Dict[str, Dict[str, object]] = {}
        replays: Dict[str, List[Tuple[float, Dict[str, float]]]] = {}
        wal_corruption: Dict[str, str] = {}
        for name in tenants:
            ckpt_path = root / name / "checkpoint.json"
            store = CheckpointStore(ckpt_path)
            stored = store.load()
            if stored is None:
                # CheckpointStore.load() returns None for both absent
                # and unreadable payloads; the path tells them apart
                status = "corrupt" if ckpt_path.exists() else "missing"
                outcomes[name] = TenantRecovery(
                    tenant=name,
                    status=status,
                    detail=f"checkpoint {status} at {ckpt_path}",
                )
                continue
            detector_state = (
                stored.get("detector") if isinstance(stored, dict) else None
            )
            if not isinstance(detector_state, dict) or (
                detector_state.get("version")
                != FleetDetector.CHECKPOINT_VERSION
            ):
                outcomes[name] = TenantRecovery(
                    tenant=name,
                    status="corrupt",
                    detail="malformed checkpoint payload",
                )
                continue
            until = stored.get("processed_until")
            until = None if until is None else float(until)
            wal = TickWAL(root / name / "ticks.wal")
            rows: List[Tuple[float, Dict[str, float]]] = []
            try:
                ticks, wal_report = wal.replay_report()
                for time, numeric_row, _cat in ticks:
                    if until is not None and time <= until:
                        continue
                    rows.append((float(time), dict(numeric_row)))
            except Exception as exc:
                outcomes[name] = TenantRecovery(
                    tenant=name,
                    status="corrupt",
                    detail=f"WAL replay failed: {exc}",
                )
                continue
            finally:
                wal.close()
            states[name] = detector_state
            replays[name] = rows
            if wal_report.corrupt_records or wal_report.corrupt_segments:
                wal_corruption[name] = (
                    f"wal corruption: {wal_report.corrupt_records} "
                    f"records / {wal_report.corrupt_segments} segments "
                    f"skipped"
                )
        recovered = [name for name in tenants if name in states]
        if not recovered:
            raise FileNotFoundError(
                f"no recoverable durable tenants under {root}"
            )
        # skipped tenants restart with a fresh empty lane sharing the
        # fleet's parameter set, so the tenant list (and stream order)
        # survives a partial recovery
        params = states[recovered[0]]["params"]
        state_list = [
            states.get(name) or _fresh_lane_state(params)
            for name in tenants
        ]
        detector = FleetDetector.from_checkpoints(
            state_list, attributes=attributes
        )
        scheduler = cls(
            detector,
            tenants=list(tenants),
            root_dir=root,
            durable=list(tenants),
            **scheduler_kwargs,
        )
        S = detector.n_streams
        attrs = detector.attributes
        ai_of = {a: j for j, a in enumerate(attrs)}
        for name in recovered:
            s = scheduler._stream_of[name]
            rows = replays[name]
            replayed = 0
            try:
                for time, numeric_row in rows:
                    times = np.zeros(S)
                    vals = np.zeros((S, len(attrs)))
                    active = np.zeros(S, dtype=bool)
                    times[s] = time
                    active[s] = True
                    for a, v in numeric_row.items():
                        if a in ai_of:
                            vals[s, ai_of[a]] = v
                    tick = detector.tick(times, vals, active)
                    replayed += 1
                    for stream, regions in tick.closed.items():
                        for region in regions:
                            scheduler._enqueue(int(stream), region)
            except Exception as exc:
                # freeze the lane at wherever replay got to; the
                # bulkhead keeps the rest of the fleet clean
                detector.poison(s, reason=f"replay failed: {exc}")
                outcomes[name] = TenantRecovery(
                    tenant=name,
                    status="replay_failed",
                    replayed_ticks=replayed,
                    detail=str(exc),
                )
                continue
            outcomes[name] = TenantRecovery(
                tenant=name,
                status="recovered",
                replayed_ticks=replayed,
                detail=wal_corruption.get(name, ""),
            )
        scheduler._flush_buffer()
        # CRC-skipped WAL records are a forensics trigger: the tenant
        # recovered, but something rotted its durable history.
        for name, detail in wal_corruption.items():
            scheduler._note_interest(name, "wal_corruption")
            scheduler._queue_incident(name, detail, 0)
        scheduler._flush_incidents(force=True)
        report = RecoveryReport(
            outcomes=[outcomes[name] for name in tenants]
        )
        scheduler.recovery_report = report
        for outcome in report.outcomes:
            if outcome.status != "recovered":
                scheduler.health.set_state(
                    outcome.tenant,
                    "quarantined",
                    reason=f"recovery: {outcome.status}",
                    round_no=0,
                )
        return scheduler

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _label_round(self, tick: FleetTick, present: np.ndarray) -> None:
        lat = tick.verdict_latency
        for s in np.nonzero(present)[0]:
            s = int(s)
            tenant = self.tenants[s]
            _TENANT_LAG.labels(tenant=tenant).set(int(self._lag[s]))
            verdict = (
                "abnormal"
                if s in tick.results and tick.results[s].regions
                else "normal"
            )
            _TENANT_VERDICTS.labels(tenant=tenant, verdict=verdict).inc()
            if lat is not None and np.isfinite(lat[s]):
                _TENANT_TICK_SECONDS.labels(tenant=tenant).observe(
                    float(lat[s])
                )

    def latency_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        """Percentiles of per-stream tick-to-verdict latency (seconds)."""
        if not self._latencies:
            return {f"p{q:g}": float("nan") for q in qs}
        allv = np.concatenate(self._latencies)
        if allv.size == 0:
            return {f"p{q:g}": float("nan") for q in qs}
        return {
            f"p{q:g}": float(np.percentile(allv, q)) for q in qs
        }

    def close(self) -> None:
        """Drain diagnosis, stop the pool, close WAL handles.

        Degraded tenants get one final probe: if the disk healed, their
        volatile buffers drain to the WAL before the handles close.
        """
        self.drain()
        self._pool.shutdown(wait=True)
        for managed in self._durability.values():
            managed.flush_volatile()
        self._export_wal_bytes()
        for wal in self._wals.values():
            try:
                wal.close()
            except OSError:
                pass
        self.health.close()
        if self.health.transition_hook is self._on_health_transition:
            self.health.transition_hook = None
        if self._flight_installed and trace.get_recorder() is self.flight:
            trace.uninstall()
            self._flight_installed = False

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
