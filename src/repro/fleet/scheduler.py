"""Multi-tenant fleet scheduler: ingest, diagnose, shed, recover.

:class:`FleetScheduler` multiplexes N tenants' tick streams over one
:class:`~repro.fleet.engine.FleetDetector` plus a bounded diagnosis
worker pool.  The split follows the runner/scheduler template from
SNIPPETS.md: the *engine* is synchronous and vectorized (every tenant
advances one tick per round), while *diagnosis* — the expensive, rare
fallout when a closed abnormal region needs a DBSherlock explanation —
is decoupled behind a queue with explicit backpressure:

* ``max_pending`` bounds the in-flight diagnosis jobs;
* when ingest outruns diagnosis, the configured **shed policy** decides
  who pays: ``"drop_oldest"`` cancels the stalest queued job,
  ``"reject_new"`` refuses the incoming one, ``"block"`` applies
  backpressure to the tick loop (no shedding, slower rounds);
* one shared :class:`~repro.core.causal.CausalModelStore` (inside the
  shared ``DBSherlock`` facade) serves the whole fleet, so a cause
  learned from one tenant immediately ranks for every other.

Durability is per tenant: tenants listed in *durable* get their own
WAL/checkpoint directory (``root_dir/<tenant>/``) using the exact
single-stream formats (:class:`~repro.stream.wal.TickWAL`,
:class:`~repro.stream.wal.CheckpointStore`,
``StreamingDetector.checkpoint`` schema), so a crashed fleet recovers
tenant state with :meth:`FleetScheduler.recover` — or any single tenant
can be peeled off into a plain
:class:`~repro.stream.supervisor.StreamSupervisor` without conversion.

Per-tenant observability (lag, sheds, verdicts, tick latency) lands in
the process metrics registry as labeled families
(``repro_fleet_tenant_*{tenant="..."}``); ``label_metrics=False`` keeps
the registry small for 10k-tenant benchmark runs.
"""

from __future__ import annotations

import threading
import time as _time
import zlib
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.data.regions import Region, RegionSpec
from repro.fleet.engine import FleetDetector, FleetTick
from repro.obs import metrics
from repro.stream.wal import CheckpointStore, TickWAL

__all__ = ["FleetScheduler", "SchedulerReport", "SHED_POLICIES"]

SHED_POLICIES = ("drop_oldest", "reject_new", "block")

_SCHED_ROUNDS = metrics.REGISTRY.counter(
    "repro_fleet_rounds_total", "Fleet scheduler rounds driven"
)
_SCHED_SHED = metrics.REGISTRY.counter(
    "repro_fleet_shed_total", "Diagnosis jobs shed under backpressure"
)
_SCHED_DIAGNOSES = metrics.REGISTRY.counter(
    "repro_fleet_diagnoses_total", "Diagnosis jobs completed"
)
_SCHED_CHECKPOINTS = metrics.REGISTRY.counter(
    "repro_fleet_checkpoints_total", "Durable per-tenant checkpoints taken"
)
_TENANT_LAG = metrics.REGISTRY.gauge(
    "repro_fleet_tenant_lag",
    "Queued (undiagnosed) closed regions per tenant",
    labelnames=("tenant",),
)
_TENANT_SHED = metrics.REGISTRY.counter(
    "repro_fleet_tenant_shed_total",
    "Diagnosis jobs shed per tenant",
    labelnames=("tenant",),
)
_TENANT_VERDICTS = metrics.REGISTRY.counter(
    "repro_fleet_tenant_verdicts_total",
    "Per-round detection verdicts per tenant",
    labelnames=("tenant", "verdict"),
)
_TENANT_TICK_SECONDS = metrics.REGISTRY.histogram(
    "repro_fleet_tenant_tick_seconds",
    "Tick-to-verdict latency per tenant",
    buckets=metrics.FINE_BUCKETS,
    labelnames=("tenant",),
)
_DIAG_LOCK_WAIT_MS = metrics.REGISTRY.histogram(
    "repro_fleet_diagnosis_lock_wait_ms",
    "Time a diagnosis batch waited on the striped explain locks",
    buckets=metrics.MS_BUCKETS,
)


@dataclass
class SchedulerReport:
    """Aggregate outcome of the rounds driven so far."""

    rounds: int = 0
    stream_ticks: int = 0
    diagnoses: int = 0
    shed: int = 0
    shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    checkpoints: int = 0
    abnormal_verdicts: int = 0
    closed_regions: int = 0


@dataclass
class _PendingJob:
    tenant: str
    stream: int
    region: Region
    #: window snapshot taken at enqueue time (regions refer to it).
    dataset: object = None


@dataclass
class _PendingBatch:
    """One submitted diagnosis unit: ≤ ``diagnose_jobs`` fused jobs."""

    jobs: List[_PendingJob]
    ticket: int
    future: Optional[Future] = None


class _Sequencer:
    """Globally-FIFO publication of diagnosis results.

    Batches run concurrently, but their results are appended to
    ``FleetScheduler.diagnoses`` strictly in submission-ticket order, so
    per-tenant verdict order is monotone no matter how the pool
    interleaves.  :meth:`publish` parks a finished batch until its turn
    and runs the sink under the sequencer's own lock (two batches can
    never interleave their appends); :meth:`skip` retires a cancelled
    ticket without blocking the caller.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._next_issue = 0
        self._next_publish = 0
        self._skipped: Set[int] = set()

    def issue(self) -> int:
        with self._cond:
            ticket = self._next_issue
            self._next_issue += 1
            return ticket

    def _advance_over_skipped(self) -> None:
        while self._next_publish in self._skipped:
            self._skipped.discard(self._next_publish)
            self._next_publish += 1

    def publish(self, ticket: int, sink) -> None:
        with self._cond:
            while self._next_publish != ticket:
                self._cond.wait()
            try:
                sink()
            finally:
                self._next_publish += 1
                self._advance_over_skipped()
                self._cond.notify_all()

    def skip(self, ticket: int) -> None:
        with self._cond:
            self._skipped.add(ticket)
            self._advance_over_skipped()
            self._cond.notify_all()


class FleetScheduler:
    """Drive a :class:`FleetDetector` with bounded diagnosis fallout.

    Parameters
    ----------
    detector:
        The fleet engine to drive.
    tenants:
        One name per stream (defaults to ``t0000..``); names label the
        per-tenant metrics and the WAL/checkpoint directories.
    sherlock:
        Shared ``DBSherlock`` facade (one ``CausalModelStore`` for the
        whole fleet).  ``None`` disables diagnosis — closed regions are
        still reported, just not explained.
    root_dir / durable:
        Durability root and the subset of tenant names that write a WAL
        and periodic checkpoints there (default: none).
    diagnose_jobs:
        Diagnosis parallelism: both the worker-thread count of the pool
        and the fused batch size — up to this many closed regions are
        diagnosed as one ``DBSherlock.explain_batch`` call.  The shared
        labeled-space cache is lock-striped, so concurrent batches only
        serialize when their tenants hash to the same explain stripe
        (wait time lands in ``repro_fleet_diagnosis_lock_wait_ms``).
    max_pending / shed_policy:
        Backpressure bound and policy (see module docstring).
    checkpoint_every:
        Rounds between durable checkpoints (0 disables).
    label_metrics:
        Emit per-tenant labeled metric families.  Disable for very
        large fleets where per-tenant registry children would dominate
        the round cost.
    """

    def __init__(
        self,
        detector: FleetDetector,
        tenants: Optional[Sequence[str]] = None,
        sherlock=None,
        root_dir: Optional[Union[str, Path]] = None,
        durable: Sequence[str] = (),
        diagnose_jobs: int = 2,
        max_pending: int = 64,
        shed_policy: str = "drop_oldest",
        checkpoint_every: int = 0,
        label_metrics: bool = True,
        fsync_every: int = 8,
    ) -> None:
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if diagnose_jobs < 1:
            raise ValueError("diagnose_jobs must be at least 1")
        S = detector.n_streams
        self.detector = detector
        self.tenants = (
            list(tenants)
            if tenants is not None
            else [f"t{idx:04d}" for idx in range(S)]
        )
        if len(self.tenants) != S:
            raise ValueError(
                f"{len(self.tenants)} tenant names for {S} streams"
            )
        if len(set(self.tenants)) != S:
            raise ValueError("tenant names must be unique")
        self.sherlock = sherlock
        self.shed_policy = shed_policy
        self.max_pending = int(max_pending)
        self.checkpoint_every = int(checkpoint_every)
        self.label_metrics = bool(label_metrics)
        self._stream_of = {name: s for s, name in enumerate(self.tenants)}
        durable = list(durable)
        unknown = [name for name in durable if name not in self._stream_of]
        if unknown:
            raise ValueError(f"unknown durable tenants: {unknown}")
        if durable and root_dir is None:
            raise ValueError("durable tenants need a root_dir")
        self.root_dir = Path(root_dir) if root_dir is not None else None
        self._durable: Set[str] = set(durable)
        self._wals: Dict[str, TickWAL] = {}
        self._ckpts: Dict[str, CheckpointStore] = {}
        for name in durable:
            tenant_dir = self.root_dir / name  # type: ignore[operator]
            self._wals[name] = TickWAL(
                tenant_dir / "ticks.wal", fsync_every=fsync_every
            )
            self._ckpts[name] = CheckpointStore(tenant_dir / "checkpoint.json")
        self._pool = ThreadPoolExecutor(
            max_workers=int(diagnose_jobs),
            thread_name_prefix="fleet-diagnose",
        )
        self._batch_size = int(diagnose_jobs)
        # crc32, not hash(): stable across PYTHONHASHSEED so stripe
        # assignment (and thus contention behavior) is reproducible.
        self._n_stripes = 16
        self._explain_locks = tuple(
            threading.Lock() for _ in range(self._n_stripes)
        )
        self._sequencer = _Sequencer()
        self._buffer: List[_PendingJob] = []
        self._pending: Deque[_PendingBatch] = deque()
        self._lag = np.zeros(S, dtype=np.int64)
        #: ``(tenant, region, explanation)`` triples, completion order.
        self.diagnoses: List[Tuple[str, Region, object]] = []
        self._diagnoses_lock = threading.Lock()
        self.report = SchedulerReport()
        #: p99 source: per-stream verdict latencies from recent rounds.
        self._latencies: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def run_round(
        self,
        times: np.ndarray,
        values: np.ndarray,
        active: Optional[np.ndarray] = None,
    ) -> FleetTick:
        """One scheduler round: WAL, tick the fleet, queue fallout."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        S = self.detector.n_streams
        present = (
            np.ones(S, dtype=bool)
            if active is None
            else np.asarray(active, dtype=bool)
        )
        attrs = self.detector.attributes
        for name in self._durable:
            s = self._stream_of[name]
            if present[s]:
                self._wals[name].append(
                    float(times[s]),
                    {a: float(values[s, j]) for j, a in enumerate(attrs)},
                    {},
                )
        tick = self.detector.tick(times, values, present)
        self._reap_finished()
        for s, regions in tick.closed.items():
            for region in regions:
                self._enqueue(int(s), region)
        # don't let a partial batch sit across quiet rounds
        self._flush_buffer()
        self.report.rounds += 1
        self.report.stream_ticks += int(present.sum())
        self.report.closed_regions += sum(
            len(r) for r in tick.closed.values()
        )
        self.report.abnormal_verdicts += sum(
            1 for res in tick.results.values() if res.regions
        )
        _SCHED_ROUNDS.inc()
        if tick.verdict_latency is not None:
            lat = tick.verdict_latency[present]
            self._latencies.append(lat[np.isfinite(lat)])
        if self.label_metrics:
            self._label_round(tick, present)
        if (
            self.checkpoint_every
            and self.report.rounds % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return tick

    def run(self, source, rounds: Optional[int] = None) -> SchedulerReport:
        """Drain *source* (an iterable of ``(times, values[, active])``)."""
        for i, batch in enumerate(source):
            if rounds is not None and i >= rounds:
                break
            if len(batch) == 3:
                times, values, active = batch
            else:
                times, values = batch
                active = None
            self.run_round(times, values, active)
        self.drain()
        return self.report

    # ------------------------------------------------------------------
    # Diagnosis queue
    # ------------------------------------------------------------------
    def _n_queued(self) -> int:
        """Diagnosis jobs in flight: buffered plus submitted-batch jobs."""
        return len(self._buffer) + sum(
            len(batch.jobs) for batch in self._pending
        )

    def _enqueue(self, stream: int, region: Region) -> None:
        self.submit_diagnosis(stream, region)

    def submit_diagnosis(
        self, stream: int, region: Region, dataset=None
    ) -> None:
        """Queue one closed region of *stream* for diagnosis.

        The tick loop calls this (via stage 6 fallout) with no *dataset*,
        snapshotting the stream's current arena window.  Replay and
        backfill paths — re-diagnosing regions recovered from a WAL, or
        benchmarking diagnosis throughput in isolation — pass the window
        captured at closure time instead.  Backpressure and shed policy
        apply identically either way.
        """
        tenant = self.tenants[stream]
        if self.sherlock is None:
            return
        while self._n_queued() >= self.max_pending:
            if self.shed_policy == "block":
                self._wait_oldest()
                self._reap_finished()
                continue
            if self.shed_policy == "reject_new":
                self._shed(tenant)
                return
            # drop_oldest: cancel the stalest work still waiting to run
            if not self._drop_oldest_waiting():
                # everything submitted is already executing; the incoming
                # job is the one that has to give way
                self._shed(tenant)
                return
        if dataset is None:
            dataset = self.detector.arena.view(stream).to_dataset(
                name=f"fleet:{tenant}"
            )
        self._buffer.append(
            _PendingJob(
                tenant=tenant, stream=stream, region=region, dataset=dataset
            )
        )
        self._lag[stream] += 1
        if len(self._buffer) >= self._batch_size:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        """Submit the buffered jobs as one fused diagnosis batch."""
        if not self._buffer:
            return
        jobs, self._buffer = self._buffer, []
        batch = _PendingBatch(jobs=jobs, ticket=self._sequencer.issue())
        batch.future = self._pool.submit(self._diagnose_batch, batch)
        self._pending.append(batch)

    def _stripe_of(self, tenant: str) -> int:
        return zlib.crc32(tenant.encode("utf-8")) % self._n_stripes

    def _diagnose_batch(self, batch: _PendingBatch) -> object:
        # Stripes are acquired in ascending index order (deadlock-free);
        # two batches contend only when their tenant sets share a stripe.
        stripes = sorted({self._stripe_of(job.tenant) for job in batch.jobs})
        t0 = _time.perf_counter()
        for idx in stripes:
            self._explain_locks[idx].acquire()
        _DIAG_LOCK_WAIT_MS.observe(
            (_time.perf_counter() - t0) * 1000.0
        )
        try:
            pairs = [
                (
                    job.dataset,
                    RegionSpec(abnormal=[job.region], normal=None),
                )
                for job in batch.jobs
            ]
            explain_batch = getattr(self.sherlock, "explain_batch", None)
            if explain_batch is not None:
                explanations = explain_batch(pairs)
            else:
                explanations = [
                    self.sherlock.explain(ds, spec) for ds, spec in pairs
                ]
        finally:
            for idx in reversed(stripes):
                self._explain_locks[idx].release()
        items = [
            (job.tenant, job.region, explanation)
            for job, explanation in zip(batch.jobs, explanations)
        ]
        self._sequencer.publish(
            batch.ticket, lambda: self._publish_items(items)
        )
        return explanations

    def _publish_items(
        self, items: List[Tuple[str, Region, object]]
    ) -> None:
        with self._diagnoses_lock:
            self.diagnoses.extend(items)
            self.report.diagnoses += len(items)
        _SCHED_DIAGNOSES.inc(len(items))

    def _shed(self, tenant: str) -> None:
        self.report.shed += 1
        self.report.shed_by_tenant[tenant] = (
            self.report.shed_by_tenant.get(tenant, 0) + 1
        )
        _SCHED_SHED.inc()
        if self.label_metrics:
            _TENANT_SHED.labels(tenant=tenant).inc()

    def _drop_oldest_waiting(self) -> bool:
        """Shed the stalest not-yet-running work; False if none exists."""
        for idx, batch in enumerate(self._pending):
            if batch.future is not None and batch.future.cancel():
                del self._pending[idx]
                self._sequencer.skip(batch.ticket)
                for job in batch.jobs:
                    self._lag[job.stream] -= 1
                    self._shed(job.tenant)
                return True
        if self._buffer:
            job = self._buffer.pop(0)
            self._lag[job.stream] -= 1
            self._shed(job.tenant)
            return True
        return False

    def _wait_oldest(self) -> None:
        if not self._pending:
            # under "block" the bound can be smaller than the batch size;
            # the buffered jobs themselves are what must make progress
            self._flush_buffer()
        if self._pending:
            oldest = self._pending[0]
            if oldest.future is not None:
                try:
                    oldest.future.result()
                except Exception:
                    pass

    def _reap_finished(self) -> None:
        while self._pending and self._pending[0].future is not None and (
            self._pending[0].future.done()
        ):
            batch = self._pending.popleft()
            for job in batch.jobs:
                self._lag[job.stream] -= 1

    def drain(self) -> None:
        """Block until every queued diagnosis has completed."""
        self._flush_buffer()
        while self._pending:
            self._wait_oldest()
            self._reap_finished()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Durably checkpoint every durable tenant and truncate its WAL."""
        for name in sorted(self._durable):
            s = self._stream_of[name]
            self._ckpts[name].save(
                {
                    "version": 1,
                    "detector": self.detector.stream_checkpoint(s),
                    "processed_until": (
                        float(self.detector.last_time[s])
                        if self.detector._has_time[s]
                        else None
                    ),
                }
            )
            self._wals[name].truncate()
            self.report.checkpoints += 1
            _SCHED_CHECKPOINTS.inc()

    @classmethod
    def recover(
        cls,
        root_dir: Union[str, Path],
        tenants: Sequence[str],
        attributes: Optional[Sequence[str]] = None,
        **scheduler_kwargs,
    ) -> "FleetScheduler":
        """Rebuild a fleet scheduler from per-tenant durable state.

        Loads each tenant's checkpoint, restores the fleet bitwise
        (:meth:`FleetDetector.from_checkpoints`), then replays each
        tenant's write-ahead log through the engine — the same
        recovery contract as the single-stream supervisor: zero ticks
        lost, zero re-processed.
        """
        root = Path(root_dir)
        states = []
        replays: List[List[Tuple[float, Dict[str, float]]]] = []
        for name in tenants:
            store = CheckpointStore(root / name / "checkpoint.json")
            stored = store.load()
            if stored is None:
                raise FileNotFoundError(
                    f"no durable checkpoint for tenant {name!r}"
                )
            states.append(stored["detector"])
            until = stored.get("processed_until")
            until = None if until is None else float(until)
            wal = TickWAL(root / name / "ticks.wal")
            rows = []
            try:
                for time, numeric_row, _cat in wal.replay():
                    if until is not None and time <= until:
                        continue
                    rows.append((float(time), dict(numeric_row)))
            finally:
                wal.close()
            replays.append(rows)
        detector = FleetDetector.from_checkpoints(
            states, attributes=attributes
        )
        scheduler = cls(
            detector,
            tenants=list(tenants),
            root_dir=root,
            durable=list(tenants),
            **scheduler_kwargs,
        )
        S = detector.n_streams
        attrs = detector.attributes
        ai_of = {a: j for j, a in enumerate(attrs)}
        for s, rows in enumerate(replays):
            for time, numeric_row in rows:
                times = np.zeros(S)
                vals = np.zeros((S, len(attrs)))
                active = np.zeros(S, dtype=bool)
                times[s] = time
                active[s] = True
                for a, v in numeric_row.items():
                    if a in ai_of:
                        vals[s, ai_of[a]] = v
                tick = detector.tick(times, vals, active)
                for stream, regions in tick.closed.items():
                    for region in regions:
                        scheduler._enqueue(int(stream), region)
        scheduler._flush_buffer()
        return scheduler

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _label_round(self, tick: FleetTick, present: np.ndarray) -> None:
        lat = tick.verdict_latency
        for s in np.nonzero(present)[0]:
            s = int(s)
            tenant = self.tenants[s]
            _TENANT_LAG.labels(tenant=tenant).set(int(self._lag[s]))
            verdict = (
                "abnormal"
                if s in tick.results and tick.results[s].regions
                else "normal"
            )
            _TENANT_VERDICTS.labels(tenant=tenant, verdict=verdict).inc()
            if lat is not None and np.isfinite(lat[s]):
                _TENANT_TICK_SECONDS.labels(tenant=tenant).observe(
                    float(lat[s])
                )

    def latency_percentiles(
        self, qs: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        """Percentiles of per-stream tick-to-verdict latency (seconds)."""
        if not self._latencies:
            return {f"p{q:g}": float("nan") for q in qs}
        allv = np.concatenate(self._latencies)
        if allv.size == 0:
            return {f"p{q:g}": float("nan") for q in qs}
        return {
            f"p{q:g}": float(np.percentile(allv, q)) for q in qs
        }

    def close(self) -> None:
        """Drain diagnosis, stop the pool, close WAL handles."""
        self.drain()
        self._pool.shutdown(wait=True)
        for wal in self._wals.values():
            wal.close()

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
