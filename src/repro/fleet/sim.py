"""Synthetic fleet tick sources for benchmarks and smoke tests.

The telemetry collector (:mod:`repro.engine.collector`) simulates one
tenant at a time with per-row Python work; at 10 000 tenants that
dominates any benchmark of the fleet engine itself.
:class:`FleetSimSource` instead draws each round's ``(times, values,
active)`` batch with whole-fleet numpy calls: a per-stream baseline plus
Gaussian noise, square-wave anomaly bursts on a configurable subset of
streams (scaled spikes on a couple of attributes — enough to push
Equation 4 over any reasonable threshold), and optional chaos in the
shape the fleet engine must tolerate — missing rows, NaN cells,
non-monotone (replayed) timestamps, and stuck-at-constant attributes.

Determinism: one :class:`numpy.random.Generator` seeded from
``np.random.SeedSequence(seed)`` drives everything, so a source with the
same parameters replays the same fleet history — which is what lets the
equivalence tests feed identical rows to the fleet engine and to
mirrored single-stream detectors.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FleetSimSource"]


class FleetSimSource:
    """Deterministic ``(times, values, active)`` batches for a fleet.

    Parameters
    ----------
    n_streams / attributes:
        Fleet shape; every stream shares the attribute schema.
    interval_s:
        Nominal tick spacing (timestamps are ``(tick + 1) * interval_s``
        plus optional jitter).
    anomaly_fraction:
        Fraction of streams that carry periodic anomaly bursts.
    anomaly_period / anomaly_duration:
        Burst cadence in ticks: every *period* ticks an anomalous stream
        spikes for *duration* ticks.
    anomaly_scale:
        Burst amplitude as a multiple of the baseline spread.
    drop_rate / nan_rate:
        Chaos knobs: probability a present row is replayed with a stale
        timestamp (exercising the non-monotone drop path) and the
        per-cell NaN probability (exercising sanitize).
    absent_rate:
        Probability a stream simply has no row this round (partial
        ``active`` masks).
    stuck_streams / stuck_attr:
        Streams whose *stuck_attr* column is frozen at a constant
        (exercising stuck-at quarantine).
    """

    def __init__(
        self,
        n_streams: int,
        attributes: Sequence[str],
        interval_s: float = 1.0,
        seed: int = 0,
        anomaly_fraction: float = 0.05,
        anomaly_period: int = 40,
        anomaly_duration: int = 6,
        anomaly_scale: float = 8.0,
        drop_rate: float = 0.0,
        nan_rate: float = 0.0,
        absent_rate: float = 0.0,
        stuck_streams: Optional[Sequence[int]] = None,
        stuck_attr: Optional[str] = None,
    ) -> None:
        self.n_streams = int(n_streams)
        self.attributes = list(attributes)
        self.interval_s = float(interval_s)
        self.anomaly_period = int(anomaly_period)
        self.anomaly_duration = int(anomaly_duration)
        self.anomaly_scale = float(anomaly_scale)
        self.drop_rate = float(drop_rate)
        self.nan_rate = float(nan_rate)
        self.absent_rate = float(absent_rate)
        S, A = self.n_streams, len(self.attributes)
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))
        # Per-stream per-attribute baselines and spreads, fixed at
        # construction so replays match.
        self._base = self._rng.uniform(10.0, 100.0, size=(S, A))
        self._spread = self._rng.uniform(0.5, 3.0, size=(S, A))
        n_anom = int(round(S * float(anomaly_fraction)))
        self.anomalous = np.zeros(S, dtype=bool)
        if n_anom:
            picks = self._rng.choice(S, size=n_anom, replace=False)
            self.anomalous[picks] = True
        self._stuck = np.zeros(S, dtype=bool)
        if stuck_streams is not None:
            self._stuck[np.asarray(list(stuck_streams), dtype=np.int64)] = (
                True
            )
        self._stuck_ai = (
            self.attributes.index(stuck_attr)
            if stuck_attr is not None
            else None
        )
        self._tick = 0

    def batch(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw the next fleet round."""
        S, A = self.n_streams, len(self.attributes)
        t = self._tick
        self._tick += 1
        times = np.full(S, (t + 1) * self.interval_s)
        values = self._base + self._rng.standard_normal((S, A)) * self._spread
        if self.anomaly_period > 0:
            in_burst = (t % self.anomaly_period) < self.anomaly_duration
            if in_burst and t >= self.anomaly_period // 2:
                # spike the first two attributes of anomalous streams
                k = min(2, A)
                values[self.anomalous, :k] += (
                    self.anomaly_scale * self._spread[self.anomalous, :k]
                )
        if self._stuck_ai is not None and self._stuck.any():
            values[self._stuck, self._stuck_ai] = self._base[
                self._stuck, self._stuck_ai
            ]
        if self.nan_rate > 0:
            values[self._rng.random((S, A)) < self.nan_rate] = np.nan
        if self.drop_rate > 0:
            stale = self._rng.random(S) < self.drop_rate
            times[stale] -= 2.0 * self.interval_s
        active = np.ones(S, dtype=bool)
        if self.absent_rate > 0:
            active &= self._rng.random(S) >= self.absent_rate
        return times, values, active

    def __iter__(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        while True:
            yield self.batch()

    def take(
        self, n: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """A bounded iterator of *n* rounds."""
        for _ in range(int(n)):
            yield self.batch()
