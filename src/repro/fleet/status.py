"""Render fleet health from a metrics snapshot.

The fleet engine and scheduler publish everything an operator needs into
the process metrics registry (:mod:`repro.obs.metrics`): fleet-wide
counters (``repro_fleet_*_total``), the amortized per-stream tick
histogram, the failure-containment instruments (diagnosis failures and
retries, deadline misses by tier, degraded rankings, circuit-breaker
opens/readmits, health-state transitions), and — when the scheduler runs
with ``label_metrics=True`` — per-tenant labeled families for lag,
sheds, verdicts, tick-to-verdict latency, health state, and breaker
state.  :func:`render_fleet_status` turns one
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict (live or loaded
from a ``to_json`` file) into the plain-text table behind
``repro-sherlock fleet status``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["fleet_status_data", "render_fleet_status"]

_TENANT_FAMILIES = {
    "repro_fleet_tenant_lag": "lag",
    "repro_fleet_tenant_shed_total": "shed",
    "repro_fleet_tenant_verdicts_total": "verdicts",
    "repro_fleet_tenant_tick_seconds": "tick",
    "repro_fleet_tenant_health": "health",
    "repro_fleet_breaker_state": "breaker",
    "repro_fleet_tenant_durability": "durability",
}

#: Gauge codes published by :mod:`repro.fleet.health`.
_HEALTH_NAMES = {0: "healthy", 1: "degraded", 2: "quarantined", 3: "ejected"}
_BREAKER_NAMES = {0: "closed", 1: "half-open", 2: "open"}
#: Gauge codes published by :mod:`repro.stream.durability`.
_DURABILITY_NAMES = {0: "durable", 1: "degraded"}

_FLEET_COUNTERS = (
    ("repro_fleet_rounds_total", "rounds"),
    ("repro_fleet_stream_ticks_total", "stream ticks"),
    ("repro_fleet_reclusters_total", "reclusters"),
    ("repro_fleet_closed_regions_total", "closed regions"),
    ("repro_fleet_diagnoses_total", "diagnoses"),
    ("repro_fleet_shed_total", "shed"),
    ("repro_fleet_checkpoints_total", "checkpoints"),
    ("repro_fleet_dropped_ticks_total", "dropped ticks"),
    ("repro_fleet_quarantine_events_total", "quarantines"),
)

#: Unlabeled containment counters, shown on their own line when nonzero.
_CONTAINMENT_COUNTERS = (
    ("repro_fleet_diagnosis_retries_total", "retries"),
    ("repro_fleet_degraded_rankings_total", "degraded rankings"),
    ("repro_fleet_breaker_opens_total", "breaker opens"),
    ("repro_fleet_breaker_readmits_total", "breaker readmits"),
)

#: Storage-durability counters, shown on their own line when nonzero.
_STORAGE_COUNTERS = (
    ("repro_storage_write_errors_total", "write errors"),
    ("repro_storage_read_errors_total", "read errors"),
    ("repro_storage_retries_total", "io retries"),
    ("repro_storage_degraded_transitions_total", "degraded"),
    ("repro_storage_repromotions_total", "re-promoted"),
    ("repro_storage_wal_corrupt_records_total", "wal corrupt"),
    ("repro_storage_checkpoint_fallbacks_total", "ckpt fallbacks"),
)


def _sum_labeled(
    snapshot: Mapping[str, Mapping[str, object]], base: str, label: str
) -> Dict[str, int]:
    """Aggregate a labeled counter family by one label's values."""
    out: Dict[str, int] = {}
    for name, entry in snapshot.items():
        if name.split("{", 1)[0] != base:
            continue
        labels = entry.get("labels")
        if not isinstance(labels, Mapping) or label not in labels:
            continue
        key = str(labels[label])
        out[key] = out.get(key, 0) + int(entry.get("value", 0))  # type: ignore[arg-type]
    return out


def _family(entry_name: str) -> Optional[str]:
    base = entry_name.split("{", 1)[0]
    return _TENANT_FAMILIES.get(base)


def _histogram_quantile(entry: Mapping[str, object], q: float) -> float:
    """Upper-bound estimate of quantile *q* from cumulative buckets."""
    count = int(entry.get("count", 0))
    if count == 0:
        return float("nan")
    rank = q * count
    for bound, cum in entry["buckets"]:  # type: ignore[union-attr]
        if bound == "+Inf":
            bound = float("inf")
        if cum >= rank:
            return float(bound)
    return float("inf")


def _fmt_us(seconds: float) -> str:
    if seconds != seconds:  # NaN
        return "-"
    if seconds == float("inf"):
        return ">max"
    return f"{seconds * 1e6:.0f}"


def _tenant_rows(
    snapshot: Mapping[str, Mapping[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Group the per-tenant labeled families by tenant name."""
    tenants: Dict[str, Dict[str, object]] = {}
    for name, entry in snapshot.items():
        fam = _family(name)
        if fam is None:
            continue
        labels = entry.get("labels")
        if not isinstance(labels, Mapping) or "tenant" not in labels:
            continue
        row = tenants.setdefault(str(labels["tenant"]), {})
        if fam == "verdicts":
            verdict = str(labels.get("verdict", "?"))
            counts: Dict[str, int] = row.setdefault("verdicts", {})  # type: ignore[assignment]
            counts[verdict] = counts.get(verdict, 0) + int(entry["value"])  # type: ignore[arg-type]
        elif fam == "tick":
            row["tick"] = entry
        else:
            row[fam] = int(entry["value"])  # type: ignore[arg-type]
    return tenants


def _tenant_sort_key(item: Tuple[str, Dict[str, object]]):
    verdicts = item[1].get("verdicts", {})
    abnormal = verdicts.get("abnormal", 0) if isinstance(verdicts, dict) else 0
    # sickest first: ejected/quarantined tenants ahead of lag
    return (
        -int(item[1].get("health", 0)),  # type: ignore[arg-type]
        -int(item[1].get("lag", 0)),  # type: ignore[arg-type]
        -abnormal,
        item[0],
    )


def _counter_value(
    snapshot: Mapping[str, Mapping[str, object]], name: str
) -> int:
    entry = snapshot.get(name)
    if entry is None or "value" not in entry:
        return 0
    return int(entry["value"])  # type: ignore[arg-type]


def fleet_status_data(
    snapshot: Mapping[str, Mapping[str, object]],
    max_tenants: Optional[int] = None,
) -> Dict[str, object]:
    """The full fleet status as a machine-readable (JSON-able) dict.

    The structured twin of :func:`render_fleet_status` — same snapshot
    in, but every section lands under a stable key instead of a text
    line: ``totals``, ``latency``, ``storm``, ``containment``,
    ``storage``, ``flight``, ``incidents``, and the sorted (sickest
    first) ``tenants`` rows.  ``repro-sherlock fleet status --json``
    emits exactly this dict for scraping.
    """
    data: Dict[str, object] = {}
    totals: Dict[str, int] = {}
    for name, label in _FLEET_COUNTERS:
        if name in snapshot:
            totals[label.replace(" ", "_")] = _counter_value(snapshot, name)
    data["totals"] = totals

    latency: Optional[Dict[str, float]] = None
    stream_hist = snapshot.get("repro_fleet_stream_tick_seconds")
    if stream_hist is not None and int(stream_hist.get("count", 0)) > 0:
        latency = {
            "p50_us": _histogram_quantile(stream_hist, 0.50) * 1e6,
            "p99_us": _histogram_quantile(stream_hist, 0.99) * 1e6,
        }
    data["latency"] = latency

    storm: Dict[str, float] = {}
    for metric, key in (
        ("repro_fleet_fallout_streams", "fallout_streams_p99"),
        ("repro_fleet_fallout_ms", "fallout_stage_p99_ms"),
        ("repro_fleet_diagnosis_lock_wait_ms", "diagnosis_lock_wait_p99_ms"),
    ):
        entry = snapshot.get(metric)
        if entry is not None and int(entry.get("count", 0)) > 0:
            storm[key] = _histogram_quantile(entry, 0.99)
    data["storm"] = storm

    containment: Dict[str, object] = {}
    for name, label in _CONTAINMENT_COUNTERS:
        value = _counter_value(snapshot, name)
        if value:
            containment[label.replace(" ", "_")] = value
    failures = _sum_labeled(
        snapshot, "repro_fleet_diagnosis_failures_total", "tenant"
    )
    if failures:
        containment["diagnosis_failures"] = sum(failures.values())
    misses = _sum_labeled(
        snapshot, "repro_fleet_deadline_misses_total", "tier"
    )
    if misses:
        containment["deadline_misses"] = misses
    transitions = _sum_labeled(
        snapshot, "repro_fleet_health_transitions_total", "state"
    )
    if transitions:
        containment["health_transitions"] = transitions
    data["containment"] = containment

    storage: Dict[str, int] = {}
    for name, label in _STORAGE_COUNTERS:
        value = _counter_value(snapshot, name)
        if value:
            storage[label.replace(" ", "_")] = value
    degraded_now = _counter_value(snapshot, "repro_storage_degraded_tenants")
    if degraded_now:
        storage["degraded_now"] = degraded_now
    wal_bytes = _counter_value(snapshot, "repro_fleet_wal_bytes_total")
    if wal_bytes:
        storage["wal_bytes"] = wal_bytes
    data["storage"] = storage

    flight: Dict[str, object] = {}
    flight_ticks = _counter_value(snapshot, "repro_flight_ticks_total")
    if flight_ticks:
        flight["ticks"] = flight_ticks
        kept = _sum_labeled(
            snapshot, "repro_flight_kept_ticks_total", "reason"
        )
        flight["kept"] = kept
        flight["retained_bytes"] = _counter_value(
            snapshot, "repro_flight_retained_bytes"
        )
        dropped = _counter_value(snapshot, "repro_flight_dropped_events_total")
        if dropped:
            flight["dropped_events"] = dropped
    data["flight"] = flight

    incidents: Dict[str, object] = {}
    bundles = _sum_labeled(
        snapshot, "repro_incident_bundles_total", "reason"
    )
    if bundles:
        incidents["bundles"] = bundles
        incidents["bytes"] = _counter_value(snapshot, "repro_incident_bytes")
    skipped = _sum_labeled(snapshot, "repro_incident_skipped_total", "why")
    if skipped:
        incidents["skipped"] = skipped
    data["incidents"] = incidents

    rows: List[Dict[str, object]] = []
    tenants = _tenant_rows(snapshot)
    shown = sorted(tenants.items(), key=_tenant_sort_key)
    if max_tenants is not None:
        shown = shown[:max_tenants]
    for tenant, row in shown:
        verdicts = row.get("verdicts", {})
        tick = row.get("tick")
        p99 = (
            _histogram_quantile(tick, 0.99) * 1e6  # type: ignore[arg-type]
            if tick is not None and int(tick.get("count", 0)) > 0  # type: ignore[union-attr]
            else None
        )
        rows.append(
            {
                "tenant": tenant,
                "health": _HEALTH_NAMES.get(int(row.get("health", 0)), "?"),  # type: ignore[arg-type]
                "breaker": _BREAKER_NAMES.get(int(row.get("breaker", 0)), "?"),  # type: ignore[arg-type]
                "durability": (
                    _DURABILITY_NAMES.get(int(row["durability"]), "?")  # type: ignore[arg-type]
                    if "durability" in row
                    else None
                ),
                "lag": int(row.get("lag", 0)),  # type: ignore[arg-type]
                "shed": int(row.get("shed", 0)),  # type: ignore[arg-type]
                "verdicts": verdicts if isinstance(verdicts, dict) else {},
                "p99_tick_us": p99,
            }
        )
    data["tenants"] = rows
    return data


def render_fleet_status(
    snapshot: Mapping[str, Mapping[str, object]],
    max_tenants: int = 40,
) -> str:
    """Plain-text fleet status from a registry snapshot dict."""
    lines: List[str] = ["fleet status", ""]
    totals = []
    for name, label in _FLEET_COUNTERS:
        entry = snapshot.get(name)
        if entry is not None and "value" in entry:
            totals.append(f"{label} {int(entry['value'])}")  # type: ignore[arg-type]
    stream_hist = snapshot.get("repro_fleet_stream_tick_seconds")
    if stream_hist is not None and int(stream_hist.get("count", 0)) > 0:
        p50 = _histogram_quantile(stream_hist, 0.50)
        p99 = _histogram_quantile(stream_hist, 0.99)
        totals.append(
            f"amortized/stream p50<={_fmt_us(p50)}us p99<={_fmt_us(p99)}us"
        )
    lines.append("  " + "   ".join(totals) if totals else "  (no fleet metrics)")

    # Storm pressure and diagnosis-pool contention, when observed.
    storm = []
    fallout_streams = snapshot.get("repro_fleet_fallout_streams")
    if fallout_streams is not None and int(fallout_streams.get("count", 0)) > 0:
        p50 = _histogram_quantile(fallout_streams, 0.50)
        p99 = _histogram_quantile(fallout_streams, 0.99)
        storm.append(
            f"fallout streams/tick p50<={p50:g} p99<={p99:g}"
        )
    fallout_ms = snapshot.get("repro_fleet_fallout_ms")
    if fallout_ms is not None and int(fallout_ms.get("count", 0)) > 0:
        p99 = _histogram_quantile(fallout_ms, 0.99)
        storm.append(f"fallout stage p99<={p99:g}ms")
    lock_wait = snapshot.get("repro_fleet_diagnosis_lock_wait_ms")
    if lock_wait is not None and int(lock_wait.get("count", 0)) > 0:
        p99 = _histogram_quantile(lock_wait, 0.99)
        storm.append(f"diagnosis lock wait p99<={p99:g}ms")
    if storm:
        lines.append("  " + "   ".join(storm))

    # Failure containment: breaker/deadline/health activity, when any.
    containment = []
    for name, label in _CONTAINMENT_COUNTERS:
        entry = snapshot.get(name)
        if entry is not None and int(entry.get("value", 0)) > 0:
            containment.append(f"{label} {int(entry['value'])}")  # type: ignore[arg-type]
    failures = _sum_labeled(
        snapshot, "repro_fleet_diagnosis_failures_total", "tenant"
    )
    if failures:
        containment.append(f"diagnosis failures {sum(failures.values())}")
    misses = _sum_labeled(
        snapshot, "repro_fleet_deadline_misses_total", "tier"
    )
    if misses:
        by_tier = " ".join(
            f"{tier}={misses[tier]}" for tier in sorted(misses)
        )
        containment.append(f"deadline misses {by_tier}")
    transitions = _sum_labeled(
        snapshot, "repro_fleet_health_transitions_total", "state"
    )
    unhealthy = {k: v for k, v in transitions.items() if k != "healthy"}
    if unhealthy:
        by_state = " ".join(
            f"{state}={unhealthy[state]}" for state in sorted(unhealthy)
        )
        containment.append(f"health transitions {by_state}")
    if containment:
        lines.append("  " + "   ".join(containment))

    # Storage durability: I/O errors, degraded tenants, WAL pressure.
    storage = []
    for name, label in _STORAGE_COUNTERS:
        entry = snapshot.get(name)
        if entry is not None and int(entry.get("value", 0)) > 0:
            storage.append(f"{label} {int(entry['value'])}")  # type: ignore[arg-type]
    degraded_now = snapshot.get("repro_storage_degraded_tenants")
    if degraded_now is not None and int(degraded_now.get("value", 0)) > 0:
        storage.append(f"degraded now {int(degraded_now['value'])}")  # type: ignore[arg-type]
    wal_bytes = snapshot.get("repro_fleet_wal_bytes_total")
    if wal_bytes is not None and int(wal_bytes.get("value", 0)) > 0:
        storage.append(f"wal bytes {int(wal_bytes['value'])}")  # type: ignore[arg-type]
    if storage:
        lines.append("  storage: " + "   ".join(storage))

    # Flight recorder and incident forensics, when observed.
    forensics = []
    flight_ticks = _counter_value(snapshot, "repro_flight_ticks_total")
    if flight_ticks:
        kept = sum(
            _sum_labeled(
                snapshot, "repro_flight_kept_ticks_total", "reason"
            ).values()
        )
        retained = _counter_value(snapshot, "repro_flight_retained_bytes")
        forensics.append(
            f"flight ticks {flight_ticks} kept {kept} "
            f"retained {retained}b"
        )
    bundles = _sum_labeled(snapshot, "repro_incident_bundles_total", "reason")
    if bundles:
        nbytes = _counter_value(snapshot, "repro_incident_bytes")
        forensics.append(
            f"incident bundles {sum(bundles.values())} ({nbytes}b)"
        )
    skipped = _sum_labeled(snapshot, "repro_incident_skipped_total", "why")
    if skipped:
        forensics.append(f"incidents suppressed {sum(skipped.values())}")
    if forensics:
        lines.append("  forensics: " + "   ".join(forensics))

    # Group per-tenant families by tenant label.
    tenants = _tenant_rows(snapshot)

    if not tenants:
        lines.append("")
        lines.append(
            "  (no per-tenant series; run the scheduler with "
            "label_metrics=True)"
        )
        return "\n".join(lines)

    lines.append("")
    header = (
        f"  {'tenant':<12} {'health':<12} {'breaker':<9} {'durable':<9} "
        f"{'lag':>5} "
        f"{'shed':>5} {'normal':>8} {'abnormal':>9} {'p99 tick (us)':>14}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))

    shown = sorted(tenants.items(), key=_tenant_sort_key)
    for tenant, row in shown[:max_tenants]:
        verdicts = row.get("verdicts", {})
        normal = verdicts.get("normal", 0) if isinstance(verdicts, dict) else 0
        abnormal = (
            verdicts.get("abnormal", 0) if isinstance(verdicts, dict) else 0
        )
        tick = row.get("tick")
        p99 = (
            _fmt_us(_histogram_quantile(tick, 0.99))  # type: ignore[arg-type]
            if tick is not None
            else "-"
        )
        health = _HEALTH_NAMES.get(int(row.get("health", 0)), "?")  # type: ignore[arg-type]
        breaker = _BREAKER_NAMES.get(int(row.get("breaker", 0)), "?")  # type: ignore[arg-type]
        durability = (
            _DURABILITY_NAMES.get(int(row["durability"]), "?")  # type: ignore[arg-type]
            if "durability" in row
            else "-"
        )
        lines.append(
            f"  {tenant:<12} {health:<12} {breaker:<9} {durability:<9} "
            f"{int(row.get('lag', 0)):>5} "  # type: ignore[arg-type]
            f"{int(row.get('shed', 0)):>5} {normal:>8} {abnormal:>9} "  # type: ignore[arg-type]
            f"{p99:>14}"
        )
    if len(shown) > max_tenants:
        lines.append(f"  ... {len(shown) - max_tenants} more tenants")
    return "\n".join(lines)
