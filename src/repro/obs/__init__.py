"""Self-observation layer: tracing, metrics, and dogfood telemetry.

- :mod:`repro.obs.trace` — hierarchical spans recorded as JSON-lines
  events, context-propagated across ``parallel_map`` workers, free when
  disabled.
- :mod:`repro.obs.metrics` — process-wide counter/gauge/histogram
  registry with Prometheus-text and JSON exporters.
- :mod:`repro.obs.dogfood` — resamples the registry into a per-second
  ``Dataset`` so the pipeline can diagnose itself.
- :mod:`repro.obs.report` — renders traces and snapshots as ASCII
  (``repro-sherlock obs report``).
- :mod:`repro.obs.flight` — always-on tail-sampled flight recorder
  (keep interesting ticks, discard the rest).
- :mod:`repro.obs.incident` — atomically-written incident forensics
  bundles plus the ``obs incidents`` CLI backend.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.incident import (
    IncidentRecorder,
    explain_bundle,
    list_bundles,
    load_bundle,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, TimelineRing
from repro.obs.trace import (
    TraceRecorder,
    add_attrs,
    attached,
    current_context,
    enabled,
    get_recorder,
    install,
    load_trace,
    recording,
    span,
    stage,
    uninstall,
    validate_event,
)

__all__ = [
    "REGISTRY",
    "FlightRecorder",
    "IncidentRecorder",
    "MetricsRegistry",
    "TimelineRing",
    "TraceRecorder",
    "explain_bundle",
    "list_bundles",
    "load_bundle",
    "add_attrs",
    "attached",
    "current_context",
    "enabled",
    "get_recorder",
    "install",
    "load_trace",
    "recording",
    "span",
    "stage",
    "uninstall",
    "validate_event",
]
