"""Dogfood bridge: the pipeline's own metrics as a diagnosable Dataset.

DBSherlock diagnoses databases from per-second telemetry counters.  The
metrics registry (:mod:`repro.obs.metrics`) *is* a set of per-second
telemetry counters — about the diagnosis pipeline itself.  This module
closes the loop: :class:`MetricsTimeline` samples the registry on a
fixed cadence and re-emits the samples as a
:class:`~repro.data.dataset.Dataset`, so ``DBSherlock.explain`` and
:class:`~repro.stream.detector.StreamingDetector` can run on the tool's
own behaviour — a cache disabled mid-run shows up as a miss-rate step
the detector flags and the explainer turns into predicates like
``repro_cache_misses_total > 40``.

Counters and histogram count/sum series are emitted as **per-interval
deltas** (rates) by default: Equation 4's sliding-median machinery
expects level shifts, and a monotone cumulative counter would look
anomalous forever.  Gauges pass through as levels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.dataset import Dataset
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["MetricsTimeline", "flatten_snapshot"]


def flatten_snapshot(snapshot: Dict[str, dict]) -> Dict[str, float]:
    """One registry snapshot as a flat ``attribute → float`` row.

    Counters and gauges keep their name; a histogram contributes
    ``<name>_count`` and ``<name>_sum`` (its bucket vector is cumulative
    detail the telemetry row does not need).
    """
    row: Dict[str, float] = {}
    for name, entry in snapshot.items():
        if entry["kind"] == "histogram":
            row[name + "_count"] = float(entry["count"])
            row[name + "_sum"] = float(entry["sum"])
        else:
            row[name] = float(entry["value"])
    return row


class MetricsTimeline:
    """Periodic registry samples, convertible to a per-second Dataset.

    Call :meth:`sample` once per interval (the caller owns the cadence —
    typically once per processed stream tick or simulated second); then
    :meth:`to_dataset` yields a regular, strictly-increasing-timestamp
    dataset ready for ``regularize_dataset``, the streaming detector, or
    ``DBSherlock.explain``.

    Parameters
    ----------
    registry:
        Registry to sample (default: the process-wide one).
    interval:
        Seconds between implicit timestamps when :meth:`sample` is
        called without an explicit time.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry if registry is not None else REGISTRY
        self.interval = float(interval)
        self._samples: List[Tuple[float, Dict[str, float]]] = []
        self._kinds: Dict[str, str] = {}
        self._tick = 0

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Tuple[float, Dict[str, float]]],
        kinds: Optional[Dict[str, str]] = None,
        interval: float = 1.0,
    ) -> "MetricsTimeline":
        """Rehydrate a timeline from stored ``(t, row)`` samples.

        The incident-bundle path: a bundle's ``timeline.json`` carries
        the retained samples and their attribute kinds; this rebuilds a
        timeline whose :meth:`to_dataset` treats them exactly as the
        live registry would (counters as rates, gauges as levels).
        """
        timeline = cls(interval=interval)
        last: Optional[float] = None
        for t, row in samples:
            t = float(t)
            if last is not None and t <= last:
                raise ValueError(
                    f"sample time {t} does not advance past {last}"
                )
            last = t
            timeline._samples.append((t, dict(row)))
        timeline._tick = len(timeline._samples)
        if kinds:
            timeline._kinds.update(kinds)
        return timeline

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self, t: Optional[float] = None) -> Dict[str, float]:
        """Record one registry snapshot at time *t* (implicit cadence
        ``tick * interval`` when omitted)."""
        if t is None:
            t = self._tick * self.interval
        t = float(t)
        if self._samples and t <= self._samples[-1][0]:
            raise ValueError(
                f"sample time {t} does not advance past "
                f"{self._samples[-1][0]}"
            )
        self._tick += 1
        snapshot = self.registry.snapshot()
        for name, entry in snapshot.items():
            self._kinds.setdefault(name, entry["kind"])
        row = flatten_snapshot(snapshot)
        self._samples.append((t, row))
        return row

    def _is_cumulative(self, attr: str) -> bool:
        """Counters and histogram count/sum series accumulate; gauges don't."""
        kind = self._kinds.get(attr)
        if kind is not None:
            return kind == "counter"
        for suffix in ("_count", "_sum"):
            if attr.endswith(suffix):
                base = attr[: -len(suffix)]
                if self._kinds.get(base) == "histogram":
                    return True
        return False

    def to_dataset(
        self,
        rates: bool = True,
        name: str = "obs-telemetry",
        attributes: Optional[Sequence[str]] = None,
    ) -> Dataset:
        """The timeline as a :class:`~repro.data.dataset.Dataset`.

        With ``rates`` (default), cumulative series become per-interval
        deltas stamped at the later sample, so ``n`` samples yield
        ``n - 1`` rows; gauges take the later sample's level.  Metrics
        registered mid-timeline are backfilled with zeros.
        """
        samples = self._samples
        if rates:
            if len(samples) < 2:
                raise ValueError("rates need at least two samples")
        elif not samples:
            raise ValueError("the timeline has no samples")
        attrs = (
            list(attributes)
            if attributes is not None
            else sorted({a for _t, row in samples for a in row})
        )
        if rates:
            timestamps = [t for t, _row in samples[1:]]
            numeric = {
                attr: (
                    [
                        samples[i][1].get(attr, 0.0)
                        - samples[i - 1][1].get(attr, 0.0)
                        for i in range(1, len(samples))
                    ]
                    if self._is_cumulative(attr)
                    else [row.get(attr, 0.0) for _t, row in samples[1:]]
                )
                for attr in attrs
            }
        else:
            timestamps = [t for t, _row in samples]
            numeric = {
                attr: [row.get(attr, 0.0) for _t, row in samples]
                for attr in attrs
            }
        return Dataset(timestamps, numeric=numeric, name=name)
