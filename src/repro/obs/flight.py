"""Always-on tail-sampled flight recorder for the fleet.

The observability layer's full tracing mode costs ~+9% (see
``BENCH_obs_overhead.json``) because every span of every tick is
serialised to disk.  The flight recorder inverts the decision: every
fleet tick records spans into a small in-memory ring, and on tick
completion the ring is *kept* only if the tick turned out to be
interesting — a verdict was emitted, a deadline tier fired, a lane was
poisoned, durability transitioned, or the round latency exceeded a
rolling p99.  Boring ticks (the overwhelming majority) are discarded
wholesale, so the amortised overhead is bounded by the cost of
appending dicts to a list.

:class:`FlightRecorder` is duck-type compatible with
:class:`repro.obs.trace.TraceRecorder` (it exposes ``record`` plus the
``path``/``keep`` attributes that :func:`repro.obs.trace.current_context`
reads), so it installs via :func:`repro.obs.trace.install` and the
existing ``span``/``stage`` helpers feed it without modification.

Retained ticks are grouped per tenant (plus a ``"_fleet"``
pseudo-tenant for round-scoped spans) in bounded deques so a noisy
fleet cannot grow memory without bound; :meth:`FlightRecorder.retained`
and :meth:`FlightRecorder.bundle_events` expose them to
:class:`repro.obs.incident.IncidentRecorder`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import metrics

__all__ = ["FlightRecorder", "FLEET_TENANT"]

#: Pseudo-tenant under which round-scoped (not tenant-specific) keeps
#: are retained; merged into every tenant's bundle.
FLEET_TENANT = "_fleet"

_FLIGHT_TICKS = metrics.REGISTRY.counter(
    "repro_flight_ticks_total",
    "Fleet rounds observed by the flight recorder.",
)
_FLIGHT_KEPT = metrics.REGISTRY.counter(
    "repro_flight_kept_ticks_total",
    "Fleet rounds whose span ring was retained, by trigger reason.",
    labelnames=("reason",),
)
_FLIGHT_RETAINED_BYTES = metrics.REGISTRY.gauge(
    "repro_flight_retained_bytes",
    "Approximate bytes of retained span events across all tenants.",
)
_FLIGHT_DROPPED = metrics.REGISTRY.counter(
    "repro_flight_dropped_events_total",
    "Span events dropped because a tick ring exceeded its byte budget.",
)


def _event_bytes(event: dict) -> int:
    """A cheap, deterministic size estimate for one span event.

    Serialising every event with ``json.dumps`` just to measure it
    would dominate the recorder's cost, so budget accounting uses a
    fixed overhead plus small per-field charges.
    """
    size = 96 + len(str(event.get("name", "")))
    attrs = event.get("attrs")
    if attrs:
        size += 16 * len(attrs)
    return size


class _RetainedTick:
    """One kept round: its reasons, span events, and byte estimate."""

    __slots__ = ("round_no", "reasons", "events", "nbytes")

    def __init__(
        self,
        round_no: int,
        reasons: Tuple[str, ...],
        events: Tuple[dict, ...],
        nbytes: int,
    ) -> None:
        self.round_no = round_no
        self.reasons = reasons
        self.events = events
        self.nbytes = nbytes


class FlightRecorder:
    """Tail-sampling span sink with bounded per-tenant retention.

    Parameters
    ----------
    max_tick_bytes:
        Byte budget for the in-flight ring of a single round; the
        oldest events are dropped (and counted) beyond it.
    keep_ticks:
        Retained rounds per tenant (deque ``maxlen``).
    max_retained_bytes:
        Byte ceiling across one tenant's retained rounds; oldest
        retained rounds are evicted beyond it.
    p99_window:
        Rolling window of round latencies backing the latency trigger.
    min_latency_samples:
        The p99 trigger stays dormant until this many latencies have
        been observed, so warm-up rounds don't all look anomalous.
    """

    def __init__(
        self,
        max_tick_bytes: int = 64 * 1024,
        keep_ticks: int = 8,
        max_retained_bytes: int = 256 * 1024,
        p99_window: int = 128,
        min_latency_samples: int = 32,
    ) -> None:
        if max_tick_bytes <= 0:
            raise ValueError("max_tick_bytes must be positive")
        if keep_ticks <= 0:
            raise ValueError("keep_ticks must be positive")
        self.max_tick_bytes = int(max_tick_bytes)
        self.keep_ticks = int(keep_ticks)
        self.max_retained_bytes = int(max_retained_bytes)
        self.min_latency_samples = max(1, int(min_latency_samples))
        # TraceRecorder duck-type surface: current_context() reads
        # .path, recording() reads .keep.
        self.path = None
        self.keep = False
        self._lock = threading.Lock()
        self._ring: List[dict] = []
        self._ring_bytes = 0
        self._round_no = 0
        self._retained: Dict[str, "deque[_RetainedTick]"] = {}
        self._retained_bytes: Dict[str, int] = {}
        self._latencies: "deque[float]" = deque(maxlen=int(p99_window))
        self._p99_cache: Optional[float] = None
        self._p99_stale = 0

    # ------------------------------------------------------------------
    # TraceRecorder protocol
    # ------------------------------------------------------------------
    def record(self, event: dict) -> None:
        """Append one span event to the current round's ring."""
        nbytes = _event_bytes(event)
        with self._lock:
            self._ring.append(event)
            self._ring_bytes += nbytes
            while self._ring_bytes > self.max_tick_bytes and len(self._ring) > 1:
                dropped = self._ring.pop(0)
                self._ring_bytes -= _event_bytes(dropped)
                _FLIGHT_DROPPED.inc()

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self, round_no: int) -> None:
        """Open a round: clear the in-flight ring."""
        with self._lock:
            self._round_no = int(round_no)
            self._ring = []
            self._ring_bytes = 0

    def end_round(
        self,
        interest: Dict[str, Sequence[str]],
        latency_s: Optional[float] = None,
    ) -> Tuple[str, ...]:
        """Close a round; keep its ring iff any trigger fired.

        ``interest`` maps tenant -> trigger reasons accumulated during
        the round (empty dict = boring round).  ``latency_s`` feeds the
        rolling-p99 trigger.  Returns the union of reasons that caused
        a keep (empty tuple = discarded).
        """
        _FLIGHT_TICKS.inc()
        keep: Dict[str, List[str]] = {
            t: list(r) for t, r in interest.items() if r
        }
        if latency_s is not None:
            threshold = self._latency_threshold(float(latency_s))
            if threshold is not None and float(latency_s) > threshold:
                keep.setdefault(FLEET_TENANT, []).append("latency_p99")
        with self._lock:
            if not keep:
                # boring round (the overwhelming majority): drop the
                # ring without materializing a tuple of its events
                self._ring = []
                self._ring_bytes = 0
                return ()
            events = tuple(self._ring)
            round_no = self._round_no
            self._ring = []
            self._ring_bytes = 0
            all_reasons: List[str] = []
            for tenant, reasons in keep.items():
                tick = _RetainedTick(
                    round_no,
                    tuple(reasons),
                    events,
                    sum(_event_bytes(e) for e in events),
                )
                self._retain(tenant, tick)
                all_reasons.extend(reasons)
            total = sum(self._retained_bytes.values())
        for reason in sorted(set(all_reasons)):
            _FLIGHT_KEPT.labels(reason=reason).inc()
        _FLIGHT_RETAINED_BYTES.set(total)
        return tuple(sorted(set(all_reasons)))

    def _retain(self, tenant: str, tick: _RetainedTick) -> None:
        """Append a kept tick under *tenant*; caller holds the lock."""
        ring = self._retained.get(tenant)
        if ring is None:
            ring = deque(maxlen=self.keep_ticks)
            self._retained[tenant] = ring
            self._retained_bytes[tenant] = 0
        if len(ring) == ring.maxlen:
            evicted = ring[0]
            self._retained_bytes[tenant] -= evicted.nbytes
        ring.append(tick)
        self._retained_bytes[tenant] += tick.nbytes
        while self._retained_bytes[tenant] > self.max_retained_bytes and len(ring) > 1:
            evicted = ring.popleft()
            self._retained_bytes[tenant] -= evicted.nbytes

    def _latency_threshold(self, latency_s: float) -> Optional[float]:
        """Record *latency_s* and return the current p99, if armed."""
        with self._lock:
            self._latencies.append(latency_s)
            n = len(self._latencies)
            if n < self.min_latency_samples:
                return None
            self._p99_stale += 1
            if self._p99_cache is None or self._p99_stale >= 8:
                ordered = sorted(self._latencies)
                self._p99_cache = ordered[min(n - 1, int(0.99 * n))]
                self._p99_stale = 0
            return self._p99_cache

    # ------------------------------------------------------------------
    # Retained evidence
    # ------------------------------------------------------------------
    def retained(self, tenant: str) -> List[dict]:
        """Kept-tick metadata for *tenant* (newest last)."""
        with self._lock:
            ring = self._retained.get(tenant) or ()
            return [
                {
                    "round": tick.round_no,
                    "reasons": list(tick.reasons),
                    "events": len(tick.events),
                    "bytes": tick.nbytes,
                }
                for tick in ring
            ]

    def bundle_events(self, tenant: str) -> List[dict]:
        """All retained span events relevant to *tenant*.

        Merges the tenant's own keeps with the ``_fleet`` pseudo-tenant
        (round-scoped spans), deduplicated by span id, ordered by start
        time.
        """
        with self._lock:
            ticks: List[_RetainedTick] = []
            for key in (tenant, FLEET_TENANT):
                if key in self._retained:
                    ticks.extend(self._retained[key])
        seen = set()
        events: List[dict] = []
        for tick in ticks:
            for event in tick.events:
                sid = event.get("span_id")
                if sid in seen:
                    continue
                seen.add(sid)
                events.append(event)
        events.sort(key=lambda e: e.get("start_s", 0.0))
        return events

    def tenants(self) -> List[str]:
        """Tenants (including ``_fleet``) holding retained ticks."""
        with self._lock:
            return sorted(self._retained)

    def stats(self) -> dict:
        """Aggregate retention statistics (for ``fleet status``)."""
        with self._lock:
            return {
                "tenants": len(self._retained),
                "kept_ticks": sum(len(r) for r in self._retained.values()),
                "retained_bytes": sum(self._retained_bytes.values()),
            }

    def clear(self) -> None:
        """Drop the in-flight ring and every retained tick."""
        with self._lock:
            self._ring = []
            self._ring_bytes = 0
            self._retained.clear()
            self._retained_bytes.clear()
            self._latencies.clear()
            self._p99_cache = None
            self._p99_stale = 0
        _FLIGHT_RETAINED_BYTES.set(0)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"FlightRecorder(kept_ticks={stats['kept_ticks']}, "
            f"retained_bytes={stats['retained_bytes']})"
        )
