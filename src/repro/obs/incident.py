"""Incident forensics bundles: retained evidence frozen at failure time.

When a tenant's health transitions (breaker opens, durability degrades,
a hard deadline sheds work, WAL replay reports corruption) the metrics
and spans that would explain *why* are normally gone within seconds —
the flight recorder's rings roll over and the registry only exports
point-in-time values.  :class:`IncidentRecorder` freezes that evidence
at the moment of the transition into a self-contained bundle directory::

    incidents/<tenant>/<seq>-<reason>/
        incident.json    # trigger, context, window, kept-tick metadata
        spans.jsonl      # retained span events (trace schema)
        timeline.json    # metric timeline window around the trigger
        health.jsonl     # tail of the tenant's health journal

Bundles are written through the :mod:`repro.faults.fs` storage shim
(tmp dir + atomic rename) so forensics survive the same hostile disks
the WAL does, and a per-tenant rate limiter plus a global disk budget
bound bundle volume under storms — a flapping tenant cannot fill the
disk with its own post-mortems.

:func:`explain_bundle` closes the loop: it replays the bundle's metric
timeline through ``DBSherlock.explain`` (the dogfood path), so the tool
diagnoses its own incidents from the retained evidence alone.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults import fs as _fs
from repro.obs import metrics

__all__ = [
    "BUNDLE_VERSION",
    "IncidentRecorder",
    "explain_bundle",
    "list_bundles",
    "load_bundle",
]

#: Bundle schema version stamped into every ``incident.json``.
BUNDLE_VERSION = 1

_INCIDENT_BUNDLES = metrics.REGISTRY.counter(
    "repro_incident_bundles_total",
    "Incident bundles written, by trigger reason.",
    labelnames=("reason",),
)
_INCIDENT_SKIPPED = metrics.REGISTRY.counter(
    "repro_incident_skipped_total",
    "Incident snapshots suppressed, by limiter.",
    labelnames=("why",),
)
_INCIDENT_BYTES = metrics.REGISTRY.gauge(
    "repro_incident_bytes",
    "Approximate bytes of incident bundles written this process.",
)

_SLUG_RE = re.compile(r"[^a-z0-9_.-]+")


def _slug(text: str, limit: int = 48) -> str:
    """A filesystem-safe slug for a trigger reason."""
    slug = _SLUG_RE.sub("-", text.lower()).strip("-")
    return (slug or "incident")[:limit]


class IncidentRecorder:
    """Writes bounded, atomically-renamed incident bundles.

    Parameters
    ----------
    root_dir:
        Fleet root; bundles land under ``<root_dir>/incidents/``.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder` supplying
        retained spans and kept-tick metadata.
    timeline:
        Optional timeline ring (``metrics.TimelineRing`` or anything
        with ``window(n) -> [(t, row), ...]`` and ``kinds()``).
    journal_root:
        Directory holding per-tenant health journals (defaults to
        *root_dir*).
    max_bundles_per_tenant:
        Bundle-count cap per tenant; further triggers are counted and
        dropped.
    max_total_bytes:
        Disk budget across every bundle this recorder writes; snapshots
        beyond it are counted and dropped.
    min_rounds_between:
        Per-tenant rate limit in fleet rounds: a tenant that triggered
        at round ``r`` is muted until ``r + min_rounds_between``.
    timeline_window:
        Trailing timeline samples captured into each bundle.
    health_tail:
        Trailing health-journal records captured into each bundle.
    """

    def __init__(
        self,
        root_dir,
        flight=None,
        timeline=None,
        journal_root=None,
        max_bundles_per_tenant: int = 4,
        max_total_bytes: int = 4 * 1024 * 1024,
        min_rounds_between: int = 8,
        timeline_window: int = 64,
        health_tail: int = 32,
    ) -> None:
        self.root_dir = Path(root_dir)
        self.flight = flight
        self.timeline = timeline
        self.journal_root = (
            Path(journal_root) if journal_root is not None else self.root_dir
        )
        self.max_bundles_per_tenant = int(max_bundles_per_tenant)
        self.max_total_bytes = int(max_total_bytes)
        self.min_rounds_between = int(min_rounds_between)
        self.timeline_window = int(timeline_window)
        self.health_tail = int(health_tail)
        self._lock = threading.Lock()
        self._seq = 0
        self._written_bytes = 0
        self._per_tenant: Dict[str, int] = {}
        self._last_round: Dict[str, int] = {}

    @property
    def incidents_dir(self) -> Path:
        return self.root_dir / "incidents"

    def attach(self, flight=None, timeline=None, journal_root=None) -> None:
        """Late-bind evidence sources (the scheduler owns their setup)."""
        if flight is not None:
            self.flight = flight
        if timeline is not None:
            self.timeline = timeline
        if journal_root is not None:
            self.journal_root = Path(journal_root)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(
        self,
        tenant: str,
        reason: str,
        round_no: int,
        context: Optional[dict] = None,
    ) -> Optional[Path]:
        """Freeze the current evidence for *tenant* into a bundle.

        Returns the bundle directory, or ``None`` when a limiter
        suppressed the snapshot or the disk refused it.  Never raises:
        forensics must not take down the fleet they describe.
        """
        with self._lock:
            last = self._last_round.get(tenant)
            if (
                last is not None
                and round_no - last < self.min_rounds_between
            ):
                _INCIDENT_SKIPPED.labels(why="rate").inc()
                return None
            if self._per_tenant.get(tenant, 0) >= self.max_bundles_per_tenant:
                _INCIDENT_SKIPPED.labels(why="cap").inc()
                return None
            if self._written_bytes >= self.max_total_bytes:
                _INCIDENT_SKIPPED.labels(why="budget").inc()
                return None
            self._seq += 1
            seq = self._seq
            # Reserve the slot before the (slow, unlocked) write so a
            # concurrent trigger for the same tenant rate-limits out.
            self._last_round[tenant] = int(round_no)
            self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        try:
            path, nbytes = self._write_bundle(
                tenant, reason, int(round_no), seq, context or {}
            )
        except OSError:
            _fs.count_write_error()
            _INCIDENT_SKIPPED.labels(why="io").inc()
            with self._lock:
                self._per_tenant[tenant] -= 1
            return None
        with self._lock:
            self._written_bytes += nbytes
            total = self._written_bytes
        _INCIDENT_BUNDLES.labels(reason=_slug(reason)).inc()
        _INCIDENT_BYTES.set(total)
        return path

    def _write_bundle(
        self,
        tenant: str,
        reason: str,
        round_no: int,
        seq: int,
        context: dict,
    ) -> Tuple[Path, int]:
        """Write one bundle via tmp dir + atomic rename; returns bytes."""
        fsio = _fs.get_fs()
        slug = _slug(reason)
        tenant_dir = self.incidents_dir / tenant
        tenant_dir.mkdir(parents=True, exist_ok=True)
        final = tenant_dir / f"{seq:04d}-{slug}"
        tmp = tenant_dir / f".tmp-{seq:04d}-{slug}"
        if tmp.exists():
            for stale in tmp.iterdir():
                stale.unlink()
            tmp.rmdir()
        tmp.mkdir()

        events: List[dict] = []
        kept_ticks: List[dict] = []
        if self.flight is not None:
            events = self.flight.bundle_events(tenant)
            kept_ticks = self.flight.retained(tenant)
        samples: List[Tuple[float, Dict[str, float]]] = []
        kinds: Dict[str, str] = {}
        interval = 1.0
        if self.timeline is not None:
            samples = list(self.timeline.window(self.timeline_window))
            kinds = dict(self.timeline.kinds())
            interval = float(getattr(self.timeline, "interval", 1.0))
        health_tail = self._journal_tail(tenant)

        manifest = {
            "version": BUNDLE_VERSION,
            "tenant": tenant,
            "reason": reason,
            "slug": slug,
            "round": round_no,
            "seq": seq,
            "context": context,
            "window": self._window(samples, round_no),
            "kept_ticks": kept_ticks,
            "spans": len(events),
            "timeline_samples": len(samples),
        }

        nbytes = 0
        nbytes += self._write_file(
            fsio, tmp / "incident.json", json.dumps(manifest, indent=2) + "\n"
        )
        nbytes += self._write_file(
            fsio,
            tmp / "spans.jsonl",
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in events),
        )
        nbytes += self._write_file(
            fsio,
            tmp / "timeline.json",
            json.dumps(
                {
                    "interval": interval,
                    "kinds": kinds,
                    "samples": [[t, row] for t, row in samples],
                }
            )
            + "\n",
        )
        nbytes += self._write_file(
            fsio,
            tmp / "health.jsonl",
            "".join(json.dumps(rec, sort_keys=True) + "\n" for rec in health_tail),
        )
        fsio.replace(tmp, final)
        return final, nbytes

    @staticmethod
    def _write_file(fsio, path: Path, payload: str) -> int:
        with path.open("w") as fh:
            fsio.write(fh, payload)
            fsio.fsync(fh)
        return len(payload.encode("utf-8"))

    def _journal_tail(self, tenant: str) -> List[dict]:
        """Last ``health_tail`` records of the tenant's health journal."""
        try:
            from repro.fleet.health import read_health_journal
        except ImportError:  # pragma: no cover - circular-import guard
            return []
        records = read_health_journal(self.journal_root, tenant)
        return records[-self.health_tail :]

    def _window(
        self,
        samples: Sequence[Tuple[float, Dict[str, float]]],
        round_no: int,
    ) -> dict:
        """Abnormal/normal bounds for :func:`explain_bundle`.

        The scheduler stamps timeline samples with the fleet round
        number, so when the trigger round falls inside the captured
        span the abnormal region starts *exactly* at the trigger and
        everything before it is the normal baseline — no pre-failure
        samples dilute the abnormal window.  When the trigger is
        outside the span (detached recorders, custom rings) the
        trailing quarter is marked abnormal instead.
        """
        window: dict = {"trigger_round": round_no, "abnormal": None, "normal": None}
        if len(samples) < 4:
            return window
        times = [t for t, _row in samples]
        split = None
        if times[0] < round_no <= times[-1]:
            anchored = next(
                i for i, t in enumerate(times) if t >= round_no
            )
            # need at least one baseline and one abnormal sample on
            # each side of the anchor
            if 1 <= anchored <= len(times) - 2:
                split = anchored
        if split is None:
            split = max(1, len(times) - max(2, len(times) // 4))
        window["normal"] = [times[0], times[split - 1]]
        window["abnormal"] = [times[split], times[-1]]
        return window

    def stats(self) -> dict:
        """Written/suppressed totals (for ``fleet status``)."""
        with self._lock:
            return {
                "bundles": sum(self._per_tenant.values()),
                "bytes": self._written_bytes,
                "tenants": len(self._per_tenant),
            }


# ----------------------------------------------------------------------
# Bundle reading
# ----------------------------------------------------------------------
def list_bundles(root_dir) -> List[Path]:
    """Every bundle directory under *root_dir*'s ``incidents/`` tree.

    *root_dir* may be the fleet root, the ``incidents/`` directory
    itself, or one tenant's incident directory; ordered by tenant then
    sequence.
    """
    root = Path(root_dir)
    if (root / "incidents").is_dir():
        root = root / "incidents"
    if not root.is_dir():
        return []
    if (root / "incident.json").is_file():
        return [root]
    bundles: List[Path] = []
    for child in sorted(root.iterdir()):
        if not child.is_dir() or child.name.startswith(".tmp-"):
            continue
        if (child / "incident.json").is_file():
            bundles.append(child)
        else:
            bundles.extend(
                sub
                for sub in sorted(child.iterdir())
                if sub.is_dir()
                and not sub.name.startswith(".tmp-")
                and (sub / "incident.json").is_file()
            )
    return bundles


def _read_jsonl(path: Path) -> List[dict]:
    """Parse a jsonl file, tolerating a torn tail."""
    if not path.is_file():
        return []
    records: List[dict] = []
    with path.open("r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return records


def load_bundle(path) -> dict:
    """Load one bundle directory into a dict.

    Keys: ``manifest``, ``spans``, ``timeline`` (``None`` if absent or
    unreadable), ``health``.  Tolerates torn span/health tails — a
    bundle interrupted mid-write still yields its intact files.
    """
    bundle = Path(path)
    manifest_path = bundle / "incident.json"
    if not manifest_path.is_file():
        raise FileNotFoundError(f"not an incident bundle: {bundle}")
    manifest = json.loads(manifest_path.read_text())
    timeline = None
    timeline_path = bundle / "timeline.json"
    if timeline_path.is_file():
        try:
            timeline = json.loads(timeline_path.read_text())
        except json.JSONDecodeError:
            timeline = None
    return {
        "path": bundle,
        "manifest": manifest,
        "spans": _read_jsonl(bundle / "spans.jsonl"),
        "timeline": timeline,
        "health": _read_jsonl(bundle / "health.jsonl"),
    }


def explain_bundle(path, sherlock=None):
    """Diagnose a bundle from its own retained metric timeline.

    Rebuilds the bundle's timeline as a rates dataset (the dogfood
    path), regularises it, frames the manifest's abnormal/normal window
    as a :class:`~repro.data.regions.RegionSpec`, and runs
    ``DBSherlock.explain``.  Returns ``(explanation, dataset, spec)``.

    ``sherlock`` defaults to a fresh ``DBSherlock()`` (predicates only,
    no confidence); pass one loaded with causal models to rank causes.
    """
    from repro.core.explain import DBSherlock
    from repro.data.preprocess import regularize_dataset
    from repro.data.regions import RegionSpec
    from repro.obs.dogfood import MetricsTimeline

    bundle = load_bundle(path)
    timeline = bundle["timeline"]
    if not timeline or len(timeline.get("samples", ())) < 2:
        raise ValueError(f"bundle has no usable timeline: {path}")
    window = bundle["manifest"].get("window") or {}
    if not window.get("abnormal"):
        raise ValueError(f"bundle window has no abnormal region: {path}")
    mt = MetricsTimeline.from_samples(
        [(float(t), dict(row)) for t, row in timeline["samples"]],
        kinds=timeline.get("kinds"),
        interval=float(timeline.get("interval", 1.0)),
    )
    dataset = mt.to_dataset(
        rates=True, name=f"incident:{bundle['manifest']['tenant']}"
    )
    dataset, _report = regularize_dataset(dataset)
    spec = RegionSpec.from_bounds(
        abnormal=[tuple(window["abnormal"])],
        normal=[tuple(window["normal"])] if window.get("normal") else None,
    )
    if sherlock is None:
        sherlock = DBSherlock()
    explanation = sherlock.explain(dataset, spec)
    return explanation, dataset, spec
