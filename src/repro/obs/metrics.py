"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One global :data:`REGISTRY` (the Prometheus model, stdlib-only) backs
every counter the pipeline used to keep ad hoc — cache hits/misses,
supervisor/WAL tick counts, quarantine events, reconciliation coverage —
plus the latency histograms added by the tracing layer.  Instrumented
modules call :meth:`MetricsRegistry.counter` & co. at import time;
creation is get-or-create, so two modules naming the same metric share
one instrument and re-imports are harmless.

Exporters: :meth:`MetricsRegistry.to_prometheus` (text exposition
format) and :meth:`MetricsRegistry.to_json` / :meth:`snapshot` (plain
dicts — what :mod:`repro.obs.dogfood` samples into a ``Dataset``).

Instruments are deliberately label-free: a label set would turn each
metric into a family keyed by label values, and nothing in the pipeline
needs that cardinality — distinct code paths get distinct metric names
(``repro_dbscan_grid_fits_total`` vs ``repro_dbscan_dense_fits_total``),
which also keeps the dogfood ``Dataset`` attribute list stable.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram upper bounds (seconds) — spans ~1 ms to 10 s, which
#: covers everything from a single stream tick to a full suite build.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """Monotonically increasing count (resets only via registry reset)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A value that can go up and down (coverage, resident bytes, ...)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram of observations (cumulative, Prometheus-style)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (upper bound, count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def _reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0


class MetricsRegistry:
    """Name → instrument map with get-or-create semantics and exporters."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Current values as plain dicts, keyed by metric name."""
        out: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "kind": "histogram",
                    "help": metric.help,
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        [bound, count] for bound, count in metric.bucket_counts()
                    ],
                }
            else:
                out[name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "value": metric.value,
                }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """Snapshot serialized as JSON (``inf`` bucket bound → ``"+Inf"``)."""
        snap = self.snapshot()
        for entry in snap.values():
            if entry["kind"] == "histogram":
                entry["buckets"] = [
                    ["+Inf" if bound == float("inf") else bound, count]
                    for bound, count in entry["buckets"]
                ]
        return json.dumps(snap, indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.bucket_counts():
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{name}_sum {_fmt(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float the Prometheus way: integers without a trailing .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: The process-wide registry every pipeline module registers against.
REGISTRY = MetricsRegistry()
