"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One global :data:`REGISTRY` (the Prometheus model, stdlib-only) backs
every counter the pipeline used to keep ad hoc — cache hits/misses,
supervisor/WAL tick counts, quarantine events, reconciliation coverage —
plus the latency histograms added by the tracing layer.  Instrumented
modules call :meth:`MetricsRegistry.counter` & co. at import time;
creation is get-or-create, so two modules naming the same metric share
one instrument and re-imports are harmless.

Exporters: :meth:`MetricsRegistry.to_prometheus` (text exposition
format) and :meth:`MetricsRegistry.to_json` / :meth:`snapshot` (plain
dicts — what :mod:`repro.obs.dogfood` samples into a ``Dataset``).

Single-stream instruments are label-free: distinct code paths get
distinct metric names (``repro_dbscan_grid_fits_total`` vs
``repro_dbscan_dense_fits_total``), which also keeps the dogfood
``Dataset`` attribute list stable.  The fleet layer
(:mod:`repro.fleet.scheduler`) is the one consumer that genuinely needs
label cardinality — per-tenant lag/shed/verdict series — so
:meth:`MetricsRegistry.counter` & co. accept an optional ``labelnames``
tuple and then return a :class:`MetricFamily` whose ``labels(...)``
children are ordinary instruments exported as ``name{tenant="t42"}``.
Label-free creation is unchanged, so every pre-fleet call site behaves
identically.

The fleet failure-containment layer adds its own instrument family on
top: ``repro_fleet_diagnosis_failures_total{tenant=…}`` and
``…_retries_total`` (worker failures and their backoff retries),
``repro_fleet_deadline_misses_total{tier="soft"|"hard"}`` and
``repro_fleet_degraded_rankings_total`` (deadline tiers),
``repro_fleet_tenant_health{tenant=…}`` /
``repro_fleet_health_transitions_total{state=…}`` (the health ladder),
and ``repro_fleet_breaker_state{tenant=…}`` /
``…_breaker_opens_total`` / ``…_breaker_readmits_total`` (per-tenant
circuit breakers).  ``repro-sherlock fleet status`` renders all of them
from one :meth:`snapshot`.

The storage-durability layer (:mod:`repro.faults.fs`,
:mod:`repro.stream.durability`) publishes the ``repro_storage_*``
family: ``repro_storage_write_errors_total`` /
``…_read_errors_total`` (I/O failures and corrupt payloads observed by
persistence paths), ``…_faults_injected_total{kind=…}`` (shim faults
fired), ``…_retries_total`` (transient errors absorbed by backoff),
``…_degraded_transitions_total`` / ``…_repromotions_total`` /
``repro_storage_degraded_tenants`` (the degraded in-memory persistence
mode), ``…_volatile_ticks_total`` / ``…_volatile_dropped_total`` (the
acknowledged-but-volatile buffer), ``…_wal_corrupt_records_total``
(CRC-failed records skipped by WAL replay),
``…_checkpoint_fallbacks_total`` (generation fallbacks), plus the WAL
pressure gauges ``repro_fleet_wal_bytes{tenant=…}`` /
``repro_fleet_wal_bytes_total`` and the per-tenant
``repro_fleet_tenant_durability{tenant=…}`` mode gauge behind the
durability column of ``fleet status``.
"""

from __future__ import annotations

import json
import re
import threading
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "TimelineRing",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "FINE_BUCKETS",
    "MS_BUCKETS",
    "COUNT_BUCKETS",
]

#: Default histogram upper bounds (seconds) — spans ~1 ms to 10 s, which
#: covers everything from a single stream tick to a full suite build.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Fine-grained histogram bounds for the fleet engine: the amortized
#: per-stream tick cost target is sub-100 µs, so the default ladder's
#: 1 ms bottom bucket would swallow every observation.  The µs-scale
#: rungs are prepended to ``DEFAULT_BUCKETS`` (not substituted), so a
#: fleet histogram can still resolve the occasional slow outlier while
#: single-stream metrics keep the original bucket set untouched.
FINE_BUCKETS: Tuple[float, ...] = (
    0.000001,
    0.0000025,
    0.000005,
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
) + DEFAULT_BUCKETS

#: Millisecond-denominated ladder for instruments whose *unit* is ms
#: rather than seconds (``repro_fleet_fallout_ms``,
#: ``repro_fleet_diagnosis_lock_wait_ms``): spans 1 µs to 10 s expressed
#: in milliseconds, so a storm tick that batches thousands of fallout
#: streams and a single sub-millisecond lock wait both land in a
#: resolvable bucket.
MS_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)

#: Cardinality ladder for histograms that count things per event (how
#: many streams fell out of the vectorized path this tick) instead of
#: timing them.  Powers-of-roughly-ten up to 100k tenants.
COUNT_BUCKETS: Tuple[float, ...] = (
    0.0,
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
    25000.0,
    50000.0,
    100000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _render_labels(labelnames: Sequence[str], values: Sequence[str]) -> str:
    return ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )


class Counter:
    """Monotonically increasing count (resets only via registry reset)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """A value that can go up and down (coverage, resident bytes, ...)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram of observations (cumulative, Prometheus-style)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_exemplar", "_lock")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._exemplar: Optional[Tuple[float, str]] = None
        self._lock = threading.Lock()

    def observe(
        self, value: Union[int, float], exemplar: Optional[str] = None
    ) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None and (
                self._exemplar is None or value >= self._exemplar[0]
            ):
                self._exemplar = (value, exemplar)

    @property
    def exemplar(self) -> Optional[Tuple[float, str]]:
        """``(value, trace_id)`` of the worst exemplar-tagged observation."""
        return self._exemplar

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (upper bound, count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def _reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._exemplar = None


class MetricFamily:
    """A labeled metric: one name, one child instrument per label-value set.

    Children are created lazily by :meth:`labels` (get-or-create, like
    the registry itself) and are plain :class:`Counter` /
    :class:`Gauge` / :class:`Histogram` instances, so call sites hold a
    child handle and pay zero per-observation label cost.  Exporters
    render each child as ``name{label="value"}``.
    """

    __slots__ = ("name", "help", "labelnames", "_cls", "_kwargs",
                 "_children", "_rendered", "_lock")

    def __init__(self, cls, name: str, help: str,
                 labelnames: Sequence[str], **kwargs) -> None:
        labelnames = tuple(labelnames)
        if not labelnames:
            raise ValueError(f"metric family {name!r} needs label names")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._cls = cls
        self._kwargs = kwargs
        self._children: Dict[Tuple[str, ...], object] = {}
        self._rendered: Dict[Tuple[str, ...], str] = {}
        self._lock = threading.Lock()

    @property
    def kind(self) -> str:
        return self._cls.kind

    def labels(self, *values, **kv):
        """The child instrument for one label-value combination."""
        if values and kv:
            raise ValueError("pass label values positionally or by name")
        if kv:
            if set(kv) != set(self.labelnames):
                raise ValueError(
                    f"family {self.name!r} expects labels "
                    f"{self.labelnames}, got {sorted(kv)}"
                )
            values = tuple(str(kv[name]) for name in self.labelnames)
        else:
            if len(values) != len(self.labelnames):
                raise ValueError(
                    f"family {self.name!r} expects "
                    f"{len(self.labelnames)} label values"
                )
            values = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._cls(self.name, self.help, **self._kwargs)
                self._children[values] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label values, child)`` pairs, sorted by label values."""
        with self._lock:
            return sorted(self._children.items())

    def rendered_children(self) -> List[Tuple[str, Tuple[str, ...], object]]:
        """``(rendered name, label values, child)``, sorted by values.

        The rendered ``name{label="value"}`` string for each child is
        cached on first use — label values are immutable once a child
        exists, so :meth:`MetricsRegistry.flat_sample` callers (the
        per-round timeline ring) never pay the f-string cost twice.
        """
        with self._lock:
            out = []
            for values in sorted(self._children):
                rendered = self._rendered.get(values)
                if rendered is None:
                    rendered = (
                        f"{self.name}{{"
                        f"{_render_labels(self.labelnames, values)}}}"
                    )
                    self._rendered[values] = rendered
                out.append((rendered, values, self._children[values]))
            return out

    def _reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child._reset()


class TimelineRing:
    """A bounded ring of flat registry samples — retained metric history.

    The dogfood ``MetricsTimeline`` grows without bound and raises when
    time fails to advance; the ring is its always-on counterpart: fixed
    memory (``maxlen`` samples), monotonicized timestamps (two callers
    sampling "at the same time" advance by ``interval`` instead of
    raising), and a :meth:`window` accessor for incident bundles.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        max_samples: int = 512,
        interval: float = 1.0,
    ) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = float(interval)
        self._samples: "deque[Tuple[float, Dict[str, float]]]" = deque(
            maxlen=int(max_samples)
        )
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    def sample(self, t: Optional[float] = None) -> float:
        """Append one flat registry sample; returns the stamped time."""
        row, kinds = self.registry.flat_sample()
        with self._lock:
            last = self._samples[-1][0] if self._samples else None
            if t is None:
                t = 0.0 if last is None else last + self.interval
            t = float(t)
            if last is not None and t <= last:
                t = last + self.interval
            self._samples.append((t, row))
            for name, kind in kinds.items():
                self._kinds.setdefault(name, kind)
        return t

    def window(self, n: Optional[int] = None) -> List[Tuple[float, Dict[str, float]]]:
        """The trailing *n* samples (all of them when ``n`` is ``None``)."""
        with self._lock:
            samples = list(self._samples)
        if n is not None:
            samples = samples[-int(n):]
        return samples

    def kinds(self) -> Dict[str, str]:
        """Attribute → metric kind for every attribute ever sampled."""
        with self._lock:
            return dict(self._kinds)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self._kinds.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class MetricsRegistry:
    """Name → instrument map with get-or-create semantics and exporters."""

    def __init__(self) -> None:
        self._metrics: Dict[
            str, Union[Counter, Gauge, Histogram, MetricFamily]
        ] = {}
        self._timelines: Dict[str, TimelineRing] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        cls,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        **kwargs,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if labelnames:
                    if (
                        not isinstance(existing, MetricFamily)
                        or existing._cls is not cls
                        or existing.labelnames != labelnames
                    ):
                        raise TypeError(
                            f"metric {name!r} already registered with a "
                            f"different kind or label set"
                        )
                    return existing
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            if labelnames:
                metric = MetricFamily(cls, name, help, labelnames, **kwargs)
            else:
                metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Union[Counter, MetricFamily]:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Union[Gauge, MetricFamily]:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Union[Histogram, MetricFamily]:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(
        self, name: str
    ) -> Optional[Union[Counter, Gauge, Histogram, MetricFamily]]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def timeline(
        self, key: str, max_samples: int = 512, interval: float = 1.0
    ) -> TimelineRing:
        """Get-or-create the named retained-sample ring."""
        with self._lock:
            ring = self._timelines.get(key)
            if ring is None:
                ring = TimelineRing(self, max_samples, interval)
                self._timelines[key] = ring
            return ring

    def timelines(self) -> Dict[str, TimelineRing]:
        with self._lock:
            return dict(self._timelines)

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid); retained
        timeline rings and histogram exemplars clear too, so benches and
        tests that share the process registry stay isolated."""
        with self._lock:
            metrics = list(self._metrics.values())
            rings = list(self._timelines.values())
        for metric in metrics:
            metric._reset()
        # Rings sample the registry under their own lock; clearing them
        # outside the registry lock avoids a lock-order inversion with a
        # concurrent ring.sample().
        for ring in rings:
            ring.clear()

    def flat_sample(self) -> Tuple[Dict[str, float], Dict[str, str]]:
        """One flat ``attribute → float`` row plus attribute kinds.

        The fast-path sibling of :meth:`snapshot` +
        ``dogfood.flatten_snapshot``: counters/gauges contribute their
        value, histograms contribute ``<name>_count``/``<name>_sum``
        (no bucket vectors are materialised), families expand to their
        rendered per-label names.  Cheap enough for per-round sampling.
        """
        row: Dict[str, float] = {}
        kinds: Dict[str, str] = {}
        for name, metric, _labels in self._iter_instruments():
            if isinstance(metric, Histogram):
                row[name + "_count"] = float(metric.count)
                row[name + "_sum"] = float(metric.sum)
                kinds[name] = "histogram"
            else:
                row[name] = float(metric.value)
                kinds[name] = metric.kind
        return row, kinds

    def _iter_instruments(self):
        """Yield ``(rendered name, instrument, labels dict | None)``.

        Families expand to one entry per child, rendered as
        ``name{label="value"}``; plain instruments pass through.
        """
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, MetricFamily):
                for rendered, values, child in metric.rendered_children():
                    yield rendered, child, dict(
                        zip(metric.labelnames, values)
                    )
            else:
                yield name, metric, None

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Current values as plain dicts, keyed by (rendered) metric name.

        Family children appear under their rendered ``name{k="v"}`` key
        and additionally carry a ``"labels"`` dict so consumers (the
        ``fleet status`` CLI) can group per-tenant series without
        parsing the rendered name.
        """
        out: Dict[str, dict] = {}
        for name, metric, labels in self._iter_instruments():
            if isinstance(metric, Histogram):
                entry = {
                    "kind": "histogram",
                    "help": metric.help,
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        [bound, count] for bound, count in metric.bucket_counts()
                    ],
                }
                exemplar = metric.exemplar
                if exemplar is not None:
                    entry["exemplar"] = {
                        "value": exemplar[0],
                        "trace_id": exemplar[1],
                    }
            else:
                entry = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "value": metric.value,
                }
            if labels is not None:
                entry["labels"] = labels
            out[name] = entry
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """Snapshot serialized as JSON (``inf`` bucket bound → ``"+Inf"``)."""
        snap = self.snapshot()
        for entry in snap.values():
            if entry["kind"] == "histogram":
                entry["buckets"] = [
                    ["+Inf" if bound == float("inf") else bound, count]
                    for bound, count in entry["buckets"]
                ]
        return json.dumps(snap, indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, MetricFamily):
                for values, child in metric.children():
                    label_body = _render_labels(metric.labelnames, values)
                    if isinstance(child, Histogram):
                        for bound, count in child.bucket_counts():
                            le = "+Inf" if bound == float("inf") else _fmt(bound)
                            lines.append(
                                f'{name}_bucket{{{label_body},le="{le}"}} '
                                f"{count}"
                            )
                        lines.append(
                            f"{name}_sum{{{label_body}}} {_fmt(child.sum)}"
                        )
                        lines.append(
                            f"{name}_count{{{label_body}}} {child.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{{{label_body}}} {_fmt(child.value)}"
                        )
            elif isinstance(metric, Histogram):
                for bound, count in metric.bucket_counts():
                    le = "+Inf" if bound == float("inf") else _fmt(bound)
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{name}_sum {_fmt(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float the Prometheus way: integers without a trailing .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: The process-wide registry every pipeline module registers against.
REGISTRY = MetricsRegistry()
