"""Render traces and metric snapshots as terminal text.

Backs the ``repro-sherlock obs report`` CLI: given a JSON-lines trace
(and optionally a metrics-snapshot JSON), prints the span tree of the
slowest trace, aggregate per-stage wall times, and a metric summary with
:func:`repro.viz.ascii.sparkline` histograms.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.viz.ascii import sparkline

__all__ = ["span_tree", "stage_summary", "metrics_summary", "render_report"]


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def span_tree(
    events: Sequence[dict], max_spans: int = 40
) -> str:
    """The slowest trace's spans as an indented tree with wall times."""
    if not events:
        return "(no spans recorded)"
    by_trace: Dict[str, List[dict]] = defaultdict(list)
    for event in events:
        by_trace[event["trace_id"]].append(event)
    # the trace whose root work is largest
    trace = max(
        by_trace.values(),
        key=lambda evs: sum(
            e["duration_s"] for e in evs if e.get("parent_id") is None
        ),
    )
    children: Dict[Optional[str], List[dict]] = defaultdict(list)
    ids = {e["span_id"] for e in trace}
    for event in trace:
        parent = event.get("parent_id")
        # a worker span whose parent lives in another recorder still
        # attaches when the parent event is present; otherwise treat it
        # as a root so nothing is silently dropped
        children[parent if parent in ids else None].append(event)
    for siblings in children.values():
        siblings.sort(key=lambda e: e["start_s"])

    lines: List[str] = []

    def walk(parent_id: Optional[str], depth: int) -> None:
        for event in children.get(parent_id, []):
            if len(lines) >= max_spans:
                return
            attrs = event.get("attrs") or {}
            note = ""
            if attrs:
                parts = [f"{k}={v}" for k, v in sorted(attrs.items())]
                note = "  [" + ", ".join(parts[:4]) + "]"
            lines.append(
                f"{'  ' * depth}{event['name']:<24} "
                f"{_fmt_s(event['duration_s']):>9}{note}"
            )
            walk(event["span_id"], depth + 1)

    walk(None, 0)
    if len(lines) >= max_spans:
        lines.append(f"... ({len(trace)} spans total)")
    return "\n".join(lines)


def stage_summary(events: Sequence[dict], top: int = 12) -> str:
    """Aggregate wall time per span name, slowest first."""
    if not events:
        return "(no spans recorded)"
    totals: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for event in events:
        totals[event["name"]] += event["duration_s"]
        counts[event["name"]] += 1
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:top]
    width = max(len(name) for name, _total in ranked)
    lines = []
    for name, total in ranked:
        n = counts[name]
        lines.append(
            f"{name:<{width}}  total {_fmt_s(total):>9}  "
            f"x{n:<5} avg {_fmt_s(total / n):>9}"
        )
    return "\n".join(lines)


def metrics_summary(snapshot: Dict[str, dict]) -> str:
    """One line per metric: value, or count/sum + bucket sparkline."""
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry["kind"] == "histogram":
            cumulative = [count for _bound, count in entry["buckets"]]
            per_bucket = [
                c - (cumulative[i - 1] if i else 0)
                for i, c in enumerate(cumulative)
            ]
            spark = sparkline(per_bucket) if entry["count"] else ""
            lines.append(
                f"{name:<{width}}  count={entry['count']} "
                f"sum={entry['sum']:.4g} {spark}"
            )
        else:
            lines.append(f"{name:<{width}}  {entry['value']:.6g}")
    return "\n".join(lines)


def render_report(
    events: Sequence[dict],
    snapshot: Optional[Dict[str, dict]] = None,
    max_spans: int = 40,
) -> str:
    """The full ``obs report`` text: tree, stage totals, metrics."""
    sections = [
        "== Slowest trace ==",
        span_tree(events, max_spans=max_spans),
        "",
        "== Stage totals ==",
        stage_summary(events),
    ]
    if snapshot is not None:
        sections += ["", "== Metrics ==", metrics_summary(snapshot)]
    return "\n".join(sections)
