"""CI smoke: a traced diagnosis must emit a valid, complete span tree.

Runs one ``DBSherlock.explain`` on a small simulated incident with a
:class:`~repro.obs.trace.TraceRecorder` installed, then asserts

* every emitted event passes :func:`repro.obs.trace.validate_event`,
* the span tree covers the full Algorithm 1 pipeline — partition →
  label → filter → fill → extract → prune → rank — plus the ``explain``
  and ``generate_predicates`` coordinators,
* every non-root span's parent is a recorded span of the same trace,
* each stage carries a positive wall time.

Artifacts (uploaded by CI): the JSON-lines trace and a JSON metrics
snapshot.  Run locally with ``python -m repro.obs.selfcheck [outdir]``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.obs import metrics, trace
from repro.obs.report import render_report

__all__ = ["run_selfcheck", "main"]

#: Span names a traced explain must produce (the Algorithm 1 pipeline).
REQUIRED_SPANS = (
    "explain",
    "generate_predicates",
    "partition",
    "label",
    "filter",
    "fill",
    "extract",
    "prune",
    "rank",
)


def run_selfcheck(out_dir: Optional[Path] = None) -> List[dict]:
    """Trace one explain, validate every event, write CI artifacts.

    Returns the validated events; raises ``AssertionError`` or
    ``ValueError`` on any schema or coverage violation.
    """
    from repro.core.explain import DBSherlock
    from repro.core.knowledge import MYSQL_LINUX_RULES
    from repro.eval.harness import simulate_run

    out_dir = Path(out_dir) if out_dir is not None else Path.cwd()
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / "obs_trace.jsonl"
    if trace_path.exists():
        trace_path.unlink()

    dataset, spec, cause = simulate_run(
        "cpu_saturation", duration_s=30, normal_s=60, workload="tpcc", seed=11
    )
    sherlock = DBSherlock(rules=MYSQL_LINUX_RULES)
    with trace.recording(path=trace_path) as recorder:
        explanation = sherlock.explain(dataset, spec)
        # a second pass through feedback + diagnose exercises rank with a
        # stored model, so Eq. 3 confidence metrics are non-empty too
        sherlock.feedback(cause, explanation, dataset)
        sherlock.diagnose(dataset, spec)
    events = recorder.events

    for event in events:
        trace.validate_event(event)

    names = {event["name"] for event in events}
    missing = [name for name in REQUIRED_SPANS if name not in names]
    assert not missing, f"span tree missing stages: {missing}"

    by_trace = {}
    for event in events:
        by_trace.setdefault(event["trace_id"], set()).add(event["span_id"])
    for event in events:
        parent = event["parent_id"]
        assert parent is None or parent in by_trace[event["trace_id"]], (
            f"span {event['name']} has unrecorded parent {parent}"
        )

    for event in events:
        if event["name"] in REQUIRED_SPANS:
            assert event["duration_s"] > 0, (
                f"stage {event['name']} recorded no wall time"
            )

    file_events = trace.load_trace(trace_path)
    assert len(file_events) == len(events), (
        f"sink holds {len(file_events)} events, recorder {len(events)}"
    )

    _check_flight()

    (out_dir / "obs_metrics.json").write_text(metrics.REGISTRY.to_json())
    return events


def _check_flight() -> None:
    """Flight-recorder leg: tail sampling must emit schema-valid spans.

    Installs a :class:`~repro.obs.flight.FlightRecorder`, drives one
    boring round and one interesting round through the ``span``/``stage``
    helpers, and asserts the boring round is discarded while the
    interesting round's retained events all pass
    :func:`~repro.obs.trace.validate_event`.
    """
    from repro.obs.flight import FlightRecorder

    previous = trace.get_recorder()
    if previous is not None:
        trace.uninstall()
    flight = FlightRecorder(keep_ticks=4)
    trace.install(flight)
    try:
        flight.begin_round(0)
        with trace.span("fleet.round", round=0):
            trace.stage("fleet.tick", 0.001, streams=2)
        kept = flight.end_round({})
        assert kept == (), f"boring round was retained: {kept}"
        assert flight.bundle_events("t0") == [], (
            "discarded round left retained events"
        )

        flight.begin_round(1)
        with trace.span("fleet.round", round=1):
            trace.stage("fleet.tick", 0.001, streams=2)
        kept = flight.end_round({"t0": ["verdict"]})
        assert kept == ("verdict",), f"interesting round not kept: {kept}"
        retained = flight.bundle_events("t0")
        assert len(retained) == 2, (
            f"expected 2 retained spans, got {len(retained)}"
        )
        for event in retained:
            trace.validate_event(event)
        names = {event["name"] for event in retained}
        assert names == {"fleet.round", "fleet.tick"}, (
            f"unexpected retained span names: {names}"
        )
    finally:
        trace.uninstall()
        if previous is not None:
            trace.install(previous)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    out_dir = Path(argv[0]) if argv else Path.cwd()
    events = run_selfcheck(out_dir)
    print(
        f"obs selfcheck OK: {len(events)} span events validated, "
        f"artifacts in {out_dir}"
    )
    print()
    print(render_report(events, metrics.REGISTRY.snapshot()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
