"""Hierarchical span tracing for the diagnosis pipeline.

The pipeline explains other systems' latency; this module makes its own
latency explainable.  A *span* is one timed stage of work (``explain``,
``generate_predicates``, ``rank`` ...) recorded as a JSON-lines event
with a monotonic duration, a wall-clock start, and a parent link — so a
full traced run yields a tree whose per-stage wall times attribute every
millisecond of a diagnosis.

Design constraints (mirrors the perf layer's bitwise-equivalence bar):

* **Zero dependencies** — stdlib only; importable from every layer.
* **Allocation-free when disabled** — :func:`span` returns one shared
  no-op context manager when no recorder is installed, and
  :func:`enabled` is a single global load so hot paths can skip building
  attribute dicts entirely.  ``benchmarks/bench_obs_overhead.py`` holds
  the disabled path under 2 % on the perf-engine workload.
* **Context propagation** — the current span lives in a
  :class:`contextvars.ContextVar`, so nesting needs no plumbing, and
  :func:`current_context`/:func:`attached` carry the (trace id, span id,
  sink path) triple across :func:`repro.perf.parallel.parallel_map`
  process boundaries: worker spans append to the same JSON-lines file
  and parent onto the coordinating span.

Events are plain dicts with a fixed shape (:data:`EVENT_FIELDS`);
:func:`validate_event` is the schema check the CI obs smoke runs over
every emitted event.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "TraceRecorder",
    "span",
    "stage",
    "add_attrs",
    "enabled",
    "install",
    "uninstall",
    "get_recorder",
    "recording",
    "current_context",
    "attached",
    "load_trace",
    "validate_event",
    "EVENT_FIELDS",
]

import contextvars

#: Field name → (required type(s), nullable).  The whole event schema:
#: every event carries exactly these keys (``attrs`` values are JSON
#: scalars).  ``start_s`` is wall-clock (``time.time``); ``duration_s``
#: is a monotonic (``time.perf_counter``) difference.
EVENT_FIELDS: Dict[str, Tuple[tuple, bool]] = {
    "name": ((str,), False),
    "trace_id": ((str,), False),
    "span_id": ((str,), False),
    "parent_id": ((str,), True),
    "start_s": ((float, int), False),
    "duration_s": ((float, int), False),
    "pid": ((int,), False),
    "attrs": ((dict,), False),
}

_ATTR_TYPES = (str, int, float, bool, type(None))

_CURRENT: "contextvars.ContextVar[Optional[_Context]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
_RECORDER: Optional["TraceRecorder"] = None
_IDS = itertools.count(1)


def _new_id(prefix: str = "s") -> str:
    """Process-unique id (pid-prefixed so forked workers never collide)."""
    return f"{prefix}{os.getpid():x}-{next(_IDS):x}"


class _Context:
    """A parent marker carrying just the ids (used for remote attach)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class _NullSpan:
    """The shared disabled-path span: enters, exits, absorbs attributes."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; use via ``with span("name", key=value):``."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
        "_start_wall",
        "_start_mono",
    )

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is None:
            self.trace_id = _new_id("t")
            self.parent_id = None
        else:
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        self.span_id = _new_id()
        self._token = _CURRENT.set(self)
        self._start_wall = time.time()
        self._start_mono = time.perf_counter()
        return self

    def set(self, **attrs) -> "Span":
        """Attach attributes to this span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_mono
        _CURRENT.reset(self._token)
        recorder = _RECORDER
        if recorder is not None:
            if exc_type is not None:
                self.attrs["error"] = exc_type.__name__
            recorder.record(
                {
                    "name": self.name,
                    "trace_id": self.trace_id,
                    "span_id": self.span_id,
                    "parent_id": self.parent_id,
                    "start_s": self._start_wall,
                    "duration_s": duration,
                    "pid": os.getpid(),
                    "attrs": self.attrs,
                }
            )
        return False


class TraceRecorder:
    """Collects span events in memory and/or appends them as JSON lines.

    Parameters
    ----------
    path:
        Optional JSON-lines sink.  Opened in append mode on first use;
        one event per line, flushed per event, so concurrent worker
        processes (which inherit or re-open the same path) interleave at
        line granularity.
    keep:
        Keep events in :attr:`events` (default).  Workers re-opening the
        sink pass ``keep=False`` — their events live only in the file.
    """

    def __init__(
        self, path: Optional[Union[str, Path]] = None, keep: bool = True
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.keep = bool(keep)
        self.events: List[dict] = []
        self._lock = threading.Lock()
        self._fh = None

    def record(self, event: dict) -> None:
        """Store one span event (thread-safe)."""
        with self._lock:
            if self.keep:
                self.events.append(event)
            if self.path is not None:
                if self._fh is None:
                    self._fh = self.path.open("a")
                json.dump(event, self._fh, separators=(",", ":"))
                self._fh.write("\n")
                self._fh.flush()

    def close(self) -> None:
        """Close the JSON-lines sink (events already written remain)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# ----------------------------------------------------------------------
# Global recorder management
# ----------------------------------------------------------------------
def install(recorder: TraceRecorder) -> TraceRecorder:
    """Make *recorder* the process-wide span sink; returns it."""
    global _RECORDER
    _RECORDER = recorder
    return recorder


def uninstall() -> Optional[TraceRecorder]:
    """Disable tracing; returns the recorder that was installed, if any."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


def get_recorder() -> Optional[TraceRecorder]:
    """The installed recorder (``None`` when tracing is disabled)."""
    return _RECORDER


def enabled() -> bool:
    """True when spans are being recorded.

    Hot paths check this once and skip attribute-building entirely when
    disabled — the check is a single module-global load.
    """
    return _RECORDER is not None


@contextmanager
def recording(
    path: Optional[Union[str, Path]] = None, keep: bool = True
) -> Iterator[TraceRecorder]:
    """Install a fresh recorder for the duration of the block.

    The previously installed recorder (if any) is restored on exit, so
    tests and CLI runs can trace without clobbering ambient state.
    """
    global _RECORDER
    previous = _RECORDER
    recorder = TraceRecorder(path=path, keep=keep)
    _RECORDER = recorder
    try:
        yield recorder
    finally:
        _RECORDER = previous
        recorder.close()


# ----------------------------------------------------------------------
# Span creation
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """Open a span named *name*; a no-op when tracing is disabled.

    ::

        with span("generate_predicates", dataset=ds.name) as sp:
            ...
            sp.set(predicates_kept=3)
    """
    if _RECORDER is None:
        return _NULL_SPAN
    return Span(name, attrs)


def stage(name: str, duration_s: float, **attrs) -> None:
    """Record an already-measured stage as a child of the current span.

    Hot loops accumulate per-stage timings in plain floats and emit one
    synthetic span per stage afterwards — same tree, no per-iteration
    context-manager overhead.  No-op when tracing is disabled.
    """
    recorder = _RECORDER
    if recorder is None:
        return
    parent = _CURRENT.get()
    if parent is None:
        trace_id, parent_id = _new_id("t"), None
    else:
        trace_id, parent_id = parent.trace_id, parent.span_id
    recorder.record(
        {
            "name": name,
            "trace_id": trace_id,
            "span_id": _new_id(),
            "parent_id": parent_id,
            "start_s": time.time() - duration_s,
            "duration_s": float(duration_s),
            "pid": os.getpid(),
            "attrs": attrs,
        }
    )


def add_attrs(**attrs) -> None:
    """Attach attributes to the innermost live span (no-op otherwise)."""
    if _RECORDER is None:
        return
    current = _CURRENT.get()
    if isinstance(current, Span):
        current.attrs.update(attrs)


# ----------------------------------------------------------------------
# Cross-process propagation (parallel_map workers)
# ----------------------------------------------------------------------
def current_context() -> Optional[Tuple[str, str, Optional[str]]]:
    """The (trace id, span id, sink path) triple to hand a worker.

    ``None`` when tracing is disabled or no span is open — workers then
    run untraced.
    """
    recorder = _RECORDER
    if recorder is None:
        return None
    current = _CURRENT.get()
    if current is None:
        return None
    path = str(recorder.path) if recorder.path is not None else None
    return (current.trace_id, current.span_id, path)


@contextmanager
def attached(context: Optional[Tuple[str, str, Optional[str]]]) -> Iterator[None]:
    """Adopt a parent span context produced by :func:`current_context`.

    Inside the block, new spans parent onto the remote span and — when
    the context names a sink path and no recorder is installed (a
    spawned worker) — are appended to that file.  With ``None`` the
    block runs unchanged.
    """
    global _RECORDER
    if context is None:
        yield
        return
    trace_id, span_id, path = context
    installed_here = False
    if _RECORDER is None and path is not None:
        _RECORDER = TraceRecorder(path=path, keep=False)
        installed_here = True
    token = _CURRENT.set(_Context(trace_id, span_id))
    try:
        yield
    finally:
        _CURRENT.reset(token)
        if installed_here:
            recorder, _RECORDER = _RECORDER, None
            if recorder is not None:
                recorder.close()


# ----------------------------------------------------------------------
# Event schema
# ----------------------------------------------------------------------
def validate_event(event: dict) -> None:
    """Raise ``ValueError`` unless *event* matches the span-event schema."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be a dict, got {type(event).__name__}")
    extra = set(event) - set(EVENT_FIELDS)
    if extra:
        raise ValueError(f"unknown event fields: {sorted(extra)}")
    for field, (types, nullable) in EVENT_FIELDS.items():
        if field not in event:
            raise ValueError(f"event missing field {field!r}")
        value = event[field]
        if value is None:
            if not nullable:
                raise ValueError(f"field {field!r} must not be null")
            continue
        if not isinstance(value, types) or isinstance(value, bool):
            raise ValueError(
                f"field {field!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if event["duration_s"] < 0:
        raise ValueError("duration_s must be non-negative")
    for key, value in event["attrs"].items():
        if not isinstance(key, str):
            raise ValueError(f"attr key {key!r} must be a string")
        if not isinstance(value, _ATTR_TYPES):
            raise ValueError(
                f"attr {key!r} has non-scalar type {type(value).__name__}"
            )


def load_trace(path: Union[str, Path]) -> List[dict]:
    """Read a JSON-lines trace file (tolerating a torn final line)."""
    events: List[dict] = []
    with Path(path).open("r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail from a killed writer
    return events
