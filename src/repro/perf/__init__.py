"""Shared-representation performance layer for batch diagnosis.

The evaluation protocols (Sections 8.3/8.5) are model x dataset
cross-products: every confidence score (Equation 3) re-discretizes the
same dataset columns into the same partitions, and Algorithm 1 walks
attributes one at a time.  This package amortizes that redundancy:

``cache``     :class:`LabeledSpaceCache` — memoized partition spaces,
              labels, region masks, and normalized region means, shared
              between predicate generation and confidence scoring;
``batch``     batched numeric labeling — all numeric columns discretized
              and counted in one stacked ``np.bincount`` pass;
``parallel``  :func:`parallel_map` — deterministic process-pool mapping
              with a serial fallback and a ``REPRO_JOBS`` override;
``golden``    frozen copies of the original serial implementations, used
              as equivalence ground truth and benchmark baselines.

Every fast path is bitwise-identical to the serial one it replaces;
``tests/test_perf_engine.py`` enforces that.
"""

from repro.perf.batch import label_numeric_batch, potential_power_batch
from repro.perf.cache import LabeledSpaceCache
from repro.perf.parallel import parallel_map, resolve_jobs

__all__ = [
    "LabeledSpaceCache",
    "label_numeric_batch",
    "parallel_map",
    "potential_power_batch",
    "resolve_jobs",
]
