"""Batched numeric labeling: one stacked bincount pass for all attributes.

Algorithm 1 labels each numeric attribute's partitions independently; done
one attribute at a time that is hundreds of (cheap) numpy calls per
dataset.  Here all numeric columns are stacked into one
``(n_attrs, n_rows)`` float64 matrix, per-column partition indices are
computed in one vectorized expression, and the abnormal/normal partition
counts for *every* attribute come from a single offset ``np.bincount``
call per region (column ``j`` owns the index range
``[j*R, (j+1)*R)`` of the flattened count vector).

Bitwise identity with the serial path is load-bearing (the golden-output
tests assert it): the per-element float operations are exactly those of
:meth:`NumericPartitionSpace.partition_indices`, and min/max/bincount are
exact regardless of evaluation order.
"""

from __future__ import annotations

import warnings
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["label_numeric_batch", "potential_power_batch"]


def potential_power_batch(matrix: np.ndarray, window: int) -> np.ndarray:
    """Equation 4 for many attributes (and many streams) at once.

    *matrix* is ``(..., n_rows)`` — any number of leading axes over a
    trailing sample axis, each lane already normalized to [0, 1].  The
    single-stream caller passes ``(n_attrs, n_rows)``; the fleet engine
    passes the whole arena as ``(n_streams, n_attrs, n_rows)``.  Returns
    the potential power with the trailing axis reduced away.  The
    sliding windows are materialized as one ``(..., n_windows, w)``
    stride-tricks view and their medians taken in a single
    ``np.median(axis=-1)`` call, so the result is bitwise-identical to
    calling the scalar :func:`repro.core.anomaly.potential_power` on
    each lane (same window elements, same median reduction) — and
    independent of how lanes are stacked.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim < 2:
        raise ValueError("matrix must be (..., n_rows) with ndim >= 2")
    lead = matrix.shape[:-1]
    n = matrix.shape[-1]
    if 0 in lead or n == 0:
        return np.zeros(lead)
    window = max(min(int(window), n), 1)
    windows = np.lib.stride_tricks.sliding_window_view(matrix, window, axis=-1)
    if np.isnan(matrix).any():
        # degraded telemetry: medians over the valid samples only; windows
        # (or attributes) with no valid samples contribute zero power.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            overall = np.nanmedian(matrix, axis=-1)
            locals_ = np.nanmedian(windows, axis=-1)
            powers = np.nanmax(np.abs(overall[..., None] - locals_), axis=-1)
        return np.nan_to_num(powers, nan=0.0)
    overall = np.median(matrix, axis=-1)
    locals_ = np.median(windows, axis=-1)
    return np.max(np.abs(overall[..., None] - locals_), axis=-1)


def label_numeric_batch(
    dataset,
    attrs: Sequence[str],
    abnormal_mask: np.ndarray,
    normal_mask: np.ndarray,
    n_partitions: int,
) -> Dict[str, Tuple[object, np.ndarray]]:
    """Label every numeric attribute in one pass.

    Returns ``{attr: (NumericPartitionSpace, labels)}`` where both parts
    are bitwise-identical to ``space = NumericPartitionSpace(attr, values,
    n_partitions); space.label(values, abnormal_mask, normal_mask)``.
    """
    from repro.core.partition import Label, NumericPartitionSpace

    attrs = list(attrs)
    if not attrs:
        return {}
    if int(n_partitions) < 1:
        raise ValueError("n_partitions must be at least 1")

    matrix = np.stack([dataset.column(a) for a in attrs], axis=0)
    n_attrs = matrix.shape[0]
    nan = np.isnan(matrix)
    has_nan = bool(nan.any())
    if has_nan:
        # degraded telemetry: min/max over the valid cells per attribute;
        # an all-NaN attribute degrades to a neutral constant space.
        mins = np.where(nan, np.inf, matrix).min(axis=1)
        maxs = np.where(nan, -np.inf, matrix).max(axis=1)
        all_nan = ~np.isfinite(mins)
        mins = np.where(all_nan, 0.0, mins)
        maxs = np.where(all_nan, 0.0, maxs)
    else:
        mins = matrix.min(axis=1)
        maxs = matrix.max(axis=1)
    spans = maxs - mins
    grid = int(n_partitions)
    # Constant columns collapse to a single partition (width 0, index 0);
    # the division guard keeps their indices at exactly 0.
    nparts = np.where(spans > 0, grid, 1).astype(np.int64)
    widths = spans / nparts
    safe_widths = np.where(widths == 0.0, 1.0, widths)
    with np.errstate(invalid="ignore"):
        raw = np.floor((matrix - mins[:, None]) / safe_widths[:, None])
    if has_nan:
        raw = np.where(nan, 0.0, raw)
    idx = np.clip(raw.astype(np.int64), 0, (nparts - 1)[:, None])

    offsets = (np.arange(n_attrs, dtype=np.int64) * grid)[:, None]
    flat = idx + offsets
    if has_nan:
        # NaN cells belong to no partition: drop them from both counts
        valid = ~nan
        counts_abnormal = np.bincount(
            flat[:, abnormal_mask][valid[:, abnormal_mask]],
            minlength=n_attrs * grid,
        ).reshape(n_attrs, grid)
        counts_normal = np.bincount(
            flat[:, normal_mask][valid[:, normal_mask]],
            minlength=n_attrs * grid,
        ).reshape(n_attrs, grid)
    else:
        counts_abnormal = np.bincount(
            flat[:, abnormal_mask].ravel(), minlength=n_attrs * grid
        ).reshape(n_attrs, grid)
        counts_normal = np.bincount(
            flat[:, normal_mask].ravel(), minlength=n_attrs * grid
        ).reshape(n_attrs, grid)

    labels_grid = np.full((n_attrs, grid), int(Label.EMPTY), dtype=np.int64)
    labels_grid[(counts_abnormal > 0) & (counts_normal == 0)] = int(
        Label.ABNORMAL
    )
    labels_grid[(counts_normal > 0) & (counts_abnormal == 0)] = int(
        Label.NORMAL
    )

    out: Dict[str, Tuple[object, np.ndarray]] = {}
    for j, attr in enumerate(attrs):
        space = NumericPartitionSpace.from_stats(
            attr, mins[j], maxs[j], n_partitions
        )
        out[attr] = (space, labels_grid[j, : space.n_partitions].copy())
    return out
