"""Batched numeric labeling: one stacked bincount pass for all attributes.

Algorithm 1 labels each numeric attribute's partitions independently; done
one attribute at a time that is hundreds of (cheap) numpy calls per
dataset.  Here all numeric columns are stacked into one
``(n_attrs, n_rows)`` float64 matrix, per-column partition indices are
computed in one vectorized expression, and the abnormal/normal partition
counts for *every* attribute come from a single offset ``np.bincount``
call per region (column ``j`` owns the index range
``[j*R, (j+1)*R)`` of the flattened count vector).

Bitwise identity with the serial path is load-bearing (the golden-output
tests assert it): the per-element float operations are exactly those of
:meth:`NumericPartitionSpace.partition_indices`, and min/max/bincount are
exact regardless of evaluation order.
"""

from __future__ import annotations

import warnings
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "abnormal_blocks_batch",
    "fill_gaps_batch",
    "filter_partitions_batch",
    "label_numeric_batch",
    "normalize_columns_batch",
    "potential_power_batch",
]


def potential_power_batch(matrix: np.ndarray, window: int) -> np.ndarray:
    """Equation 4 for many attributes (and many streams) at once.

    *matrix* is ``(..., n_rows)`` — any number of leading axes over a
    trailing sample axis, each lane already normalized to [0, 1].  The
    single-stream caller passes ``(n_attrs, n_rows)``; the fleet engine
    passes the whole arena as ``(n_streams, n_attrs, n_rows)``.  Returns
    the potential power with the trailing axis reduced away.  The
    sliding windows are materialized as one ``(..., n_windows, w)``
    stride-tricks view and their medians taken in a single
    ``np.median(axis=-1)`` call, so the result is bitwise-identical to
    calling the scalar :func:`repro.core.anomaly.potential_power` on
    each lane (same window elements, same median reduction) — and
    independent of how lanes are stacked.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim < 2:
        raise ValueError("matrix must be (..., n_rows) with ndim >= 2")
    lead = matrix.shape[:-1]
    n = matrix.shape[-1]
    if 0 in lead or n == 0:
        return np.zeros(lead)
    window = max(min(int(window), n), 1)
    windows = np.lib.stride_tricks.sliding_window_view(matrix, window, axis=-1)
    if np.isnan(matrix).any():
        # degraded telemetry: medians over the valid samples only; windows
        # (or attributes) with no valid samples contribute zero power.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            overall = np.nanmedian(matrix, axis=-1)
            locals_ = np.nanmedian(windows, axis=-1)
            powers = np.nanmax(np.abs(overall[..., None] - locals_), axis=-1)
        return np.nan_to_num(powers, nan=0.0)
    overall = np.median(matrix, axis=-1)
    locals_ = np.median(windows, axis=-1)
    return np.max(np.abs(overall[..., None] - locals_), axis=-1)


def label_numeric_batch(
    dataset,
    attrs: Sequence[str],
    abnormal_mask: np.ndarray,
    normal_mask: np.ndarray,
    n_partitions: int,
) -> Dict[str, Tuple[object, np.ndarray]]:
    """Label every numeric attribute in one pass.

    Returns ``{attr: (NumericPartitionSpace, labels)}`` where both parts
    are bitwise-identical to ``space = NumericPartitionSpace(attr, values,
    n_partitions); space.label(values, abnormal_mask, normal_mask)``.
    """
    from repro.core.partition import Label, NumericPartitionSpace

    attrs = list(attrs)
    if not attrs:
        return {}
    if int(n_partitions) < 1:
        raise ValueError("n_partitions must be at least 1")

    matrix = np.stack([dataset.column(a) for a in attrs], axis=0)
    n_attrs = matrix.shape[0]
    nan = np.isnan(matrix)
    has_nan = bool(nan.any())
    if has_nan:
        # degraded telemetry: min/max over the valid cells per attribute;
        # an all-NaN attribute degrades to a neutral constant space.
        mins = np.where(nan, np.inf, matrix).min(axis=1)
        maxs = np.where(nan, -np.inf, matrix).max(axis=1)
        all_nan = ~np.isfinite(mins)
        mins = np.where(all_nan, 0.0, mins)
        maxs = np.where(all_nan, 0.0, maxs)
    else:
        mins = matrix.min(axis=1)
        maxs = matrix.max(axis=1)
    spans = maxs - mins
    grid = int(n_partitions)
    # Constant columns collapse to a single partition (width 0, index 0);
    # the division guard keeps their indices at exactly 0.
    nparts = np.where(spans > 0, grid, 1).astype(np.int64)
    widths = spans / nparts
    safe_widths = np.where(widths == 0.0, 1.0, widths)
    with np.errstate(invalid="ignore"):
        raw = np.floor((matrix - mins[:, None]) / safe_widths[:, None])
    if has_nan:
        raw = np.where(nan, 0.0, raw)
    idx = np.clip(raw.astype(np.int64), 0, (nparts - 1)[:, None])

    offsets = (np.arange(n_attrs, dtype=np.int64) * grid)[:, None]
    flat = idx + offsets
    if has_nan:
        # NaN cells belong to no partition: drop them from both counts
        valid = ~nan
        counts_abnormal = np.bincount(
            flat[:, abnormal_mask][valid[:, abnormal_mask]],
            minlength=n_attrs * grid,
        ).reshape(n_attrs, grid)
        counts_normal = np.bincount(
            flat[:, normal_mask][valid[:, normal_mask]],
            minlength=n_attrs * grid,
        ).reshape(n_attrs, grid)
    else:
        counts_abnormal = np.bincount(
            flat[:, abnormal_mask].ravel(), minlength=n_attrs * grid
        ).reshape(n_attrs, grid)
        counts_normal = np.bincount(
            flat[:, normal_mask].ravel(), minlength=n_attrs * grid
        ).reshape(n_attrs, grid)

    labels_grid = np.full((n_attrs, grid), int(Label.EMPTY), dtype=np.int64)
    labels_grid[(counts_abnormal > 0) & (counts_normal == 0)] = int(
        Label.ABNORMAL
    )
    labels_grid[(counts_normal > 0) & (counts_abnormal == 0)] = int(
        Label.NORMAL
    )

    out: Dict[str, Tuple[object, np.ndarray]] = {}
    for j, attr in enumerate(attrs):
        space = NumericPartitionSpace.from_stats(
            attr, mins[j], maxs[j], n_partitions
        )
        out[attr] = (space, labels_grid[j, : space.n_partitions].copy())
    return out


def _nearest_non_empty_rows(labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row-batched :func:`repro.core.filtering._nearest_non_empty`.

    *labels* is ``(n_rows, n_partitions)``; returns ``(left, right)`` of
    the same shape with -1 where no non-Empty partition exists on that
    side.  Prefix max / suffix min scans along axis 1 — integer ops, so
    each row is exactly the serial scan.
    """
    from repro.core.partition import Label

    m, n = labels.shape
    nonempty = labels != int(Label.EMPTY)
    idx = np.arange(n, dtype=np.int64)
    last = np.where(nonempty, idx[None, :], -1)
    left = np.empty((m, n), dtype=np.int64)
    left[:, 0] = -1
    if n > 1:
        left[:, 1:] = np.maximum.accumulate(last, axis=1)[:, :-1]
    nxt = np.where(nonempty, idx[None, :], n)
    right = np.empty((m, n), dtype=np.int64)
    right[:, -1] = -1
    if n > 1:
        right[:, :-1] = np.minimum.accumulate(nxt[:, ::-1], axis=1)[:, ::-1][:, 1:]
        right[right == n] = -1
    return left, right


def filter_partitions_batch(labels: np.ndarray) -> np.ndarray:
    """Section 4.3 filtering for many label rows at once.

    *labels* is ``(n_rows, n_partitions)``; row ``i`` of the result is
    bitwise-identical to ``filter_partitions(labels[i])`` — same
    neighbour scans, same lone-label exemptions, all integer ops.
    """
    from repro.core.partition import Label

    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 2:
        raise ValueError("labels must be (n_rows, n_partitions)")
    result = labels.copy()
    if 0 in labels.shape:
        return result
    left, right = _nearest_non_empty_rows(labels)
    is_abnormal = labels == int(Label.ABNORMAL)
    is_normal = labels == int(Label.NORMAL)
    eligible = (labels != int(Label.EMPTY)) & (left >= 0) & (right >= 0)
    lone_abnormal = is_abnormal.sum(axis=1) == 1
    eligible &= ~(lone_abnormal[:, None] & is_abnormal)
    lone_normal = is_normal.sum(axis=1) == 1
    eligible &= ~(lone_normal[:, None] & is_normal)
    left_label = np.take_along_axis(labels, np.clip(left, 0, None), axis=1)
    right_label = np.take_along_axis(labels, np.clip(right, 0, None), axis=1)
    disagree = (left_label != labels) | (right_label != labels)
    result[eligible & disagree] = int(Label.EMPTY)
    return result


def fill_gaps_batch(labels: np.ndarray, delta: float) -> np.ndarray:
    """Section 4.4 gap filling for many label rows at once.

    Row ``i`` of the result is bitwise-identical to
    ``fill_gaps(labels[i], delta)``.  Rows where only Abnormal labels
    remain need a ``normal_mean_partition`` and must be handled by the
    serial path — passing one raises, exactly like the serial function.
    Rows with no non-Empty partitions at all pass through unchanged.
    """
    from repro.core.partition import Label

    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 2:
        raise ValueError("labels must be (n_rows, n_partitions)")
    if delta <= 0:
        raise ValueError("delta must be positive")
    filled = labels.copy()
    if 0 in labels.shape:
        return filled
    has_abnormal = (labels == int(Label.ABNORMAL)).any(axis=1)
    has_normal = (labels == int(Label.NORMAL)).any(axis=1)
    if bool((has_abnormal & ~has_normal).any()):
        raise ValueError(
            "only Abnormal partitions remain; normal_mean_partition required"
        )
    # Rows with neither label present stay unchanged: every cell is Empty,
    # so left/right are -1 everywhere and no branch below touches them.
    left, right = _nearest_non_empty_rows(labels)
    empty = labels == int(Label.EMPTY)
    left_label = np.take_along_axis(labels, np.clip(left, 0, None), axis=1)
    right_label = np.take_along_axis(labels, np.clip(right, 0, None), axis=1)

    only_left = empty & (left >= 0) & (right < 0)
    filled[only_left] = left_label[only_left]
    only_right = empty & (left < 0) & (right >= 0)
    filled[only_right] = right_label[only_right]

    both = empty & (left >= 0) & (right >= 0)
    agree = both & (left_label == right_label)
    filled[agree] = left_label[agree]

    idx = np.arange(labels.shape[1], dtype=np.int64)
    dist_left = (idx[None, :] - left).astype(np.float64)
    dist_right = (right - idx[None, :]).astype(np.float64)
    left_is_abnormal = left_label == int(Label.ABNORMAL)
    dist_abnormal = np.where(left_is_abnormal, dist_left, dist_right)
    dist_normal = np.where(left_is_abnormal, dist_right, dist_left)
    abnormal_label = np.where(left_is_abnormal, left_label, right_label)
    normal_label = np.where(left_is_abnormal, right_label, left_label)
    chosen = np.where(
        dist_abnormal * delta < dist_normal, abnormal_label, normal_label
    )
    disagree = both & (left_label != right_label)
    filled[disagree] = chosen[disagree]
    return filled


def abnormal_blocks_batch(labels: np.ndarray) -> list:
    """Per-row contiguous Abnormal runs, matching ``abnormal_blocks``.

    Returns a list of ``n_rows`` lists of ``(start, end)`` int tuples.
    One padded ``np.diff`` + ``np.nonzero`` finds every run edge; the
    row-major order of ``np.nonzero`` pairs the k-th start of a row with
    its k-th end.
    """
    from repro.core.partition import Label

    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 2:
        raise ValueError("labels must be (n_rows, n_partitions)")
    m, n = labels.shape
    blocks: list = [[] for _ in range(m)]
    if m == 0 or n == 0:
        return blocks
    padded = np.zeros((m, n + 2), dtype=np.int8)
    padded[:, 1:-1] = labels == int(Label.ABNORMAL)
    edges = np.diff(padded, axis=1)
    row_s, starts = np.nonzero(edges == 1)
    ends = np.nonzero(edges == -1)[1] - 1
    for r, s, e in zip(row_s.tolist(), starts.tolist(), ends.tolist()):
        blocks[r].append((s, e))
    return blocks


def normalize_columns_batch(matrix: np.ndarray) -> np.ndarray:
    """Row-batched :func:`repro.core.separation.normalize_values`.

    *matrix* is ``(n_attrs, n_rows)`` and must be NaN-free (callers fall
    back to the serial function for degraded columns).  Each row is
    min/max-scaled with the exact elementwise ``(v - lo) / span``
    expression of the serial path; constant rows (span <= 0) become
    zeros.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be (n_attrs, n_rows)")
    if 0 in matrix.shape:
        return matrix.copy()
    mins = matrix.min(axis=1)
    maxs = matrix.max(axis=1)
    spans = maxs - mins
    degenerate = spans <= 0
    safe = np.where(degenerate, 1.0, spans)
    normalized = (matrix - mins[:, None]) / safe[:, None]
    normalized[degenerate] = 0.0
    return normalized
