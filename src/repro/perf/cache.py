"""LabeledSpaceCache: the shared partition-space representation.

Ranking K causal models over one anomaly (Equation 3) labels the same
dataset columns into the same partitions once per predicate occurrence —
O(models x predicates) redundant discretizations.  This cache memoizes,
per ``(dataset, region-spec, attribute, n_partitions)``:

* the partition space (numeric or categorical),
* the initial partition labels,
* the Section 4.3 filtered labels (lazily, on first request),
* the partition representatives (midpoints / category values, lazily),

plus, keyed per ``(dataset, region-spec)``, the abnormal/normal row masks
and, per ``(dataset, region-spec, attribute)``, the normalized region
means used by the θ gate — so the predicate generator and confidence
scoring share one labeling of each attribute.

Keying and invalidation
-----------------------
Datasets are keyed by identity (``id``) and held via ``weakref`` so that
entries are evicted automatically when a dataset is garbage-collected;
region specs are keyed *structurally* (their interval bounds), so two
equal specs share entries.  Datasets are treated as immutable — call
:meth:`LabeledSpaceCache.invalidate` after mutating one in place.  Cached
label arrays are shared with callers and must not be written to.

``hits``/``misses`` counters (and :meth:`stats`) make cache behavior
observable in tests and benchmarks.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics

__all__ = ["LabeledAttribute", "LabeledSpaceCache"]

_UNSET = object()

_CACHE_HITS = metrics.REGISTRY.counter(
    "repro_cache_hits_total", "Labeled-space cache hits"
)
_CACHE_MISSES = metrics.REGISTRY.counter(
    "repro_cache_misses_total", "Labeled-space cache misses"
)
_CACHE_EVICTIONS = metrics.REGISTRY.counter(
    "repro_cache_evictions_total",
    "Labeled-space cache entries dropped by eviction or invalidation",
)
_CACHE_RESIDENT_BYTES = metrics.REGISTRY.gauge(
    "repro_cache_resident_bytes",
    "Bytes held by cached label arrays (refreshed on stats()/resident_bytes())",
)


class LabeledAttribute:
    """One attribute's labeled partition space, with lazy derived forms."""

    __slots__ = (
        "attr",
        "is_numeric",
        "space",
        "labels_initial",
        "_labels_filtered",
        "_representatives",
        "_regions_filtered",
        "_regions_initial",
    )

    def __init__(self, attr, is_numeric, space, labels_initial) -> None:
        self.attr = attr
        self.is_numeric = is_numeric
        self.space = space
        self.labels_initial = labels_initial
        self._labels_filtered: Optional[np.ndarray] = None
        self._representatives: Optional[np.ndarray] = None
        self._regions_filtered = _UNSET
        self._regions_initial = _UNSET

    def filtered_labels(self) -> np.ndarray:
        """Section 4.3 filtered labels (categorical spaces are never filtered)."""
        if self._labels_filtered is None:
            if self.is_numeric:
                from repro.core.filtering import filter_partitions

                self._labels_filtered = filter_partitions(self.labels_initial)
            else:
                self._labels_filtered = self.labels_initial
        return self._labels_filtered

    def representatives(self) -> np.ndarray:
        """Per-partition representative values (midpoints / categories)."""
        if self._representatives is None:
            if self.is_numeric:
                self._representatives = self.space.midpoints()
            else:
                self._representatives = np.asarray(
                    self.space.categories, dtype=object
                )
        return self._representatives

    def region_partitions(self, apply_filtering: bool = True):
        """Representatives and counts of the Abnormal/Normal partitions.

        Returns ``(reps_abnormal, reps_normal, n_abnormal, n_normal)``, or
        ``None`` when either region has no labeled partitions.  Evaluating
        a predicate on just these subsets yields the exact same satisfied
        counts as masking a full-space evaluation, so the Equation 3 term
        is bitwise-identical while touching far fewer partitions.
        """
        slot = "_regions_filtered" if apply_filtering else "_regions_initial"
        regions = getattr(self, slot)
        if regions is _UNSET:
            from repro.core.partition import Label

            labels = (
                self.filtered_labels() if apply_filtering else self.labels_initial
            )
            abnormal_idx = np.flatnonzero(labels == int(Label.ABNORMAL))
            normal_idx = np.flatnonzero(labels == int(Label.NORMAL))
            if abnormal_idx.size == 0 or normal_idx.size == 0:
                regions = None
            else:
                reps = self.representatives()
                regions = (
                    reps[abnormal_idx],
                    reps[normal_idx],
                    int(abnormal_idx.size),
                    int(normal_idx.size),
                )
            setattr(self, slot, regions)
        return regions


def _spec_key(spec) -> tuple:
    """Structural key of a RegionSpec: its interval bounds."""
    normal = (
        None
        if spec.normal is None
        else tuple((r.start, r.end) for r in spec.normal)
    )
    return (tuple((r.start, r.end) for r in spec.abnormal), normal)


class LabeledSpaceCache:
    """Memoized partition spaces, labels, masks, and region statistics."""

    def __init__(self) -> None:
        self._entries: Dict[tuple, LabeledAttribute] = {}
        self._masks: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._norm_means: Dict[tuple, Tuple[float, float]] = {}
        self._dataset_refs: Dict[int, Optional[weakref.ref]] = {}
        self._by_dataset: Dict[int, set] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count_hits(self, n: int = 1) -> None:
        self.hits += n
        _CACHE_HITS.inc(n)

    def _count_misses(self, n: int = 1) -> None:
        self.misses += n
        _CACHE_MISSES.inc(n)

    # ------------------------------------------------------------------
    # Keying and eviction
    # ------------------------------------------------------------------
    def _token(self, dataset) -> int:
        token = id(dataset)
        if token not in self._dataset_refs:
            try:
                self._dataset_refs[token] = weakref.ref(
                    dataset, lambda _ref, t=token: self._evict(t)
                )
            except TypeError:  # un-weakref-able object: no auto-eviction
                self._dataset_refs[token] = None
            self._by_dataset[token] = set()
        return token

    def _register(self, token: int, table: str, key: tuple) -> None:
        self._by_dataset[token].add((table, key))

    def _evict(self, token: int) -> None:
        evicted = 0
        for table, key in self._by_dataset.pop(token, ()):
            if getattr(self, table).pop(key, None) is not None:
                evicted += 1
        self._dataset_refs.pop(token, None)
        if evicted:
            self.evictions += evicted
            _CACHE_EVICTIONS.inc(evicted)

    def invalidate(self, dataset=None) -> None:
        """Drop entries for *dataset* (all entries when omitted)."""
        if dataset is None:
            self.clear()
        else:
            self._evict(id(dataset))

    def clear(self) -> None:
        """Drop every entry and zero the counters.

        A cleared cache reads as a fresh one: ``stats()`` afterwards
        reports zeros, not the totals of a previous lifetime.  (The
        process-wide obs counters are cumulative and unaffected.)
        """
        dropped = (
            len(self._entries) + len(self._masks) + len(self._norm_means)
        )
        if dropped:
            _CACHE_EVICTIONS.inc(dropped)
        self._entries.clear()
        self._masks.clear()
        self._norm_means.clear()
        self._dataset_refs.clear()
        self._by_dataset.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def resident_bytes(self) -> int:
        """Bytes held by cached arrays (labels, derived forms, masks)."""
        total = 0
        for entry in self._entries.values():
            total += entry.labels_initial.nbytes
            if entry._labels_filtered is not None and (
                entry._labels_filtered is not entry.labels_initial
            ):
                total += entry._labels_filtered.nbytes
            if entry._representatives is not None:
                total += entry._representatives.nbytes
        for abnormal, normal in self._masks.values():
            total += abnormal.nbytes + normal.nbytes
        _CACHE_RESIDENT_BYTES.set(total)
        return total

    def stats(self) -> Dict[str, int]:
        """Observable cache state, for tests and bench reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "mask_entries": len(self._masks),
            "datasets": len(self._by_dataset),
            "resident_bytes": self.resident_bytes(),
        }

    # ------------------------------------------------------------------
    # Cached computations
    # ------------------------------------------------------------------
    def masks(self, dataset, spec) -> Tuple[np.ndarray, np.ndarray]:
        """The (abnormal, normal) row masks of *spec* on *dataset*."""
        token = self._token(dataset)
        key = (token, _spec_key(spec))
        cached = self._masks.get(key)
        if cached is not None:
            self._count_hits()
            return cached
        self._count_misses()
        cached = (spec.abnormal_mask(dataset), spec.normal_mask(dataset))
        self._masks[key] = cached
        self._register(token, "_masks", key)
        return cached

    def entries(
        self,
        dataset,
        spec,
        attrs: Sequence[str],
        n_partitions: int,
    ) -> Dict[str, LabeledAttribute]:
        """Labeled spaces for *attrs*, batch-computing the missing ones."""
        token = self._token(dataset)
        skey = _spec_key(spec)
        found: Dict[str, LabeledAttribute] = {}
        missing_numeric: List[str] = []
        missing_categorical: List[str] = []
        for attr in attrs:
            key = (token, skey, attr, int(n_partitions))
            entry = self._entries.get(key)
            if entry is not None:
                self._count_hits()
                found[attr] = entry
            elif dataset.is_numeric(attr):
                missing_numeric.append(attr)
            else:
                missing_categorical.append(attr)
        if missing_numeric or missing_categorical:
            self._count_misses(len(missing_numeric) + len(missing_categorical))
            abnormal, normal = self.masks(dataset, spec)
            if missing_numeric:
                from repro.perf.batch import label_numeric_batch

                labeled = label_numeric_batch(
                    dataset, missing_numeric, abnormal, normal, n_partitions
                )
                for attr, (space, labels) in labeled.items():
                    found[attr] = self._store(
                        token, skey, attr, n_partitions,
                        LabeledAttribute(attr, True, space, labels),
                    )
            for attr in missing_categorical:
                from repro.core.partition import CategoricalPartitionSpace

                values = dataset.column(attr)
                space = CategoricalPartitionSpace(attr, values)
                labels = space.label(values, abnormal, normal)
                found[attr] = self._store(
                    token, skey, attr, n_partitions,
                    LabeledAttribute(attr, False, space, labels),
                )
        return found

    def entry(
        self, dataset, spec, attr: str, n_partitions: int
    ) -> LabeledAttribute:
        """Labeled space for a single attribute (direct-hit fast path)."""
        key = (id(dataset), _spec_key(spec), attr, int(n_partitions))
        cached = self._entries.get(key)
        if cached is not None:
            self._count_hits()
            return cached
        return self.entries(dataset, spec, [attr], n_partitions)[attr]

    def _store(
        self, token, skey, attr, n_partitions, entry: LabeledAttribute
    ) -> LabeledAttribute:
        key = (token, skey, attr, int(n_partitions))
        self._entries[key] = entry
        self._register(token, "_entries", key)
        return entry

    def normalized_means(
        self, dataset, spec, attr: str
    ) -> Tuple[float, float]:
        """Normalized abnormal/normal region means of a numeric attribute.

        Independent of ``n_partitions`` (Equation 2 operates on rows), so
        keyed without it.
        """
        token = self._token(dataset)
        key = (token, _spec_key(spec), attr)
        cached = self._norm_means.get(key)
        if cached is not None:
            self._count_hits()
            return cached
        self._count_misses()
        from repro.core.separation import normalize_values, region_means

        abnormal, normal = self.masks(dataset, spec)
        normalized = normalize_values(dataset.column(attr))
        cached = region_means(normalized, abnormal, normal)
        self._norm_means[key] = cached
        self._register(token, "_norm_means", key)
        return cached
