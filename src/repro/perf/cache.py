"""LabeledSpaceCache: the shared partition-space representation.

Ranking K causal models over one anomaly (Equation 3) labels the same
dataset columns into the same partitions once per predicate occurrence —
O(models x predicates) redundant discretizations.  This cache memoizes,
per ``(dataset, region-spec, attribute, n_partitions)``:

* the partition space (numeric or categorical),
* the initial partition labels,
* the Section 4.3 filtered labels (lazily, on first request),
* the Section 4.4 gap-filled labels and Abnormal blocks (lazily, per δ),
* the partition representatives (midpoints / category values, lazily),

plus, keyed per ``(dataset, region-spec)``, the abnormal/normal row masks
and, per ``(dataset, region-spec, attribute)``, the normalized region
means used by the θ gate — so the predicate generator and confidence
scoring share one labeling of each attribute.

Keying and invalidation
-----------------------
Datasets are keyed by identity (``id``) and held via ``weakref`` so that
entries are evicted automatically when a dataset is garbage-collected;
region specs are keyed *structurally* (their interval bounds), so two
equal specs share entries.  Datasets are treated as immutable — call
:meth:`LabeledSpaceCache.invalidate` after mutating one in place.  Cached
label arrays are shared with callers and must not be written to.

Concurrency
-----------
The tables are split across ``n_shards`` lock-striped shards keyed by
the hash of the full entry key, so concurrent diagnosis workers
(:mod:`repro.fleet.scheduler` at ``diagnose_jobs > 1``) contend only
when they touch the same shard.  The *hit* path takes no lock at all: a
shard's tables are plain dicts read with one atomic ``dict.get``, and
every published value is immutable-by-convention, so a reader either
sees the complete entry or misses.  Writers compute off-lock, then
check-then-publish under the shard lock (first writer wins; losers
return the winner's entry so sharing semantics are preserved).

Weakref eviction is *deferred*: a dataset's GC callback — which CPython
may fire at any bytecode boundary, including while this very thread is
inside a shard lock — only appends the dead token to a pending list
(``list.append`` is atomic and allocation-free enough for GC context).
The actual table mutation happens at the next cache entry point, under
the proper locks, which is what fixes the historical
``RuntimeError: dictionary changed size during iteration`` from the
callback racing ``stats()`` / ``get()``.  ``hits``/``misses`` are
per-shard best-effort counters: exact when unshared (every existing
test), monotone and at-most-slightly-under under contention.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics

__all__ = ["LabeledAttribute", "LabeledSpaceCache"]

_UNSET = object()

_CACHE_HITS = metrics.REGISTRY.counter(
    "repro_cache_hits_total", "Labeled-space cache hits"
)
_CACHE_MISSES = metrics.REGISTRY.counter(
    "repro_cache_misses_total", "Labeled-space cache misses"
)
_CACHE_EVICTIONS = metrics.REGISTRY.counter(
    "repro_cache_evictions_total",
    "Labeled-space cache entries dropped by eviction or invalidation",
)
_CACHE_RESIDENT_BYTES = metrics.REGISTRY.gauge(
    "repro_cache_resident_bytes",
    "Bytes held by cached label arrays (refreshed on stats()/resident_bytes())",
)


class LabeledAttribute:
    """One attribute's labeled partition space, with lazy derived forms."""

    __slots__ = (
        "attr",
        "is_numeric",
        "space",
        "labels_initial",
        "_labels_filtered",
        "_representatives",
        "_regions_filtered",
        "_regions_initial",
        "_filled",
    )

    def __init__(self, attr, is_numeric, space, labels_initial) -> None:
        self.attr = attr
        self.is_numeric = is_numeric
        self.space = space
        self.labels_initial = labels_initial
        self._labels_filtered: Optional[np.ndarray] = None
        self._representatives: Optional[np.ndarray] = None
        self._regions_filtered = _UNSET
        self._regions_initial = _UNSET
        self._filled: Dict[tuple, Tuple[np.ndarray, list]] = {}

    def filtered_labels(self) -> np.ndarray:
        """Section 4.3 filtered labels (categorical spaces are never filtered)."""
        if self._labels_filtered is None:
            if self.is_numeric:
                from repro.core.filtering import filter_partitions

                self._labels_filtered = filter_partitions(self.labels_initial)
            else:
                self._labels_filtered = self.labels_initial
        return self._labels_filtered

    def filled_blocks(
        self, delta: float, normal_mean_partition: Optional[int] = None
    ) -> Tuple[np.ndarray, list]:
        """Gap-filled labels and their Abnormal blocks, memoized per δ.

        The fill step is deterministic given the filtered labels, δ, and
        the normal-mean partition, so one computation serves every
        diagnosis of the same anomaly — and the fused
        :meth:`repro.core.explain.DBSherlock.explain_batch` path can seed
        this memo from its batched kernels.
        """
        key = (float(delta), normal_mean_partition)
        got = self._filled.get(key)
        if got is None:
            from repro.core.filtering import abnormal_blocks, fill_gaps

            filled = fill_gaps(
                self.filtered_labels(), delta, normal_mean_partition
            )
            got = (filled, abnormal_blocks(filled))
            self._filled[key] = got
        return got

    def representatives(self) -> np.ndarray:
        """Per-partition representative values (midpoints / categories)."""
        if self._representatives is None:
            if self.is_numeric:
                self._representatives = self.space.midpoints()
            else:
                self._representatives = np.asarray(
                    self.space.categories, dtype=object
                )
        return self._representatives

    def region_partitions(self, apply_filtering: bool = True):
        """Representatives and counts of the Abnormal/Normal partitions.

        Returns ``(reps_abnormal, reps_normal, n_abnormal, n_normal)``, or
        ``None`` when either region has no labeled partitions.  Evaluating
        a predicate on just these subsets yields the exact same satisfied
        counts as masking a full-space evaluation, so the Equation 3 term
        is bitwise-identical while touching far fewer partitions.
        """
        slot = "_regions_filtered" if apply_filtering else "_regions_initial"
        regions = getattr(self, slot)
        if regions is _UNSET:
            from repro.core.partition import Label

            labels = (
                self.filtered_labels() if apply_filtering else self.labels_initial
            )
            abnormal_idx = np.flatnonzero(labels == int(Label.ABNORMAL))
            normal_idx = np.flatnonzero(labels == int(Label.NORMAL))
            if abnormal_idx.size == 0 or normal_idx.size == 0:
                regions = None
            else:
                reps = self.representatives()
                regions = (
                    reps[abnormal_idx],
                    reps[normal_idx],
                    int(abnormal_idx.size),
                    int(normal_idx.size),
                )
            setattr(self, slot, regions)
        return regions


def _spec_key(spec) -> tuple:
    """Structural key of a RegionSpec: its interval bounds."""
    normal = (
        None
        if spec.normal is None
        else tuple((r.start, r.end) for r in spec.normal)
    )
    return (tuple((r.start, r.end) for r in spec.abnormal), normal)


class _Shard:
    """One lock stripe: its own tables, lock, and hit/miss counters."""

    __slots__ = ("lock", "entries", "masks", "norm_means", "hits", "misses")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: Dict[tuple, LabeledAttribute] = {}
        self.masks: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self.norm_means: Dict[tuple, Tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0


class LabeledSpaceCache:
    """Memoized partition spaces, labels, masks, and region statistics."""

    DEFAULT_SHARDS = 16

    def __init__(self, n_shards: int = DEFAULT_SHARDS) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._shards = tuple(_Shard() for _ in range(int(n_shards)))
        self._n_shards = len(self._shards)
        self._reg_lock = threading.Lock()
        self._dataset_refs: Dict[int, Optional[weakref.ref]] = {}
        self._by_dataset: Dict[int, set] = {}
        #: tokens whose dataset died; drained at the next entry point.
        self._pending: List[int] = []
        self.evictions = 0

    # ------------------------------------------------------------------
    # Counters (summed across shards; settable only via clear())
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    def _shard_of(self, key: tuple) -> _Shard:
        return self._shards[hash(key) % self._n_shards]

    # ------------------------------------------------------------------
    # Keying and eviction
    # ------------------------------------------------------------------
    def _token(self, dataset) -> int:
        self._reap()
        token = id(dataset)
        stored = self._dataset_refs.get(token, _UNSET)
        if stored is not _UNSET:
            if stored is None or stored() is dataset:
                return token
            # id() reuse: the old dataset died (its eviction is pending or
            # its callback never ran) and this token now names a new one.
            self._evict_now(token)
        with self._reg_lock:
            if token not in self._dataset_refs:
                try:
                    self._dataset_refs[token] = weakref.ref(
                        dataset,
                        # GC context: only an atomic append, never a table
                        # mutation (see module docstring).
                        lambda _ref, t=token: self._pending.append(t),
                    )
                except TypeError:  # un-weakref-able object: no auto-eviction
                    self._dataset_refs[token] = None
                self._by_dataset[token] = set()
        return token

    def _register(self, token: int, table: str, key: tuple) -> bool:
        """Record *key* against its dataset; False if it was evicted."""
        with self._reg_lock:
            members = self._by_dataset.get(token)
            if members is None:
                return False
            members.add((table, key))
            return True

    def _reap(self) -> None:
        """Drain pending weakref deaths under the proper locks."""
        while self._pending:
            try:
                token = self._pending.pop()
            except IndexError:
                break
            stored = self._dataset_refs.get(token, _UNSET)
            if stored is _UNSET:
                continue  # already evicted (invalidate/clear/reuse guard)
            if stored is not None and stored() is not None:
                continue  # token reused by a live dataset; already handled
            self._evict_now(token)

    def _evict_now(self, token: int) -> None:
        with self._reg_lock:
            keys = self._by_dataset.pop(token, ())
            self._dataset_refs.pop(token, None)
        evicted = 0
        for table, key in keys:
            shard = self._shard_of(key)
            with shard.lock:
                if getattr(shard, table).pop(key, None) is not None:
                    evicted += 1
        if evicted:
            with self._reg_lock:
                self.evictions += evicted
            _CACHE_EVICTIONS.inc(evicted)

    def invalidate(self, dataset=None) -> None:
        """Drop entries for *dataset* (all entries when omitted)."""
        self._reap()
        if dataset is None:
            self.clear()
        else:
            self._evict_now(id(dataset))

    def clear(self) -> None:
        """Drop every entry and zero the counters.

        A cleared cache reads as a fresh one: ``stats()`` afterwards
        reports zeros, not the totals of a previous lifetime.  (The
        process-wide obs counters are cumulative and unaffected.)
        """
        self._reap()
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                dropped += (
                    len(shard.entries)
                    + len(shard.masks)
                    + len(shard.norm_means)
                )
                shard.entries.clear()
                shard.masks.clear()
                shard.norm_means.clear()
                shard.hits = 0
                shard.misses = 0
        with self._reg_lock:
            self._dataset_refs.clear()
            self._by_dataset.clear()
            del self._pending[:]
            self.evictions = 0
        if dropped:
            _CACHE_EVICTIONS.inc(dropped)

    def resident_bytes(self) -> int:
        """Bytes held by cached arrays (labels, derived forms, masks)."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                entries = list(shard.entries.values())
                mask_values = list(shard.masks.values())
            for entry in entries:
                total += entry.labels_initial.nbytes
                if entry._labels_filtered is not None and (
                    entry._labels_filtered is not entry.labels_initial
                ):
                    total += entry._labels_filtered.nbytes
                if entry._representatives is not None:
                    total += entry._representatives.nbytes
                for filled, _blocks in list(entry._filled.values()):
                    total += filled.nbytes
            for abnormal, normal in mask_values:
                total += abnormal.nbytes + normal.nbytes
        _CACHE_RESIDENT_BYTES.set(total)
        return total

    def stats(self) -> Dict[str, int]:
        """Observable cache state, for tests and bench reports."""
        self._reap()
        n_entries = n_masks = 0
        for shard in self._shards:
            with shard.lock:
                n_entries += len(shard.entries)
                n_masks += len(shard.masks)
        with self._reg_lock:
            datasets = len(self._by_dataset)
            evictions = self.evictions
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": evictions,
            "entries": n_entries,
            "mask_entries": n_masks,
            "datasets": datasets,
            "shards": self._n_shards,
            "resident_bytes": self.resident_bytes(),
        }

    # ------------------------------------------------------------------
    # Cached computations
    # ------------------------------------------------------------------
    def _publish(self, shard: _Shard, table: str, token: int, key: tuple, value):
        """Check-then-publish *value*; return the table's winning value."""
        mapping = getattr(shard, table)
        with shard.lock:
            existing = mapping.get(key)
            if existing is not None:
                return existing
            mapping[key] = value
        if not self._register(token, table, key):
            # the dataset was evicted between compute and publish: keep the
            # value for the caller but do not leave an orphan in the table
            with shard.lock:
                mapping.pop(key, None)
        return value

    def masks(self, dataset, spec) -> Tuple[np.ndarray, np.ndarray]:
        """The (abnormal, normal) row masks of *spec* on *dataset*."""
        token = self._token(dataset)
        key = (token, _spec_key(spec))
        shard = self._shard_of(key)
        cached = shard.masks.get(key)  # lock-free hit path
        if cached is not None:
            shard.hits += 1
            _CACHE_HITS.inc()
            return cached
        shard.misses += 1
        _CACHE_MISSES.inc()
        computed = (spec.abnormal_mask(dataset), spec.normal_mask(dataset))
        return self._publish(shard, "masks", token, key, computed)

    def entries(
        self,
        dataset,
        spec,
        attrs: Sequence[str],
        n_partitions: int,
    ) -> Dict[str, LabeledAttribute]:
        """Labeled spaces for *attrs*, batch-computing the missing ones."""
        token = self._token(dataset)
        skey = _spec_key(spec)
        found: Dict[str, LabeledAttribute] = {}
        missing_numeric: List[str] = []
        missing_categorical: List[str] = []
        n_hits = 0
        for attr in attrs:
            key = (token, skey, attr, int(n_partitions))
            entry = self._shard_of(key).entries.get(key)  # lock-free
            if entry is not None:
                n_hits += 1
                found[attr] = entry
            elif dataset.is_numeric(attr):
                missing_numeric.append(attr)
            else:
                missing_categorical.append(attr)
        if n_hits:
            # batch the counter updates: one locked inc per call, not per attr
            self._shard_of((token, skey)).hits += n_hits
            _CACHE_HITS.inc(n_hits)
        if missing_numeric or missing_categorical:
            n_missing = len(missing_numeric) + len(missing_categorical)
            self._shard_of((token, skey)).misses += n_missing
            _CACHE_MISSES.inc(n_missing)
            abnormal, normal = self.masks(dataset, spec)
            if missing_numeric:
                from repro.perf.batch import label_numeric_batch

                labeled = label_numeric_batch(
                    dataset, missing_numeric, abnormal, normal, n_partitions
                )
                for attr, (space, labels) in labeled.items():
                    found[attr] = self._store(
                        token, skey, attr, n_partitions,
                        LabeledAttribute(attr, True, space, labels),
                    )
            for attr in missing_categorical:
                from repro.core.partition import CategoricalPartitionSpace

                values = dataset.column(attr)
                space = CategoricalPartitionSpace(attr, values)
                labels = space.label(values, abnormal, normal)
                found[attr] = self._store(
                    token, skey, attr, n_partitions,
                    LabeledAttribute(attr, False, space, labels),
                )
        return found

    def entry(
        self, dataset, spec, attr: str, n_partitions: int
    ) -> LabeledAttribute:
        """Labeled space for a single attribute (direct-hit fast path)."""
        key = (id(dataset), _spec_key(spec), attr, int(n_partitions))
        shard = self._shard_of(key)
        cached = shard.entries.get(key)  # lock-free hit path
        if cached is not None:
            shard.hits += 1
            _CACHE_HITS.inc()
            return cached
        return self.entries(dataset, spec, [attr], n_partitions)[attr]

    def _store(
        self, token, skey, attr, n_partitions, entry: LabeledAttribute
    ) -> LabeledAttribute:
        key = (token, skey, attr, int(n_partitions))
        return self._publish(
            self._shard_of(key), "entries", token, key, entry
        )

    def peek_entry(
        self, dataset, spec, attr: str, n_partitions: int
    ) -> Optional[LabeledAttribute]:
        """Lock-free lookup that counts neither a hit nor a miss.

        Batch seeding (:meth:`repro.core.explain.DBSherlock._seed_batch`)
        uses this to decide which lanes still need labeling without
        skewing the hit/miss statistics the serial path will produce.
        """
        key = (id(dataset), _spec_key(spec), attr, int(n_partitions))
        return self._shard_of(key).entries.get(key)

    def peek_entries(
        self, dataset, spec, attrs: Sequence[str], n_partitions: int
    ) -> Dict[str, LabeledAttribute]:
        """Bulk :meth:`peek_entry`: the subset of *attrs* already cached.

        One key prefix is built for the whole call; like ``peek_entry``
        this is lock-free and counts neither hits nor misses.
        """
        token = id(dataset)
        skey = _spec_key(spec)
        npart = int(n_partitions)
        found: Dict[str, LabeledAttribute] = {}
        for attr in attrs:
            key = (token, skey, attr, npart)
            entry = self._shard_of(key).entries.get(key)
            if entry is not None:
                found[attr] = entry
        return found

    def peek_norm_means(
        self, dataset, spec, attrs: Sequence[str]
    ) -> Dict[str, Tuple[float, float]]:
        """Bulk lock-free lookup of cached normalized-means pairs.

        Returns the subset of *attrs* whose means are already published;
        like :meth:`peek_entries` this counts neither hits nor misses.
        The predicate generator prefetches a whole attribute list this
        way and only falls back to :meth:`normalized_means` (one key
        build and shard probe per call) on the residue.
        """
        token = id(dataset)
        skey = _spec_key(spec)
        found: Dict[str, Tuple[float, float]] = {}
        for attr in attrs:
            key = (token, skey, attr)
            means = self._shard_of(key).norm_means.get(key)
            if means is not None:
                found[attr] = means
        return found

    def seed_entry(
        self, dataset, spec, attr: str, n_partitions: int, entry: LabeledAttribute
    ) -> LabeledAttribute:
        """Pre-publish a :class:`LabeledAttribute` from a batch kernel.

        *entry* must be bitwise-identical to what :meth:`entries` would
        compute for the same key.  First writer wins — the returned entry
        is the table's, which may be an earlier concurrent publication.
        Counts neither a hit nor a miss.
        """
        token = self._token(dataset)
        return self._store(token, _spec_key(spec), attr, n_partitions, entry)

    def seed_job(
        self,
        dataset,
        spec,
        n_partitions: int,
        entries: Optional[Dict[str, LabeledAttribute]] = None,
        norm_means: Optional[Dict[str, Tuple[float, float]]] = None,
        masks: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Dict[str, LabeledAttribute]:
        """Publish one job's batch-kernel outputs in a few locked passes.

        The fused :meth:`~repro.core.explain.DBSherlock.explain_batch`
        seeds many attributes per ``(dataset, spec)``; publishing them
        key-by-key costs two lock round-trips each.  This groups the
        whole job by shard — one lock acquisition per touched shard plus
        one registration pass.  First writer wins per key, exactly like
        :meth:`seed_entry`; returns the winning labeled entries keyed by
        attribute.  Counts neither hits nor misses.  *masks* optionally
        seeds the job's ``(abnormal, normal)`` row masks.
        """
        token = self._token(dataset)
        skey = _spec_key(spec)
        items: List[Tuple[str, tuple, object]] = []
        if entries:
            for attr, entry in entries.items():
                items.append(
                    ("entries", (token, skey, attr, int(n_partitions)), entry)
                )
        if norm_means:
            for attr, means in norm_means.items():
                items.append(
                    ("norm_means", (token, skey, attr), tuple(means))
                )
        if masks is not None:
            items.append(("masks", (token, skey), tuple(masks)))
        if not items:
            return {}
        by_shard: Dict[int, List[Tuple[str, tuple, object]]] = {}
        for item in items:
            by_shard.setdefault(hash(item[1]) % self._n_shards, []).append(
                item
            )
        winners: Dict[str, LabeledAttribute] = {}
        published: List[Tuple[str, tuple]] = []
        for shard_idx, group in by_shard.items():
            shard = self._shards[shard_idx]
            with shard.lock:
                for table, key, value in group:
                    mapping = getattr(shard, table)
                    existing = mapping.get(key)
                    if existing is None:
                        mapping[key] = value
                        published.append((table, key))
                        existing = value
                    if table == "entries":
                        winners[key[2]] = existing
        if published:
            with self._reg_lock:
                members = self._by_dataset.get(token)
                evicted = members is None
                if not evicted:
                    members.update(published)
            if evicted:
                # the dataset died between compute and publish: no orphans
                for table, key in published:
                    shard = self._shard_of(key)
                    with shard.lock:
                        getattr(shard, table).pop(key, None)
        return winners

    def seed_normalized_means(
        self, dataset, spec, attr: str, means: Tuple[float, float]
    ) -> None:
        """Pre-publish a normalized-means pair computed by a batch kernel.

        Used by :meth:`repro.core.explain.DBSherlock.explain_batch` to
        warm the θ-gate statistics for a whole diagnosis batch in one
        vectorized pass; *means* must equal what
        :meth:`normalized_means` would compute.  Counts neither a hit
        nor a miss.
        """
        token = self._token(dataset)
        key = (token, _spec_key(spec), attr)
        shard = self._shard_of(key)
        if shard.norm_means.get(key) is None:
            self._publish(shard, "norm_means", token, key, tuple(means))

    def normalized_means(
        self, dataset, spec, attr: str
    ) -> Tuple[float, float]:
        """Normalized abnormal/normal region means of a numeric attribute.

        Independent of ``n_partitions`` (Equation 2 operates on rows), so
        keyed without it.
        """
        token = self._token(dataset)
        key = (token, _spec_key(spec), attr)
        shard = self._shard_of(key)
        cached = shard.norm_means.get(key)  # lock-free hit path
        if cached is not None:
            shard.hits += 1
            _CACHE_HITS.inc()
            return cached
        shard.misses += 1
        _CACHE_MISSES.inc()
        from repro.core.separation import normalize_values, region_means

        abnormal, normal = self.masks(dataset, spec)
        normalized = normalize_values(dataset.column(attr))
        computed = region_means(normalized, abnormal, normal)
        return self._publish(shard, "norm_means", token, key, computed)
